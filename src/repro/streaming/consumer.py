"""Consumer API with consumer-group offset management.

A :class:`Consumer` polls records from assigned partitions, deserializes
them, and commits offsets back to the broker under its consumer group.  The
combination of offset-based fetch and explicit commit is what yields the
paper's exactly-once processing guarantee (Section 4.2): after a crash, a new
consumer in the same group resumes from the last committed offset, so every
record is processed exactly once provided commits follow processing.

``poll``/``stream_values`` accept an optional ``timeout`` that rides the
broker's long-poll machinery: instead of returning empty and forcing the
caller into a sleep-poll loop, the consumer blocks until a record lands on
any assigned partition (or the deadline passes).  Deserialization of a
polled batch goes through the serializer's batched path.

:func:`assign_partitions` implements a modulo round-robin group assignment
so that several consumers in one group share a topic's partitions without
overlap.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Iterator

from repro.errors import ConsumerClosedError, RebalanceError
from repro.streaming.broker import Broker
from repro.streaming.message import Record, RecordBatch, TopicPartition
from repro.streaming.serializers import (
    CompactJsonSerializer,
    Serializer,
    deserialize_batch,
)

__all__ = ["Consumer", "assign_partitions"]


def assign_partitions(partitions: list[TopicPartition], num_members: int,
                      member_index: int) -> list[TopicPartition]:
    """Modulo round-robin assignment of ``partitions`` across ``num_members``.

    The sorted partition list is dealt out like cards: member ``i`` takes
    every partition whose sorted index is congruent to ``i`` modulo
    ``num_members`` (not Kafka's "range" assignor, which hands each member
    one contiguous block).  Deterministic and gap-free: the union over all
    member indexes is exactly ``partitions`` and the intersection of any two
    members is empty.
    """
    if num_members < 1:
        raise RebalanceError(f"num_members must be >= 1, got {num_members}")
    if not 0 <= member_index < num_members:
        raise RebalanceError(
            f"member_index {member_index} outside [0, {num_members})"
        )
    ordered = sorted(partitions)
    return [tp for i, tp in enumerate(ordered) if i % num_members == member_index]


class Consumer:
    """Polls and deserializes records from a broker.

    Parameters
    ----------
    broker:
        Source broker.
    group:
        Consumer-group name; committed offsets are stored per group.
    serializer:
        Must be wire-compatible with the producer's serializer (both built-in
        serializers are mutually compatible at the JSON level).
    auto_offset_reset:
        Where to start when the group has no committed offset:
        ``"earliest"`` (default) or ``"latest"``.
    """

    def __init__(
        self,
        broker: Broker,
        group: str,
        serializer: Serializer | None = None,
        auto_offset_reset: str = "earliest",
    ) -> None:
        if auto_offset_reset not in ("earliest", "latest"):
            raise ValueError(
                f"auto_offset_reset must be 'earliest' or 'latest', got {auto_offset_reset!r}"
            )
        self._broker = broker
        self._group = group
        self._serializer = serializer if serializer is not None else CompactJsonSerializer()
        self._auto_offset_reset = auto_offset_reset
        self._positions: dict[TopicPartition, int] = {}
        self._assignment: list[TopicPartition] = []
        self._generation: int | None = None
        self._closed = False
        self._lock = threading.Lock()
        # Rotates the partition a fetch sweep starts from, so small
        # max_records caps do not starve high-numbered partitions.
        self._sweep_start = 0

    @property
    def group(self) -> str:
        """Consumer-group name."""
        return self._group

    @property
    def serializer(self) -> Serializer:
        """The serializer in use (read-only)."""
        return self._serializer

    # -- assignment -------------------------------------------------------------

    def subscribe(self, topic: str, num_members: int = 1, member_index: int = 0) -> None:
        """Assign this consumer its share of ``topic``'s partitions."""
        partitions = self._broker.partitions_for(topic)
        self.assign(assign_partitions(partitions, num_members, member_index))

    def assign(self, partitions: list[TopicPartition],
               generation: int | None = None) -> None:
        """Explicitly assign ``partitions``; resets positions from committed offsets.

        ``generation`` is the consumer-group generation this assignment
        belongs to (set by a
        :class:`~repro.cluster.coordinator.GroupCoordinator`); it rides
        every subsequent :meth:`commit` so the broker can fence commits
        from superseded generations.  ``None`` keeps static-assignment
        semantics (no fencing).
        """
        with self._lock:
            self._check_open()
            self._assignment = sorted(partitions)
            self._generation = generation
            self._positions = {}
            for tp in self._assignment:
                committed = self._broker.committed(self._group, tp)
                if committed is not None:
                    self._positions[tp] = committed
                elif self._auto_offset_reset == "earliest":
                    self._positions[tp] = 0
                else:
                    self._positions[tp] = self._broker.end_offset(tp)

    def assignment(self) -> list[TopicPartition]:
        """Currently assigned partitions."""
        with self._lock:
            self._check_open()
            return list(self._assignment)

    @property
    def generation(self) -> int | None:
        """Group generation of the current assignment (None when static)."""
        with self._lock:
            self._check_open()
            return self._generation

    def position(self, tp: TopicPartition) -> int:
        """Next offset this consumer will fetch from ``tp``."""
        with self._lock:
            self._check_open()
            try:
                return self._positions[tp]
            except KeyError:
                raise RebalanceError(f"{tp} is not assigned to this consumer") from None

    def seek(self, tp: TopicPartition, offset: int) -> None:
        """Move the fetch position of ``tp`` to ``offset``."""
        with self._lock:
            self._check_open()
            if tp not in self._positions:
                raise RebalanceError(f"{tp} is not assigned to this consumer")
            self._positions[tp] = offset

    # -- fetch ------------------------------------------------------------------

    def poll(self, max_records: int = 500,
             timeout: float | None = None) -> RecordBatch:
        """Fetch up to ``max_records`` raw records across assigned partitions.

        Records are fetched fairly (per-partition quota) and the consumer's
        in-memory positions advance; offsets are durable only after
        :meth:`commit`.

        With ``timeout=None`` or ``0`` the poll returns immediately (possibly
        empty).  A positive ``timeout`` blocks on the broker until a record
        lands on any assigned partition — an event-driven wakeup, not a
        sleep loop — and returns what arrived, or an empty batch on timeout.
        """
        deadline = (time.monotonic() + timeout) if timeout else None
        while True:
            with self._lock:
                self._check_open()
                if not self._assignment:
                    return RecordBatch.empty()
                batch = self._fetch_available(max_records)
                positions = dict(self._positions)
            if batch or deadline is None:
                return batch
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return batch
            if not self._broker.wait_for_any(positions, remaining):
                return RecordBatch.empty()

    def _fetch_available(self, max_records: int) -> RecordBatch:
        """One non-blocking fetch sweep over the assignment (lock held).

        ``max_records`` is a hard global cap: the quota is divided across
        the assignment (remainder spread one-by-one), and quota left unused
        by drained partitions is handed to partitions that still have data
        in a second sweep.  The sweep's starting partition rotates between
        polls so a cap smaller than the assignment cannot starve the
        high-numbered partitions.
        """
        assignment = self._assignment
        n = len(assignment)
        remaining = max_records
        fetched: dict[TopicPartition, list[Record]] = {}
        if remaining <= 0:
            return RecordBatch(fetched)
        start = self._sweep_start % n
        self._sweep_start = (start + 1) % n
        order = assignment[start:] + assignment[:start]
        base, extra = divmod(remaining, n)
        exhausted: set[TopicPartition] = set()
        for i, tp in enumerate(order):
            if remaining <= 0:
                break
            quota = min(remaining, base + (1 if i < extra else 0))
            if quota <= 0:
                continue
            records = self._broker.fetch(tp, self._positions[tp], quota)
            if records:
                fetched[tp] = records
                self._positions[tp] = records[-1].offset + 1
                remaining -= len(records)
            if len(records) < quota:
                exhausted.add(tp)  # at log end; skip in the second sweep
        if remaining > 0:
            for tp in order:
                if remaining <= 0:
                    break
                if tp in exhausted:
                    continue
                records = self._broker.fetch(tp, self._positions[tp], remaining)
                if records:
                    fetched.setdefault(tp, []).extend(records)
                    self._positions[tp] = records[-1].offset + 1
                    remaining -= len(records)
        return RecordBatch(fetched)

    def poll_values(self, max_records: int = 500,
                    timeout: float | None = None) -> list[Any]:
        """Poll and batch-deserialize payloads, in partition/offset order."""
        batch = self.poll(max_records, timeout=timeout)
        return deserialize_batch(self._serializer, [r.value for r in batch])

    def stream_values(self, max_records: int = 500,
                      timeout: float | None = None) -> Iterator[Any]:
        """Yield deserialized payloads until the assigned partitions are drained.

        With a positive ``timeout``, an empty poll blocks up to that long for
        more records before the stream ends, so a consumer can ride a live
        producer without an external retry loop.
        """
        while True:
            values = self.poll_values(max_records, timeout=timeout)
            if not values:
                return
            yield from values

    def wait_for_records(self, timeout: float) -> bool:
        """Block until any assigned partition has records past our position.

        Returns ``True`` when records are available, ``False`` on timeout.
        With nothing assigned it waits for broker activity instead, so
        callers never spin.
        """
        with self._lock:
            self._check_open()
            positions = dict(self._positions)
        if not positions:
            version = self._broker.activity_version()
            self._broker.wait_for_activity(version, timeout)
            return False
        return self._broker.wait_for_any(positions, timeout)

    # -- commit -----------------------------------------------------------------

    def commit(self) -> dict[TopicPartition, int]:
        """Commit current positions for the group; returns what was committed.

        The commit carries the assignment's group generation (when one was
        set by :meth:`assign`), so a consumer holding a superseded
        assignment gets :class:`~repro.errors.FencedGenerationError`
        instead of clobbering the new owners' offsets.
        """
        with self._lock:
            self._check_open()
            offsets = dict(self._positions)
            self._broker.commit(self._group, offsets, generation=self._generation)
            return offsets

    def committed(self, tp: TopicPartition) -> int | None:
        """The group's committed next-offset on ``tp`` (None if never committed)."""
        with self._lock:
            self._check_open()
        return self._broker.committed(self._group, tp)

    def lag(self) -> dict[TopicPartition, int]:
        """Records remaining per assigned partition (end offset - position)."""
        with self._lock:
            self._check_open()
            return {
                tp: self._broker.end_offset(tp) - self._positions[tp]
                for tp in self._assignment
            }

    def close(self) -> None:
        """Close the consumer; further operations raise :class:`ConsumerClosedError`.

        Idempotent: closing an already-closed consumer is a no-op.
        """
        with self._lock:
            self._closed = True

    def __enter__(self) -> "Consumer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ConsumerClosedError("operation on closed consumer")
