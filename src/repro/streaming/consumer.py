"""Consumer API with consumer-group offset management.

A :class:`Consumer` polls records from assigned partitions, deserializes
them, and commits offsets back to the broker under its consumer group.  The
combination of offset-based fetch and explicit commit is what yields the
paper's exactly-once processing guarantee (Section 4.2): after a crash, a new
consumer in the same group resumes from the last committed offset, so every
record is processed exactly once provided commits follow processing.

:func:`assign_partitions` implements a range-style group assignment so that
several consumers in one group share a topic's partitions without overlap.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterator

from repro.errors import ConsumerClosedError, RebalanceError
from repro.streaming.broker import Broker
from repro.streaming.message import Record, RecordBatch, TopicPartition
from repro.streaming.serializers import CompactJsonSerializer, Serializer

__all__ = ["Consumer", "assign_partitions"]


def assign_partitions(partitions: list[TopicPartition], num_members: int,
                      member_index: int) -> list[TopicPartition]:
    """Range assignment of ``partitions`` across ``num_members`` consumers.

    Deterministic and gap-free: the union over all member indexes is exactly
    ``partitions`` and the intersection of any two members is empty.
    """
    if num_members < 1:
        raise RebalanceError(f"num_members must be >= 1, got {num_members}")
    if not 0 <= member_index < num_members:
        raise RebalanceError(
            f"member_index {member_index} outside [0, {num_members})"
        )
    ordered = sorted(partitions)
    return [tp for i, tp in enumerate(ordered) if i % num_members == member_index]


class Consumer:
    """Polls and deserializes records from a broker.

    Parameters
    ----------
    broker:
        Source broker.
    group:
        Consumer-group name; committed offsets are stored per group.
    serializer:
        Must be wire-compatible with the producer's serializer (both built-in
        serializers are mutually compatible at the JSON level).
    auto_offset_reset:
        Where to start when the group has no committed offset:
        ``"earliest"`` (default) or ``"latest"``.
    """

    def __init__(
        self,
        broker: Broker,
        group: str,
        serializer: Serializer | None = None,
        auto_offset_reset: str = "earliest",
    ) -> None:
        if auto_offset_reset not in ("earliest", "latest"):
            raise ValueError(
                f"auto_offset_reset must be 'earliest' or 'latest', got {auto_offset_reset!r}"
            )
        self._broker = broker
        self._group = group
        self._serializer = serializer if serializer is not None else CompactJsonSerializer()
        self._auto_offset_reset = auto_offset_reset
        self._positions: dict[TopicPartition, int] = {}
        self._assignment: list[TopicPartition] = []
        self._closed = False
        self._lock = threading.Lock()

    @property
    def group(self) -> str:
        """Consumer-group name."""
        return self._group

    @property
    def serializer(self) -> Serializer:
        """The serializer in use (read-only)."""
        return self._serializer

    # -- assignment -------------------------------------------------------------

    def subscribe(self, topic: str, num_members: int = 1, member_index: int = 0) -> None:
        """Assign this consumer its share of ``topic``'s partitions."""
        partitions = self._broker.partitions_for(topic)
        self.assign(assign_partitions(partitions, num_members, member_index))

    def assign(self, partitions: list[TopicPartition]) -> None:
        """Explicitly assign ``partitions``; resets positions from committed offsets."""
        with self._lock:
            self._check_open()
            self._assignment = sorted(partitions)
            self._positions = {}
            for tp in self._assignment:
                committed = self._broker.committed(self._group, tp)
                if committed is not None:
                    self._positions[tp] = committed
                elif self._auto_offset_reset == "earliest":
                    self._positions[tp] = 0
                else:
                    self._positions[tp] = self._broker.end_offset(tp)

    def assignment(self) -> list[TopicPartition]:
        """Currently assigned partitions."""
        with self._lock:
            return list(self._assignment)

    def position(self, tp: TopicPartition) -> int:
        """Next offset this consumer will fetch from ``tp``."""
        with self._lock:
            try:
                return self._positions[tp]
            except KeyError:
                raise RebalanceError(f"{tp} is not assigned to this consumer") from None

    def seek(self, tp: TopicPartition, offset: int) -> None:
        """Move the fetch position of ``tp`` to ``offset``."""
        with self._lock:
            if tp not in self._positions:
                raise RebalanceError(f"{tp} is not assigned to this consumer")
            self._positions[tp] = offset

    # -- fetch ------------------------------------------------------------------

    def poll(self, max_records: int = 500) -> RecordBatch:
        """Fetch up to ``max_records`` raw records across assigned partitions.

        Records are fetched fairly (per-partition quota) and the consumer's
        in-memory positions advance; offsets are durable only after
        :meth:`commit`.
        """
        with self._lock:
            self._check_open()
            if not self._assignment:
                return RecordBatch.empty()
            per_partition = max(1, max_records // len(self._assignment))
            fetched: dict[TopicPartition, list[Record]] = {}
            for tp in self._assignment:
                records = self._broker.fetch(tp, self._positions[tp], per_partition)
                if records:
                    fetched[tp] = records
                    self._positions[tp] = records[-1].offset + 1
            return RecordBatch(fetched)

    def poll_values(self, max_records: int = 500) -> list[Any]:
        """Poll and deserialize payloads, in partition/offset order."""
        return [self._serializer.deserialize(r.value) for r in self.poll(max_records)]

    def stream_values(self, max_records: int = 500) -> Iterator[Any]:
        """Yield deserialized payloads until the assigned partitions are drained."""
        while True:
            batch = self.poll(max_records)
            if not batch:
                return
            for record in batch:
                yield self._serializer.deserialize(record.value)

    # -- commit -----------------------------------------------------------------

    def commit(self) -> dict[TopicPartition, int]:
        """Commit current positions for the group; returns what was committed."""
        with self._lock:
            self._check_open()
            offsets = dict(self._positions)
            self._broker.commit(self._group, offsets)
            return offsets

    def committed(self, tp: TopicPartition) -> int | None:
        """The group's committed next-offset on ``tp`` (None if never committed)."""
        return self._broker.committed(self._group, tp)

    def lag(self) -> dict[TopicPartition, int]:
        """Records remaining per assigned partition (end offset - position)."""
        with self._lock:
            return {
                tp: self._broker.end_offset(tp) - self._positions[tp]
                for tp in self._assignment
            }

    def close(self) -> None:
        """Close the consumer; further operations raise :class:`ConsumerClosedError`."""
        with self._lock:
            self._closed = True

    def __enter__(self) -> "Consumer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ConsumerClosedError("operation on closed consumer")
