"""Micro-batch stream processing over the broker (Spark-Streaming analogue).

A :class:`StreamingContext` couples a consumer group to a topic and hands the
application one :class:`MicroBatch` per streaming window, exactly like
Spark's Direct DStream over Kafka (Section 4.2 of the paper): each batch is
an RDD-like :class:`~repro.streaming.rdd.PartitionedDataset` whose partitions
mirror the Kafka partitions, offsets are committed after the batch handler
returns (exactly-once), and ``repartition`` can raise the parallelism of a
single-partition stream (the Section 5.5.2 fix).

Windows here are *count/availability* based rather than wall-clock based:
``next_batch()`` drains whatever is available up to ``max_batch_size``.  A
wall-clock window is available through ``run(duration)`` for streaming
applications that want periodic batches.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.trace import TRACE_ID_HEADER, TRACE_SENT_HEADER
from repro.streaming.broker import Broker
from repro.streaming.consumer import Consumer
from repro.streaming.message import TopicPartition
from repro.streaming.rdd import PartitionedDataset
from repro.streaming.serializers import Serializer, deserialize_batch

__all__ = ["MicroBatch", "StreamingContext", "BatchStats"]


@dataclass
class BatchStats:
    """Timing and size metadata for one processed micro-batch."""

    batch_index: int
    num_records: int
    deserialize_seconds: float
    handler_seconds: float
    offsets: dict[TopicPartition, int] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Deserialization plus handler time."""
        return self.deserialize_seconds + self.handler_seconds


class MicroBatch:
    """One streaming window of deserialized records, as a partitioned dataset.

    ``traces`` carries the sampled trace contexts found in the window's
    record headers as ``(trace_id, producer_sent_at)`` pairs, and
    ``polled_at`` is the perf-counter instant the poll returned — together
    they let the consumer application derive queue-dwell spans (producer
    send -> consumer poll) without re-scanning raw records.
    """

    def __init__(self, index: int, dataset: PartitionedDataset,
                 offsets: dict[TopicPartition, int], deserialize_seconds: float,
                 traces: list[tuple[str, float]] | None = None,
                 polled_at: float = 0.0):
        self.index = index
        self.dataset = dataset
        self.offsets = offsets
        self.deserialize_seconds = deserialize_seconds
        self.traces = traces if traces is not None else []
        self.polled_at = polled_at

    def __len__(self) -> int:
        return self.dataset.count()

    def is_empty(self) -> bool:
        """True when the window contained no records."""
        return len(self) == 0


class StreamingContext:
    """Micro-batch scheduler over a broker topic.

    Parameters
    ----------
    broker, topic, group:
        Source topic and the consumer group used for exactly-once offsets.
    serializer:
        Payload serializer shared with the consumer.
    max_batch_size:
        Maximum records drained into one micro-batch.
    coordinator, member_id:
        When a :class:`~repro.cluster.coordinator.GroupCoordinator` is
        given, the context joins it as ``member_id`` instead of statically
        subscribing to every partition: the coordinator deals this context
        its share of the topic and re-deals (with a bumped, fenced
        generation) whenever membership changes.
    """

    def __init__(self, broker: Broker, topic: str, group: str,
                 serializer: Serializer | None = None,
                 max_batch_size: int = 10_000,
                 coordinator: Any | None = None,
                 member_id: str | None = None) -> None:
        self._broker = broker
        self._topic = topic
        self._consumer = Consumer(broker, group, serializer=serializer)
        if coordinator is not None:
            coordinator.join(member_id or f"member-{id(self):x}", self._consumer)
        else:
            self._consumer.subscribe(topic)
        self._batch_index = 0
        self.history: list[BatchStats] = []

    @property
    def consumer(self) -> Consumer:
        """The underlying consumer (e.g. for lag inspection)."""
        return self._consumer

    def next_batch(self, max_records: int | None = None,
                   timeout: float | None = None) -> MicroBatch:
        """Drain available records into one micro-batch (may be empty).

        The batch's dataset has one partition per Kafka partition that
        contributed records — this is the Direct DStream 1:1 mapping, and it
        is why an un-partitioned topic yields a single-partition dataset that
        downstream actions process serially.

        A positive ``timeout`` long-polls the broker for the first record
        instead of returning an empty batch immediately.
        """
        started = time.perf_counter()
        batch = self._consumer.poll(max_records or 10_000, timeout=timeout)
        polled_at = time.perf_counter()
        partitions: list[list[Any]] = []
        traces: list[tuple[str, float]] = []
        serializer = self._consumer.serializer
        for tp in batch.partitions():
            records = batch.records(tp)
            partitions.append(
                deserialize_batch(serializer, [r.value for r in records])
            )
            for record in records:
                if record.headers and TRACE_ID_HEADER in record.headers:
                    traces.append((
                        record.headers[TRACE_ID_HEADER],
                        float(record.headers[TRACE_SENT_HEADER]),
                    ))
        deserialize_seconds = time.perf_counter() - started
        if not partitions:
            partitions = [[]]
        dataset = PartitionedDataset.from_partitions(partitions)
        micro = MicroBatch(
            index=self._batch_index,
            dataset=dataset,
            offsets=batch.max_offsets(),
            deserialize_seconds=deserialize_seconds,
            traces=traces,
            polled_at=polled_at,
        )
        self._batch_index += 1
        return micro

    def commit(self) -> None:
        """Commit the consumer's positions (call after the handler succeeds)."""
        self._consumer.commit()

    def wait_for_records(self, timeout: float) -> bool:
        """Block until the topic has unread records or ``timeout`` passes.

        Event-driven idle wait for streaming loops: wakes on the broker's
        append notification instead of sleep-polling.  Returns ``True`` when
        records are available.
        """
        return self._consumer.wait_for_records(timeout)

    def process_available(self, handler: Callable[[MicroBatch], None],
                          max_records: int | None = None) -> list[BatchStats]:
        """Process every already-available record in micro-batches.

        For each non-empty batch: run ``handler``, then commit offsets —
        the processing-then-commit order that gives exactly-once semantics.
        Returns per-batch stats and appends them to :attr:`history`.
        """
        stats: list[BatchStats] = []
        while True:
            batch = self.next_batch(max_records)
            if batch.is_empty():
                break
            started = time.perf_counter()
            handler(batch)
            handler_seconds = time.perf_counter() - started
            self.commit()
            entry = BatchStats(
                batch_index=batch.index,
                num_records=len(batch),
                deserialize_seconds=batch.deserialize_seconds,
                handler_seconds=handler_seconds,
                offsets=batch.offsets,
            )
            stats.append(entry)
            self.history.append(entry)
        return stats

    def run(self, handler: Callable[[MicroBatch], None], duration_seconds: float,
            window_seconds: float = 0.05) -> list[BatchStats]:
        """Run periodic micro-batches for ``duration_seconds`` of wall time.

        Between empty polls the context blocks up to ``window_seconds`` on
        the broker's append notification (waking immediately when a
        concurrent producer fills the topic) — the Producer/Consumer
        experiment setup of Section 5.5.1 without sleep-polling.
        """
        deadline = time.perf_counter() + duration_seconds
        all_stats: list[BatchStats] = []
        while True:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            processed = self.process_available(handler)
            all_stats.extend(processed)
            if not processed:
                self.wait_for_records(min(window_seconds, remaining))
        return all_stats
