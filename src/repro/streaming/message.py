"""Record and addressing types for the streaming substrate.

These mirror the basic Kafka abstractions: a :class:`Record` is one message
(key, value, timestamp, headers) stored at a concrete ``(topic, partition,
offset)`` coordinate, and a :class:`TopicPartition` names one partition of a
topic for assignment and offset bookkeeping.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from types import MappingProxyType
from typing import Iterable, Iterator, Mapping, NamedTuple

#: Shared immutable mapping for the (dominant) headerless record case, so
#: hot append paths never allocate a per-record empty dict.
EMPTY_HEADERS: Mapping[str, str] = MappingProxyType({})


@dataclass(frozen=True, slots=True)
class TopicPartition:
    """Address of one partition of one topic.

    Hashable and orderable so it can be used as a dictionary key for offset
    maps and sorted for deterministic assignment.
    """

    topic: str
    partition: int

    def __post_init__(self) -> None:
        if self.partition < 0:
            raise ValueError(f"partition must be >= 0, got {self.partition}")

    def __lt__(self, other: "TopicPartition") -> bool:
        return (self.topic, self.partition) < (other.topic, other.partition)


class Record(NamedTuple):
    """One message in a partition log.

    ``value`` is the serialized payload (``bytes``).  ``key`` optionally
    routes the record to a partition and travels with it.  ``offset`` is
    assigned by the broker on append; records created by a producer before
    the append carry ``offset=-1``.

    A ``NamedTuple`` rather than a dataclass: broker appends construct one
    ``Record`` per message, and tuple construction is several times cheaper
    than a frozen-dataclass ``__init__`` — measurable on the batched append
    hot path (``benchmarks/test_streaming_concurrency.py``).  Instances
    remain immutable and field-accessed exactly like the previous dataclass.
    """

    topic: str
    partition: int
    offset: int
    key: bytes | None
    value: bytes
    timestamp: float
    headers: Mapping[str, str] = EMPTY_HEADERS

    @property
    def topic_partition(self) -> TopicPartition:
        """The :class:`TopicPartition` this record belongs to."""
        return TopicPartition(self.topic, self.partition)

    def size_bytes(self) -> int:
        """Approximate wire size of the record (key + value + headers)."""
        size = len(self.value)
        if self.key is not None:
            size += len(self.key)
        for name, val in self.headers.items():
            size += len(name.encode("utf-8")) + len(val.encode("utf-8"))
        return size


class RecordBatch:
    """An ordered batch of records fetched from one or more partitions.

    Returned by :meth:`repro.streaming.consumer.Consumer.poll`.  Iterating a
    batch yields records in per-partition offset order.
    """

    def __init__(self, records_by_partition: Mapping[TopicPartition, list[Record]]):
        self._by_partition = {
            tp: list(records) for tp, records in records_by_partition.items() if records
        }

    def __iter__(self) -> Iterator[Record]:
        for tp in sorted(self._by_partition):
            yield from self._by_partition[tp]

    def __len__(self) -> int:
        return sum(len(records) for records in self._by_partition.values())

    def __bool__(self) -> bool:
        return len(self) > 0

    def partitions(self) -> list[TopicPartition]:
        """Partitions that contributed at least one record, sorted."""
        return sorted(self._by_partition)

    def records(self, tp: TopicPartition) -> list[Record]:
        """Records fetched from ``tp`` (empty list if none)."""
        return list(self._by_partition.get(tp, []))

    def max_offsets(self) -> dict[TopicPartition, int]:
        """Highest offset seen per partition, for commit bookkeeping."""
        return {tp: records[-1].offset for tp, records in self._by_partition.items()}

    @staticmethod
    def empty() -> "RecordBatch":
        """A batch containing no records."""
        return RecordBatch({})


_clock_lock = threading.Lock()
_clock_last = 0.0


def monotonic_timestamp() -> float:
    """Wall-clock timestamp, strictly increasing within the process.

    ``time.time()`` can return identical values for records produced in a
    tight loop (and a sub-microsecond additive tie-breaker would vanish in
    float64 at epoch magnitude), so the last issued value is tracked and
    each call returns at least one microsecond more than the previous one.
    """
    return monotonic_timestamps(1)[0]


def monotonic_timestamps(count: int) -> list[float]:
    """``count`` strictly increasing timestamps under one clock-lock acquisition.

    The batched variant of :func:`monotonic_timestamp`: a batch append stamps
    all of its records with a single lock round-trip instead of one per
    record, while preserving the strict process-wide ordering guarantee.
    """
    global _clock_last
    if count < 1:
        return []
    with _clock_lock:
        base = time.time()
        if base <= _clock_last:
            base = _clock_last + 1e-6
        stamps = [base + i * 1e-6 for i in range(count)]
        _clock_last = stamps[-1]
        return stamps


def iter_values(records: Iterable[Record]) -> Iterator[bytes]:
    """Yield just the payloads of ``records`` (helper for tests/examples)."""
    for record in records:
        yield record.value
