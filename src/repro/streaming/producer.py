"""Producer API for the streaming substrate.

A :class:`Producer` serializes payload objects and appends them to a broker
topic, choosing a partition with a pluggable partitioner (hash of the key by
default, round-robin for key-less records).  It mirrors the handcrafted
Producer application of Section 5.5.1, which replays test-set alarms into
Kafka at a controlled rate; rate control is available via ``rate_limit``.

Concurrency model: a producer may be shared by many threads.  Its internal
lock protects only the closed flag and the partitioning counter — payload
serialization, the partitioner call, the broker append and any rate-limit
sleep all happen *outside* the lock, so one thread serializing a large
record (or throttling) never stalls its siblings.  ``send_many`` groups
records into per-partition batches and lands each group with a single
:meth:`~repro.streaming.broker.Broker.append_batch` call, which is the fast
path measured in ``benchmarks/test_streaming_concurrency.py``.
:class:`ProducerStats` guards its counters with its own lock, so shared-
producer statistics stay exact under concurrent senders.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Iterable

from repro.errors import ProducerClosedError
from repro.streaming.broker import Broker
from repro.streaming.serializers import CompactJsonSerializer, Serializer

__all__ = ["Producer", "ProducerStats", "hash_partitioner", "round_robin_partitioner"]


def hash_partitioner(key: bytes | None, num_partitions: int, counter: int) -> int:
    """Kafka-style default partitioner: hash the key, round-robin when key-less."""
    if key is None:
        return counter % num_partitions
    # Python's str/bytes hash is salted per process; use a stable FNV-1a.
    acc = 0xCBF29CE484222325
    for byte in key:
        acc = ((acc ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc % num_partitions

def round_robin_partitioner(key: bytes | None, num_partitions: int, counter: int) -> int:
    """Ignore the key entirely and spread records evenly."""
    return counter % num_partitions


class ProducerStats:
    """Counters exposed by a producer for throughput measurements.

    Updates are guarded by an internal lock so a producer shared by several
    sender threads reports exact totals; reads return consistent snapshots.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records_sent = 0
        self._bytes_sent = 0
        self._started_at: float | None = None
        self._finished_at: float | None = None
        self._started_wall: float | None = None
        self._finished_wall: float | None = None

    def mark_started(self) -> None:
        """Stamp the start of the active span (first call wins)."""
        with self._lock:
            if self._started_at is None:
                self._started_at = time.perf_counter()
                self._started_wall = time.time()

    def record_send(self, records: int, payload_bytes: int) -> None:
        """Atomically account one completed send of ``records`` records."""
        now = time.perf_counter()
        now_wall = time.time()
        with self._lock:
            if self._started_at is None:
                self._started_at = now
                self._started_wall = now_wall
            self._records_sent += records
            self._bytes_sent += payload_bytes
            self._finished_at = now
            self._finished_wall = now_wall

    @property
    def records_sent(self) -> int:
        with self._lock:
            return self._records_sent

    @property
    def bytes_sent(self) -> int:
        with self._lock:
            return self._bytes_sent

    @property
    def started_at(self) -> float | None:
        with self._lock:
            return self._started_at

    @property
    def finished_at(self) -> float | None:
        with self._lock:
            return self._finished_at

    @property
    def started_wall(self) -> float | None:
        """Wall-clock (``time.time()``) stamp of the first send, or None."""
        with self._lock:
            return self._started_wall

    @property
    def finished_wall(self) -> float | None:
        """Wall-clock (``time.time()``) stamp of the last send, or None."""
        with self._lock:
            return self._finished_wall

    @property
    def elapsed_seconds(self) -> float:
        """Active send span; 0.0 before the first send completes."""
        with self._lock:
            if self._started_at is None or self._finished_at is None:
                return 0.0
            return self._finished_at - self._started_at

    @property
    def records_per_second(self) -> float:
        """Records/second over the active span (count itself when instant)."""
        elapsed = self.elapsed_seconds
        if elapsed <= 0:
            return float(self.records_sent)
        return self.records_sent / elapsed

    @property
    def bytes_per_second(self) -> float:
        """Payload bytes/second over the active span (total when instant)."""
        elapsed = self.elapsed_seconds
        if elapsed <= 0:
            return float(self.bytes_sent)
        return self.bytes_sent / elapsed

    def throughput(self) -> float:
        """Records per second over the producer's active lifetime."""
        return self.records_per_second


class Producer:
    """Serializes objects and appends them to one broker.

    Parameters
    ----------
    broker:
        Target broker.
    serializer:
        Payload serializer; defaults to the fast :class:`CompactJsonSerializer`.
        Passing the reflective serializer reproduces the slow configuration of
        Figure 11.
    partitioner:
        Callable ``(key, num_partitions, counter) -> partition``.
    rate_limit:
        Optional maximum records/second.  ``None`` means unthrottled.
        Throttle sleeps happen outside the producer lock, so a rate-limited
        producer shared by several threads never serializes its siblings
        behind one thread's sleep.
    """

    def __init__(
        self,
        broker: Broker,
        serializer: Serializer | None = None,
        partitioner: Callable[[bytes | None, int, int], int] = hash_partitioner,
        rate_limit: float | None = None,
    ) -> None:
        self._broker = broker
        self._serializer = serializer if serializer is not None else CompactJsonSerializer()
        self._partitioner = partitioner
        self._rate_limit = rate_limit
        self._counter = 0
        self._closed = False
        self._lock = threading.Lock()
        self.stats = ProducerStats()

    @property
    def serializer(self) -> Serializer:
        """The serializer in use (read-only)."""
        return self._serializer

    def send(self, topic: str, value: Any, key: str | None = None,
             partition: int | None = None,
             headers: dict[str, str] | None = None) -> tuple[int, int]:
        """Serialize ``value`` and append it to ``topic``.

        Returns ``(partition, offset)`` of the stored record.  Serialization
        and partitioning run outside the producer lock; only the closed-check
        and counter increment are serialized between threads.
        """
        if self._closed:
            raise ProducerClosedError("send() on closed producer")
        payload = self._serializer.serialize(value)
        key_bytes = key.encode("utf-8") if key is not None else None
        counter = self._next_counter(1)
        if partition is None:
            num_partitions = self._broker.num_partitions(topic)
            partition = self._partitioner(key_bytes, num_partitions, counter)
        self.stats.mark_started()
        offset = self._broker.append(topic, partition, key_bytes, payload,
                                     headers=headers)
        self.stats.record_send(1, len(payload))
        self._maybe_throttle()
        return partition, offset

    def send_many(self, topic: str, values: Iterable[Any],
                  key_fn: Callable[[Any], str | None] | None = None,
                  batch_size: int = 500) -> int:
        """Send every object in ``values``; returns the number sent.

        ``key_fn`` extracts a routing key per object (e.g. the device address,
        so one device's alarms land in one partition and stay ordered).

        Records are serialized and partitioned up front, grouped into
        per-partition batches of at most ``batch_size`` records, and appended
        via :meth:`Broker.append_batch` — one lock round-trip and one
        fetcher wakeup per partition group instead of per record.  Relative
        order within a partition is preserved.

        With ``rate_limit`` set, throttling happens between chunks, so the
        chunk size is capped at ~50 ms worth of records to keep the paced
        stream from degenerating into ``batch_size``-sized bursts.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if self._rate_limit is not None:
            batch_size = min(batch_size, max(1, int(self._rate_limit * 0.05)))
        total = 0
        chunk: list[Any] = []
        for value in values:
            chunk.append(value)
            if len(chunk) >= batch_size:
                total += self._send_chunk(topic, chunk, key_fn)
                chunk = []
        if chunk:
            total += self._send_chunk(topic, chunk, key_fn)
        return total

    def _send_chunk(self, topic: str, values: list[Any],
                    key_fn: Callable[[Any], str | None] | None) -> int:
        if self._closed:
            raise ProducerClosedError("send_many() on closed producer")
        serialize = self._serializer.serialize
        entries: list[tuple[bytes | None, bytes]] = []
        payload_bytes = 0
        for value in values:
            key = key_fn(value) if key_fn is not None else None
            key_bytes = key.encode("utf-8") if key is not None else None
            payload = serialize(value)
            payload_bytes += len(payload)
            entries.append((key_bytes, payload))
        num_partitions = self._broker.num_partitions(topic)
        base = self._next_counter(len(entries))
        partitioner = self._partitioner
        grouped: dict[int, list[tuple[bytes | None, bytes]]] = {}
        for i, entry in enumerate(entries):
            target = partitioner(entry[0], num_partitions, base + i)
            grouped.setdefault(target, []).append(entry)
        self.stats.mark_started()
        for partition in sorted(grouped):
            self._broker.append_batch(topic, partition, grouped[partition])
        self.stats.record_send(len(entries), payload_bytes)
        self._maybe_throttle()
        return len(entries)

    def close(self) -> None:
        """Close the producer; further sends raise :class:`ProducerClosedError`.

        Idempotent: closing an already-closed producer is a no-op.
        """
        with self._lock:
            self._closed = True

    def __enter__(self) -> "Producer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _next_counter(self, count: int) -> int:
        """Reserve ``count`` partitioning-counter values; returns the first."""
        with self._lock:
            if self._closed:
                raise ProducerClosedError("send() on closed producer")
            base = self._counter
            self._counter += count
            return base

    def _maybe_throttle(self) -> None:
        """Sleep just enough to respect ``rate_limit`` (token-bucket style).

        Runs outside the producer lock: a throttled thread sleeps alone.
        """
        if self._rate_limit is None:
            return
        started = self.stats.started_at
        if started is None:
            return
        expected_elapsed = self.stats.records_sent / self._rate_limit
        actual_elapsed = time.perf_counter() - started
        if expected_elapsed > actual_elapsed:
            time.sleep(expected_elapsed - actual_elapsed)
