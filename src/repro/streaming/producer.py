"""Producer API for the streaming substrate.

A :class:`Producer` serializes payload objects and appends them to a broker
topic, choosing a partition with a pluggable partitioner (hash of the key by
default, round-robin for key-less records).  It mirrors the handcrafted
Producer application of Section 5.5.1, which replays test-set alarms into
Kafka at a controlled rate; rate control is available via ``rate_limit``.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Iterable

from repro.errors import ProducerClosedError
from repro.streaming.broker import Broker
from repro.streaming.message import monotonic_timestamp
from repro.streaming.serializers import CompactJsonSerializer, Serializer

__all__ = ["Producer", "ProducerStats", "hash_partitioner", "round_robin_partitioner"]


def hash_partitioner(key: bytes | None, num_partitions: int, counter: int) -> int:
    """Kafka-style default partitioner: hash the key, round-robin when key-less."""
    if key is None:
        return counter % num_partitions
    # Python's str/bytes hash is salted per process; use a stable FNV-1a.
    acc = 0xCBF29CE484222325
    for byte in key:
        acc = ((acc ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc % num_partitions

def round_robin_partitioner(key: bytes | None, num_partitions: int, counter: int) -> int:
    """Ignore the key entirely and spread records evenly."""
    return counter % num_partitions


class ProducerStats:
    """Counters exposed by a producer for throughput measurements."""

    def __init__(self) -> None:
        self.records_sent = 0
        self.bytes_sent = 0
        self.started_at: float | None = None
        self.finished_at: float | None = None

    @property
    def elapsed_seconds(self) -> float:
        """Active send span; 0.0 before the first send completes."""
        if self.started_at is None or self.finished_at is None:
            return 0.0
        return self.finished_at - self.started_at

    @property
    def records_per_second(self) -> float:
        """Records/second over the active span (count itself when instant)."""
        elapsed = self.elapsed_seconds
        if elapsed <= 0:
            return float(self.records_sent)
        return self.records_sent / elapsed

    @property
    def bytes_per_second(self) -> float:
        """Payload bytes/second over the active span (total when instant)."""
        elapsed = self.elapsed_seconds
        if elapsed <= 0:
            return float(self.bytes_sent)
        return self.bytes_sent / elapsed

    def throughput(self) -> float:
        """Records per second over the producer's active lifetime."""
        return self.records_per_second


class Producer:
    """Serializes objects and appends them to one broker.

    Parameters
    ----------
    broker:
        Target broker.
    serializer:
        Payload serializer; defaults to the fast :class:`CompactJsonSerializer`.
        Passing the reflective serializer reproduces the slow configuration of
        Figure 11.
    partitioner:
        Callable ``(key, num_partitions, counter) -> partition``.
    rate_limit:
        Optional maximum records/second.  ``None`` means unthrottled.
    """

    def __init__(
        self,
        broker: Broker,
        serializer: Serializer | None = None,
        partitioner: Callable[[bytes | None, int, int], int] = hash_partitioner,
        rate_limit: float | None = None,
    ) -> None:
        self._broker = broker
        self._serializer = serializer if serializer is not None else CompactJsonSerializer()
        self._partitioner = partitioner
        self._rate_limit = rate_limit
        self._counter = 0
        self._closed = False
        self._lock = threading.Lock()
        self.stats = ProducerStats()

    @property
    def serializer(self) -> Serializer:
        """The serializer in use (read-only)."""
        return self._serializer

    def send(self, topic: str, value: Any, key: str | None = None,
             partition: int | None = None,
             headers: dict[str, str] | None = None) -> tuple[int, int]:
        """Serialize ``value`` and append it to ``topic``.

        Returns ``(partition, offset)`` of the stored record.
        """
        with self._lock:
            if self._closed:
                raise ProducerClosedError("send() on closed producer")
            payload = self._serializer.serialize(value)
            key_bytes = key.encode("utf-8") if key is not None else None
            if partition is None:
                num_partitions = self._broker.num_partitions(topic)
                partition = self._partitioner(key_bytes, num_partitions, self._counter)
            self._counter += 1
            if self.stats.started_at is None:
                self.stats.started_at = time.perf_counter()
            offset = self._broker.append(
                topic, partition, key_bytes, payload,
                timestamp=monotonic_timestamp(), headers=headers,
            )
            self.stats.records_sent += 1
            self.stats.bytes_sent += len(payload)
            self.stats.finished_at = time.perf_counter()
            self._maybe_throttle()
            return partition, offset

    def send_many(self, topic: str, values: Iterable[Any],
                  key_fn: Callable[[Any], str | None] | None = None) -> int:
        """Send every object in ``values``; returns the number sent.

        ``key_fn`` extracts a routing key per object (e.g. the device address,
        so one device's alarms land in one partition and stay ordered).
        """
        count = 0
        for value in values:
            key = key_fn(value) if key_fn is not None else None
            self.send(topic, value, key=key)
            count += 1
        return count

    def close(self) -> None:
        """Close the producer; further sends raise :class:`ProducerClosedError`."""
        with self._lock:
            self._closed = True

    def __enter__(self) -> "Producer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _maybe_throttle(self) -> None:
        """Sleep just enough to respect ``rate_limit`` (token-bucket style)."""
        if self._rate_limit is None or self.stats.started_at is None:
            return
        expected_elapsed = self.stats.records_sent / self._rate_limit
        actual_elapsed = time.perf_counter() - self.stats.started_at
        if expected_elapsed > actual_elapsed:
            time.sleep(expected_elapsed - actual_elapsed)
