"""A miniature RDD: lazy, partitioned, cacheable datasets.

Spark's Resilient Distributed Datasets are lazy — a transformation builds a
plan, and every action re-executes that plan unless the dataset was
explicitly cached.  The paper's "cache data that will be reused" lesson
(Section 6.2) is about exactly this: their deserialization step silently ran
twice because the same stream batch fed both the ML classifier and the
history query without a ``cache()`` in between.

:class:`PartitionedDataset` reproduces that semantics faithfully:

* transformations (``map``, ``filter``, ``flat_map``, ``distinct``,
  ``repartition``) are lazy and return a new dataset;
* actions (``collect``, ``count``, ``reduce``, ``foreach_partition``)
  execute the plan — *each time they are called*, unless :meth:`cache` was
  invoked;
* ``num_computations`` counts how many times the source was materialized, so
  tests and benchmarks can observe the recompute-versus-cache effect.

Parallel execution uses a thread pool over partitions, mirroring Spark's
task-per-partition model (and the Kafka repartitioning fix of Section 5.5.2).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Iterable, Iterator, TypeVar

T = TypeVar("T")
U = TypeVar("U")

__all__ = ["PartitionedDataset"]


class PartitionedDataset:
    """Lazy partitioned dataset with Spark-like transformation/action split."""

    def __init__(self, compute: Callable[[], list[list[Any]]],
                 parent: "PartitionedDataset | None" = None):
        self._compute = compute
        self._parent = parent
        self._cached: list[list[Any]] | None = None
        self._cache_enabled = False
        self._lock = threading.Lock()
        self._computations = 0

    # -- construction -----------------------------------------------------------

    @staticmethod
    def from_partitions(partitions: list[list[Any]]) -> "PartitionedDataset":
        """Wrap already-materialized partitions (copies are not taken)."""
        snapshot = [list(p) for p in partitions]
        return PartitionedDataset(lambda: [list(p) for p in snapshot])

    @staticmethod
    def from_iterable(items: Iterable[Any], num_partitions: int = 1) -> "PartitionedDataset":
        """Distribute ``items`` round-robin over ``num_partitions`` partitions."""
        if num_partitions < 1:
            raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
        partitions: list[list[Any]] = [[] for _ in range(num_partitions)]
        for i, item in enumerate(items):
            partitions[i % num_partitions].append(item)
        return PartitionedDataset.from_partitions(partitions)

    # -- transformations (lazy) ---------------------------------------------------

    def map(self, fn: Callable[[Any], Any]) -> "PartitionedDataset":
        """Apply ``fn`` to every element (lazy)."""
        return PartitionedDataset(
            lambda: [[fn(x) for x in part] for part in self._materialize()], parent=self
        )

    def filter(self, predicate: Callable[[Any], bool]) -> "PartitionedDataset":
        """Keep elements where ``predicate`` is true (lazy)."""
        return PartitionedDataset(
            lambda: [[x for x in part if predicate(x)] for part in self._materialize()],
            parent=self,
        )

    def flat_map(self, fn: Callable[[Any], Iterable[Any]]) -> "PartitionedDataset":
        """Apply ``fn`` and flatten its results within each partition (lazy)."""
        def compute() -> list[list[Any]]:
            return [[y for x in part for y in fn(x)] for part in self._materialize()]
        return PartitionedDataset(compute, parent=self)

    def distinct(self) -> "PartitionedDataset":
        """Global distinct; results land in the same number of partitions (lazy).

        Element order follows first occurrence across partitions in order,
        which keeps the operation deterministic.
        """
        def compute() -> list[list[Any]]:
            parts = self._materialize()
            seen: set[Any] = set()
            unique: list[Any] = []
            for part in parts:
                for x in part:
                    if x not in seen:
                        seen.add(x)
                        unique.append(x)
            n = max(1, len(parts))
            redistributed: list[list[Any]] = [[] for _ in range(n)]
            for i, x in enumerate(unique):
                redistributed[i % n].append(x)
            return redistributed
        return PartitionedDataset(compute, parent=self)

    def repartition(self, num_partitions: int) -> "PartitionedDataset":
        """Redistribute elements round-robin into ``num_partitions`` (lazy).

        This is the fix from Section 5.5.2: an un-partitioned Kafka stream
        arrives as a single partition and is processed serially; after
        ``repartition(n)`` actions can use ``n`` parallel workers.
        """
        if num_partitions < 1:
            raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
        def compute() -> list[list[Any]]:
            flat = [x for part in self._materialize() for x in part]
            out: list[list[Any]] = [[] for _ in range(num_partitions)]
            for i, x in enumerate(flat):
                out[i % num_partitions].append(x)
            return out
        return PartitionedDataset(compute, parent=self)

    def union(self, other: "PartitionedDataset") -> "PartitionedDataset":
        """Concatenate two datasets partition-wise (lazy)."""
        return PartitionedDataset(
            lambda: self._materialize() + other._materialize(), parent=self
        )

    # -- caching ------------------------------------------------------------------

    def cache(self) -> "PartitionedDataset":
        """Materialize at most once; later actions reuse the stored partitions."""
        self._cache_enabled = True
        return self

    def unpersist(self) -> "PartitionedDataset":
        """Drop any cached partitions and disable caching."""
        with self._lock:
            self._cache_enabled = False
            self._cached = None
        return self

    @property
    def is_cached(self) -> bool:
        """Whether :meth:`cache` is enabled on this dataset."""
        return self._cache_enabled

    @property
    def num_computations(self) -> int:
        """How many times this dataset's plan has been executed."""
        return self._computations

    # -- actions (eager) ------------------------------------------------------------

    def collect(self) -> list[Any]:
        """Execute the plan and return all elements in partition order."""
        return [x for part in self._materialize() for x in part]

    def collect_partitions(self) -> list[list[Any]]:
        """Execute the plan and return the raw partitions."""
        return [list(p) for p in self._materialize()]

    def count(self) -> int:
        """Execute the plan and count elements."""
        return sum(len(part) for part in self._materialize())

    def num_partitions(self) -> int:
        """Number of partitions (requires executing the plan)."""
        return len(self._materialize())

    def reduce(self, fn: Callable[[Any, Any], Any]) -> Any:
        """Fold all elements with ``fn``; raises ValueError on empty datasets."""
        items = self.collect()
        if not items:
            raise ValueError("reduce() of empty dataset")
        acc = items[0]
        for item in items[1:]:
            acc = fn(acc, item)
        return acc

    def map_partitions_parallel(self, fn: Callable[[list[Any]], Any],
                                max_workers: int | None = None) -> list[Any]:
        """Run ``fn`` once per partition on a thread pool; returns per-partition results.

        This is the task-per-partition execution model: with ``p`` partitions
        and ``max_workers >= p``, all partitions are processed concurrently.
        """
        parts = self._materialize()
        if len(parts) == 1:
            return [fn(parts[0])]
        with ThreadPoolExecutor(max_workers=max_workers or len(parts)) as pool:
            return list(pool.map(fn, parts))

    def foreach_partition(self, fn: Callable[[list[Any]], None]) -> None:
        """Run a side-effecting ``fn`` serially on each partition."""
        for part in self._materialize():
            fn(part)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.collect())

    # -- internals --------------------------------------------------------------------

    def _materialize(self) -> list[list[Any]]:
        with self._lock:
            if self._cache_enabled and self._cached is not None:
                return self._cached
            self._computations += 1
            result = self._compute()
            if self._cache_enabled:
                self._cached = result
            return result
