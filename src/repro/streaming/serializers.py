"""JSON serializers with deliberately different per-record overhead.

The paper's first end-to-end bottleneck (Section 5.5.2, Figure 11) was the
JSON serializer: the Jackson library performed poorly on small objects and
switching to Gson roughly doubled producer throughput.  We reproduce the
*mechanism* — per-record reflective overhead versus a precompiled fast path —
with two interchangeable serializers:

* :class:`ReflectiveJsonSerializer` ("Jackson-like"): introspects every
  record, validates types recursively, normalizes key order, and performs a
  verification re-parse on serialization.  Correct but slow.
* :class:`CompactJsonSerializer` ("Gson-like"): straight ``json.dumps`` /
  ``json.loads`` with compact separators.  Fast.

Both implement the same :class:`Serializer` interface and round-trip any
JSON-compatible object, so they can be swapped in a producer/consumer pair
without any other change — exactly the experiment of Figure 11.
"""

from __future__ import annotations

import json
from typing import Any, Protocol

from repro.errors import SerializationError

__all__ = [
    "Serializer",
    "CompactJsonSerializer",
    "ReflectiveJsonSerializer",
    "deserialize_batch",
    "serializer_by_name",
]


class Serializer(Protocol):
    """Converts payload objects to and from ``bytes``."""

    name: str

    def serialize(self, obj: Any) -> bytes:
        """Encode ``obj`` as bytes.  Raises :class:`SerializationError`."""
        ...

    def deserialize(self, data: bytes) -> Any:
        """Decode bytes back into an object.  Raises :class:`SerializationError`."""
        ...


def deserialize_batch(serializer: Serializer, payloads: list[bytes]) -> list[Any]:
    """Deserialize many payloads through ``serializer`` in one call.

    Dispatches to the serializer's own ``deserialize_batch`` when it has one
    (both built-ins do — they skip per-record dispatch overhead) and falls
    back to a plain loop for third-party serializers that only implement the
    record-at-a-time protocol.
    """
    batched = getattr(serializer, "deserialize_batch", None)
    if batched is not None:
        return batched(payloads)
    deserialize = serializer.deserialize
    return [deserialize(data) for data in payloads]


class CompactJsonSerializer:
    """Fast JSON serializer (the "Gson" role in Figure 11).

    Uses compact separators and no per-record validation beyond what the
    ``json`` module itself performs.
    """

    name = "compact"

    def serialize(self, obj: Any) -> bytes:
        try:
            return json.dumps(obj, separators=(",", ":"), ensure_ascii=False).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise SerializationError(f"cannot serialize object: {exc}") from exc

    def deserialize(self, data: bytes) -> Any:
        try:
            return json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SerializationError(f"cannot deserialize payload: {exc}") from exc

    def deserialize_batch(self, payloads: list[bytes]) -> list[Any]:
        """Decode many payloads with the parse call hoisted out of the loop."""
        loads = json.loads
        try:
            return [loads(data.decode("utf-8")) for data in payloads]
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SerializationError(f"cannot deserialize payload: {exc}") from exc


_JSON_SCALARS = (str, int, float, bool, type(None))


class ReflectiveJsonSerializer:
    """Slow, validating JSON serializer (the "Jackson" role in Figure 11).

    The cost model mirrors what a reflection-based Java serializer does for
    every small object:

    1. a full recursive type check of the payload ("reflection"),
    2. key normalization (sorted keys, like a bean-property walk),
    3. pretty serialization followed by a verification re-parse,
    4. on deserialization, a second validation walk of the parsed tree.

    The output is byte-for-byte *compatible* with
    :class:`CompactJsonSerializer` at the JSON level (a consumer using either
    serializer can read records produced with the other).
    """

    name = "reflective"

    def serialize(self, obj: Any) -> bytes:
        self._validate(obj, depth=0)
        try:
            text = json.dumps(obj, sort_keys=True, indent=None, ensure_ascii=True)
            # Verification pass: re-parse and compare, as a defensive
            # serializer would do for schema enforcement.
            reparsed = json.loads(text)
        except (TypeError, ValueError) as exc:
            raise SerializationError(f"cannot serialize object: {exc}") from exc
        self._validate(reparsed, depth=0)
        return text.encode("utf-8")

    def deserialize(self, data: bytes) -> Any:
        try:
            obj = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SerializationError(f"cannot deserialize payload: {exc}") from exc
        self._validate(obj, depth=0)
        return obj

    def deserialize_batch(self, payloads: list[bytes]) -> list[Any]:
        """Decode many payloads; the validation walk still runs per record."""
        return [self.deserialize(data) for data in payloads]

    def _validate(self, obj: Any, depth: int) -> None:
        """Recursive structural validation (the deliberate overhead)."""
        if depth > 64:
            raise SerializationError("payload nesting exceeds 64 levels")
        if isinstance(obj, _JSON_SCALARS):
            return
        if isinstance(obj, (list, tuple)):
            for item in obj:
                self._validate(item, depth + 1)
            return
        if isinstance(obj, dict):
            for key, value in obj.items():
                if not isinstance(key, str):
                    raise SerializationError(
                        f"object keys must be strings, got {type(key).__name__}"
                    )
                self._validate(value, depth + 1)
            return
        raise SerializationError(f"type {type(obj).__name__} is not JSON-compatible")


_REGISTRY: dict[str, type] = {
    CompactJsonSerializer.name: CompactJsonSerializer,
    ReflectiveJsonSerializer.name: ReflectiveJsonSerializer,
    # Aliases matching the paper's terminology.
    "gson": CompactJsonSerializer,
    "jackson": ReflectiveJsonSerializer,
}


def serializer_by_name(name: str) -> Serializer:
    """Instantiate a serializer by registry name.

    Accepts ``"compact"``/``"gson"`` and ``"reflective"``/``"jackson"``.
    """
    try:
        cls = _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise SerializationError(f"unknown serializer {name!r}; known: {known}") from None
    return cls()
