"""Time-based window assignment over timestamped records.

The paper's workflow (Section 4.1) speaks of "devices that trigger an alarm
within a certain observation period (the streaming window)".  The
micro-batch engine in :mod:`repro.streaming.dstream` windows by
*availability*; this module adds the classic event-time windows on top:

* :class:`TumblingWindows` — fixed-size, non-overlapping periods;
* :class:`SlidingWindows` — fixed-size periods advancing by a slide step
  (a record belongs to every window covering its timestamp);
* :func:`windowed_counts` — per-window, per-key counts (the "devices that
  alarmed in this observation period" query).

Windows are aligned to the epoch (window ``k`` covers
``[k*size, (k+1)*size)`` for tumbling), so assignments are deterministic
and independent of the data seen so far.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.errors import ConfigurationError

__all__ = ["Window", "TumblingWindows", "SlidingWindows", "windowed_counts"]


@dataclass(frozen=True, order=True)
class Window:
    """A half-open event-time interval ``[start, end)``."""

    start: float
    end: float

    def contains(self, timestamp: float) -> bool:
        """Whether ``timestamp`` falls inside the window."""
        return self.start <= timestamp < self.end

    @property
    def size(self) -> float:
        return self.end - self.start


class TumblingWindows:
    """Non-overlapping fixed-size windows aligned to the epoch."""

    def __init__(self, size_seconds: float) -> None:
        if size_seconds <= 0:
            raise ConfigurationError(f"size_seconds must be > 0, got {size_seconds}")
        self.size = size_seconds

    def assign(self, timestamp: float) -> list[Window]:
        """The single window containing ``timestamp``."""
        start = math.floor(timestamp / self.size) * self.size
        return [Window(start, start + self.size)]


class SlidingWindows:
    """Overlapping fixed-size windows advancing by ``slide_seconds``.

    Every timestamp belongs to ``ceil(size / slide)`` windows.  With
    ``slide == size`` this degenerates to tumbling windows.
    """

    def __init__(self, size_seconds: float, slide_seconds: float) -> None:
        if size_seconds <= 0 or slide_seconds <= 0:
            raise ConfigurationError("window size and slide must be > 0")
        if slide_seconds > size_seconds:
            raise ConfigurationError(
                "slide larger than size would drop records between windows"
            )
        self.size = size_seconds
        self.slide = slide_seconds

    def assign(self, timestamp: float) -> list[Window]:
        """All windows whose interval covers ``timestamp``."""
        last_start = math.floor(timestamp / self.slide) * self.slide
        windows = []
        start = last_start
        while start + self.size > timestamp:
            windows.append(Window(start, start + self.size))
            start -= self.slide
        windows.reverse()
        return windows


def windowed_counts(
    records: Iterable[Any],
    assigner: TumblingWindows | SlidingWindows,
    timestamp_fn: Callable[[Any], float],
    key_fn: Callable[[Any], Any],
) -> dict[Window, dict[Any, int]]:
    """Per-window, per-key record counts.

    The paper's observation-period query: with ``key_fn`` extracting the
    device address, the result tells for each streaming window which
    devices alarmed and how often.
    """
    out: dict[Window, dict[Any, int]] = {}
    for record in records:
        timestamp = timestamp_fn(record)
        key = key_fn(record)
        for window in assigner.assign(timestamp):
            bucket = out.setdefault(window, {})
            bucket[key] = bucket.get(key, 0) + 1
    return out
