"""Time-based window assignment over timestamped records.

The paper's workflow (Section 4.1) speaks of "devices that trigger an alarm
within a certain observation period (the streaming window)".  The
micro-batch engine in :mod:`repro.streaming.dstream` windows by
*availability*; this module adds the classic event-time windows on top:

* :class:`TumblingWindows` — fixed-size, non-overlapping periods;
* :class:`SlidingWindows` — fixed-size periods advancing by a slide step
  (a record belongs to every window covering its timestamp);
* :func:`windowed_counts` — per-window, per-key counts (the "devices that
  alarmed in this observation period" query).

Windows are aligned to the epoch (window ``k`` covers
``[k*size, (k+1)*size)`` for tumbling), so assignments are deterministic
and independent of the data seen so far.  Window bounds are always derived
from the *integer* window index ``k`` — never by accumulating or scaling
the raw timestamp — so every timestamp inside one mathematical window
produces the bit-identical :class:`Window` value.  With non-integer sizes
(0.1, 0.3, ...) the old ``floor(ts / size) * size`` arithmetic drifted in
the last float ulps, splitting one logical window into several distinct
dict keys in :func:`windowed_counts`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.errors import ConfigurationError

__all__ = ["Window", "TumblingWindows", "SlidingWindows", "windowed_counts"]


@dataclass(frozen=True, order=True)
class Window:
    """A half-open event-time interval ``[start, end)``."""

    start: float
    end: float

    def contains(self, timestamp: float) -> bool:
        """Whether ``timestamp`` falls inside the window."""
        return self.start <= timestamp < self.end

    @property
    def size(self) -> float:
        return self.end - self.start


def _window_index(timestamp: float, step: float) -> int:
    """Index ``k`` of the step-aligned window containing ``timestamp``.

    ``floor(timestamp / step)`` can land one index off when the division
    rounds across an integer (half-ulp effects with non-integer steps), so
    the candidate is nudged until ``k * step <= timestamp < (k + 1) * step``
    holds under the exact same float products used to build the window.
    """
    k = math.floor(timestamp / step)
    if (k + 1) * step <= timestamp:
        k += 1
    elif k * step > timestamp:
        k -= 1
    return k


class TumblingWindows:
    """Non-overlapping fixed-size windows aligned to the epoch."""

    def __init__(self, size_seconds: float) -> None:
        if size_seconds <= 0:
            raise ConfigurationError(f"size_seconds must be > 0, got {size_seconds}")
        self.size = size_seconds

    def assign(self, timestamp: float) -> list[Window]:
        """The single window containing ``timestamp``."""
        k = _window_index(timestamp, self.size)
        return [Window(k * self.size, (k + 1) * self.size)]


class SlidingWindows:
    """Overlapping fixed-size windows advancing by ``slide_seconds``.

    Every timestamp belongs to ``ceil(size / slide)`` windows.  With
    ``slide == size`` this degenerates to tumbling windows.
    """

    def __init__(self, size_seconds: float, slide_seconds: float) -> None:
        if size_seconds <= 0 or slide_seconds <= 0:
            raise ConfigurationError("window size and slide must be > 0")
        if slide_seconds > size_seconds:
            raise ConfigurationError(
                "slide larger than size would drop records between windows"
            )
        self.size = size_seconds
        self.slide = slide_seconds

    def assign(self, timestamp: float) -> list[Window]:
        """All windows whose interval covers ``timestamp``."""
        j = _window_index(timestamp, self.slide)
        windows = []
        while j * self.slide + self.size > timestamp:
            windows.append(Window(j * self.slide, j * self.slide + self.size))
            j -= 1
        windows.reverse()
        return windows


def windowed_counts(
    records: Iterable[Any],
    assigner: TumblingWindows | SlidingWindows,
    timestamp_fn: Callable[[Any], float],
    key_fn: Callable[[Any], Any],
) -> dict[Window, dict[Any, int]]:
    """Per-window, per-key record counts.

    The paper's observation-period query: with ``key_fn`` extracting the
    device address, the result tells for each streaming window which
    devices alarmed and how often.
    """
    out: dict[Window, dict[Any, int]] = {}
    for record in records:
        timestamp = timestamp_fn(record)
        key = key_fn(record)
        for window in assigner.assign(timestamp):
            bucket = out.setdefault(window, {})
            bucket[key] = bucket.get(key, 0) + 1
    return out
