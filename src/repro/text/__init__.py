"""Text-analytics subsystem for the hybrid approach (Figure 5).

Public API: tokenization, language identification (de/fr/en), multilingual
fire/intrusion keyword filtering, date and location extraction, and the
:class:`~repro.text.pipeline.IncidentPipeline` that wires them into the
incident-history collection.
"""

from repro.text.dates import extract_date, parse_textual_date
from repro.text.keywords import TOPIC_KEYWORDS, KeywordFilter, is_relevant, match_topics
from repro.text.language import SUPPORTED_LANGUAGES, detect_language, language_scores
from repro.text.locations import LocationExtractor
from repro.text.pipeline import AnnotatedIncident, IncidentPipeline, PipelineReport
from repro.text.tokenize import ngrams, normalize, sentence_split, tokenize

__all__ = [
    "extract_date",
    "parse_textual_date",
    "TOPIC_KEYWORDS",
    "KeywordFilter",
    "is_relevant",
    "match_topics",
    "SUPPORTED_LANGUAGES",
    "detect_language",
    "language_scores",
    "LocationExtractor",
    "AnnotatedIncident",
    "IncidentPipeline",
    "PipelineReport",
    "ngrams",
    "normalize",
    "sentence_split",
    "tokenize",
]
