"""Date extraction from incident-report text and metadata.

Each report is "annotated with a time ... extracted directly from the
textual data or from the metadata (if available)" (Section 4.2).  Supported
textual forms cover the conventions of the corpus languages:

* numeric: ``13.06.2026`` (Swiss/German), ``13/06/2026`` (French),
  ``2026-06-13`` (ISO)
* month names: ``13. Juni 2026``, ``13 juin 2026``, ``June 13, 2026``
* relative words resolved against a reference date: ``heute``, ``gestern``,
  ``aujourd'hui``, ``hier``, ``today``, ``yesterday``.
"""

from __future__ import annotations

import datetime as dt
import re

__all__ = ["extract_date", "parse_textual_date"]

_MONTHS = {
    # German
    "januar": 1, "februar": 2, "marz": 3, "april": 4, "mai": 5, "juni": 6,
    "juli": 7, "august": 8, "september": 9, "oktober": 10, "november": 11,
    "dezember": 12,
    # French
    "janvier": 1, "fevrier": 2, "mars": 3, "avril": 4, "juin": 6,
    "juillet": 7, "aout": 8, "septembre": 9, "octobre": 10, "novembre": 11,
    "decembre": 12,
    # English
    "january": 1, "february": 2, "march": 3, "may": 5, "june": 6, "july": 7,
    "october": 10, "december": 12,
}

_NUMERIC_DMY = re.compile(r"\b(\d{1,2})[./](\d{1,2})[./](\d{4})\b")
_NUMERIC_ISO = re.compile(r"\b(\d{4})-(\d{2})-(\d{2})\b")
_MONTH_NAME_DMY = re.compile(
    r"\b(\d{1,2})\.?\s+([a-zA-ZÀ-ſ]+)\s+(\d{4})\b"
)
_MONTH_NAME_MDY = re.compile(
    r"\b([a-zA-Z]+)\s+(\d{1,2}),\s*(\d{4})\b"
)

_RELATIVE = {
    "heute": 0, "gestern": -1, "vorgestern": -2,
    "aujourd'hui": 0, "hier": -1, "avant-hier": -2,
    "today": 0, "yesterday": -1,
}


def _normalize_month(name: str) -> str:
    import unicodedata
    decomposed = unicodedata.normalize("NFKD", name.casefold())
    return "".join(ch for ch in decomposed if not unicodedata.combining(ch))


def _safe_date(year: int, month: int, day: int) -> dt.date | None:
    try:
        return dt.date(year, month, day)
    except ValueError:
        return None


def parse_textual_date(text: str,
                       reference: dt.date | None = None) -> dt.date | None:
    """First date found in ``text``, or None.

    Search order: ISO, numeric day-first, month-name (day-first then
    US-style), then relative words resolved against ``reference``
    (defaults to nothing — relative words without a reference return None).
    """
    iso = _NUMERIC_ISO.search(text)
    if iso:
        date = _safe_date(int(iso.group(1)), int(iso.group(2)), int(iso.group(3)))
        if date:
            return date
    dmy = _NUMERIC_DMY.search(text)
    if dmy:
        date = _safe_date(int(dmy.group(3)), int(dmy.group(2)), int(dmy.group(1)))
        if date:
            return date
    named = _MONTH_NAME_DMY.search(text)
    if named:
        month = _MONTHS.get(_normalize_month(named.group(2)))
        if month:
            date = _safe_date(int(named.group(3)), month, int(named.group(1)))
            if date:
                return date
    us_named = _MONTH_NAME_MDY.search(text)
    if us_named:
        month = _MONTHS.get(_normalize_month(us_named.group(1)))
        if month:
            date = _safe_date(int(us_named.group(3)), month, int(us_named.group(2)))
            if date:
                return date
    if reference is not None:
        lowered = text.casefold()
        for word, delta in _RELATIVE.items():
            if word in lowered:
                return reference + dt.timedelta(days=delta)
    return None


def extract_date(text: str, metadata_date: str | None = None,
                 reference: dt.date | None = None) -> dt.date | None:
    """Date of an incident report: metadata first, then the text itself.

    ``metadata_date`` is an ISO string (e.g. a tweet's post date) and wins
    over textual extraction when present and valid, matching the pipeline's
    "from the metadata (if available)" rule.
    """
    if metadata_date:
        try:
            return dt.date.fromisoformat(metadata_date[:10])
        except ValueError:
            pass
    return parse_textual_date(text, reference=reference)
