"""Topic filtering by multilingual keyword sets.

The incidents pipeline "filters those pertaining to relevant topics (fire
and intrusion), based on a set of keywords defined in the pipeline"
(Section 4.2).  Keywords are stored pre-normalized (lowercase, accent-free)
and matched against normalized tokens, so "Einbruch", "cambriolage" and
"burglary" all route to the ``intrusion`` topic regardless of case or
diacritics.
"""

from __future__ import annotations

from repro.text.tokenize import normalize, tokenize

__all__ = ["TOPIC_KEYWORDS", "match_topics", "is_relevant", "KeywordFilter"]

TOPIC_KEYWORDS: dict[str, frozenset[str]] = {
    "fire": frozenset("""
        brand feuer grossbrand wohnungsbrand dachstockbrand brandstiftung
        rauch flammen brandalarm
        incendie feu flammes fumee embrasement sinistre
        fire blaze flames smoke arson wildfire
    """.split()),
    "intrusion": frozenset("""
        einbruch einbrecher eingebrochen einbruchdiebstahl diebstahl raub
        einschleichdieb
        cambriolage cambrioleur effraction vol voleur intrusion
        burglary burglar intruder breakin robbery theft
    """.split()),
}


def match_topics(text: str, topics: dict[str, frozenset[str]] | None = None) -> set[str]:
    """Topics whose keyword set intersects the normalized tokens of ``text``."""
    vocabulary = topics if topics is not None else TOPIC_KEYWORDS
    tokens = set(tokenize(text))
    return {topic for topic, keywords in vocabulary.items() if tokens & keywords}


def is_relevant(text: str, topics: dict[str, frozenset[str]] | None = None) -> bool:
    """True when ``text`` matches at least one topic."""
    return bool(match_topics(text, topics))


class KeywordFilter:
    """Configurable topic filter (custom topics can extend the defaults).

    ``extra_keywords`` maps topic name to additional keywords; they are
    normalized on construction so callers may pass accented forms.
    """

    def __init__(self, topics: dict[str, set[str]] | None = None,
                 extra_keywords: dict[str, set[str]] | None = None) -> None:
        base = topics if topics is not None else {
            name: set(words) for name, words in TOPIC_KEYWORDS.items()
        }
        merged = {name: set(words) for name, words in base.items()}
        for topic, words in (extra_keywords or {}).items():
            merged.setdefault(topic, set()).update(normalize(w) for w in words)
        self._topics = {name: frozenset(words) for name, words in merged.items()}

    @property
    def topic_names(self) -> list[str]:
        """Configured topic names, sorted."""
        return sorted(self._topics)

    def topics_of(self, text: str) -> set[str]:
        """Topics matched by ``text``."""
        return match_topics(text, self._topics)

    def filter(self, texts: list[str]) -> list[tuple[str, set[str]]]:
        """Keep only relevant texts, paired with their matched topics."""
        results = []
        for text in texts:
            matched = self.topics_of(text)
            if matched:
                results.append((text, matched))
        return results
