"""Stopword-profile language identification for German, French and English.

The incidents pipeline annotates every report with its language
(Section 4.2, Figure 5).  The corpus statistics of Section 5.2 (2,743 German,
1,516 French, 797 English reports) make a three-language identifier
sufficient.  The classifier scores each language by the fraction of tokens
that are high-frequency function words of that language — robust for
sentence-length inputs and requiring no training data.
"""

from __future__ import annotations

from repro.errors import LanguageDetectionError
from repro.text.tokenize import tokenize

__all__ = ["detect_language", "language_scores", "SUPPORTED_LANGUAGES"]

# High-frequency function words, pre-normalized (lowercase, accents stripped).
_PROFILES: dict[str, frozenset[str]] = {
    "de": frozenset("""
        der die das und ist in den von zu mit im fur auf ein eine einer einem
        einen nicht auch des am um bei nach wurde wurden wird werden sich als
        aus dem es an hat haben sind war waren uber kein keine beim durch
        gegen noch nur schon wie wir sie er ihr ihre ihren man vor zwei drei
        bis oder aber wenn dass da so zum zur des polizei feuerwehr kanton
        gemeinde uhr heute gestern nacht morgen abend brand einbruch
    """.split()),
    "fr": frozenset("""
        le la les de des du et est dans un une pour sur avec par au aux que
        qui ne pas plus a ete sont etait ce cette ces se sa son ses leur mais
        ou donc car si deux trois apres avant vers chez entre sous pendant
        police pompiers canton commune heure aujourd hier nuit matin soir
        incendie cambriolage feu
    """.split()),
    "en": frozenset("""
        the a an and is in of to with for on at was were by from this that
        these those it its has have had be been are not no as but if or so
        two three after before near between under during police fire
        department city hour today yesterday night morning evening burglary
        break
    """.split()),
}

SUPPORTED_LANGUAGES = tuple(sorted(_PROFILES))


def language_scores(text: str) -> dict[str, float]:
    """Fraction of tokens that are stopwords of each language."""
    tokens = tokenize(text)
    if not tokens:
        return {lang: 0.0 for lang in _PROFILES}
    return {
        lang: sum(1 for token in tokens if token in profile) / len(tokens)
        for lang, profile in _PROFILES.items()
    }


def detect_language(text: str, min_score: float = 0.05) -> str:
    """Most likely language of ``text``.

    Raises :class:`LanguageDetectionError` when no profile clears
    ``min_score`` (e.g. empty or non-linguistic input), ties broken by
    profile order de < en < fr for determinism.
    """
    scores = language_scores(text)
    best_lang = min(sorted(scores), key=lambda lang: (-scores[lang], lang))
    if scores[best_lang] < min_score:
        raise LanguageDetectionError(
            f"no language profile matched (best {best_lang!r} at "
            f"{scores[best_lang]:.3f} < {min_score})"
        )
    return best_lang
