"""Gazetteer-based location extraction.

Incident reports carry locations only at city/village granularity
(Section 5.2 — metadata has no ZIP codes), so extraction is a gazetteer
lookup: normalized token n-grams of the text are matched against normalized
place names.  Multi-word names ("La Chaux-de-Fonds") are matched before
shorter ones so the most specific place wins.
"""

from __future__ import annotations

from typing import Iterable

from repro.text.tokenize import ngrams, normalize, tokenize

__all__ = ["LocationExtractor"]


class LocationExtractor:
    """Matches place names from a gazetteer inside free text.

    Parameters
    ----------
    place_names:
        Canonical place names.  Matching is case- and accent-insensitive;
        the *canonical* spelling is returned.
    """

    def __init__(self, place_names: Iterable[str]) -> None:
        self._by_tokens: dict[tuple[str, ...], str] = {}
        self._max_words = 1
        for name in place_names:
            key = tuple(tokenize(name))
            if not key:
                continue
            self._by_tokens[key] = name
            self._max_words = max(self._max_words, len(key))

    def __len__(self) -> int:
        return len(self._by_tokens)

    def extract_all(self, text: str) -> list[str]:
        """All distinct places mentioned, in order of first occurrence.

        Longest-match-wins: once a multi-word name matches, its tokens are
        consumed and shorter names inside it are not reported.
        """
        tokens = tokenize(text)
        matches: list[tuple[int, str]] = []
        consumed = [False] * len(tokens)
        for size in range(self._max_words, 0, -1):
            for start, window in enumerate(ngrams(tokens, size)):
                if any(consumed[start : start + size]):
                    continue
                place = self._by_tokens.get(window)
                if place is not None:
                    for i in range(start, start + size):
                        consumed[i] = True
                    matches.append((start, place))
        matches.sort(key=lambda pair: pair[0])
        ordered: list[str] = []
        for _, place in matches:
            if place not in ordered:
                ordered.append(place)
        return ordered

    def extract(self, text: str) -> str | None:
        """First place mentioned in ``text``, or None."""
        places = self.extract_all(text)
        return places[0] if places else None

    def contains(self, name: str) -> bool:
        """Whether ``name`` is in the gazetteer (normalized comparison)."""
        return tuple(tokenize(name)) in self._by_tokens
