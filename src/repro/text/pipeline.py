"""Incident-history pipeline: collect -> filter -> annotate -> store.

Implements the Figure 5 schema end to end.  Raw reports (free text plus
optional source metadata) are:

1. **filtered** by the multilingual keyword topic filter (fire/intrusion);
2. **annotated** with language, date and location;
3. **stored** as documents in a :class:`~repro.storage.DocumentStore`
   collection, ready for the risk-factor computation of
   :mod:`repro.risk.factors`.

Reports that match no topic, or whose location cannot be resolved against
the gazetteer, are dropped and counted — the paper's own corpus only covers
about a quarter of Swiss localities (Section 5.2), so lossy coverage is part
of the reproduced behaviour.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.errors import LanguageDetectionError
from repro.storage.collection import Collection
from repro.text.dates import extract_date
from repro.text.keywords import KeywordFilter
from repro.text.language import detect_language
from repro.text.locations import LocationExtractor

__all__ = ["IncidentPipeline", "PipelineReport", "AnnotatedIncident"]


@dataclass(frozen=True)
class AnnotatedIncident:
    """One fully annotated incident report."""

    text: str
    topics: tuple[str, ...]
    language: str
    date: dt.date | None
    location: str
    source: str

    def to_document(self) -> dict[str, Any]:
        """JSON-compatible document for the incident-history collection."""
        return {
            "text": self.text,
            "topics": list(self.topics),
            "language": self.language,
            "date": self.date.isoformat() if self.date is not None else None,
            "location": self.location,
            "source": self.source,
        }


@dataclass
class PipelineReport:
    """Counters describing one pipeline run."""

    collected: int = 0
    irrelevant: int = 0
    no_location: int = 0
    no_language: int = 0
    stored: int = 0
    by_language: dict[str, int] = field(default_factory=dict)
    by_topic: dict[str, int] = field(default_factory=dict)


class IncidentPipeline:
    """Figure 5 pipeline over raw report dicts.

    A raw report is a mapping with ``text`` and optionally ``source``,
    ``metadata_date`` (ISO string) and ``location`` (trusted metadata
    location that skips text extraction).
    """

    def __init__(self, gazetteer_names: Iterable[str],
                 keyword_filter: KeywordFilter | None = None,
                 reference_date: dt.date | None = None) -> None:
        self._keywords = keyword_filter if keyword_filter is not None else KeywordFilter()
        self._locations = LocationExtractor(gazetteer_names)
        self._reference_date = reference_date

    def annotate(self, report: Mapping[str, Any]) -> AnnotatedIncident | None:
        """Annotate one raw report; None when it should be dropped."""
        text = report.get("text", "")
        if not text:
            return None
        topics = self._keywords.topics_of(text)
        if not topics:
            return None
        metadata_location = report.get("location")
        if metadata_location and self._locations.contains(metadata_location):
            location: str | None = metadata_location
        else:
            location = self._locations.extract(text)
        if location is None:
            return None
        try:
            language = detect_language(text)
        except LanguageDetectionError:
            return None
        date = extract_date(
            text,
            metadata_date=report.get("metadata_date"),
            reference=self._reference_date,
        )
        return AnnotatedIncident(
            text=text,
            topics=tuple(sorted(topics)),
            language=language,
            date=date,
            location=location,
            source=report.get("source", "unknown"),
        )

    def run(self, reports: Iterable[Mapping[str, Any]],
            collection: Collection) -> PipelineReport:
        """Process ``reports`` into ``collection``; returns run counters."""
        stats = PipelineReport()
        for report in reports:
            stats.collected += 1
            text = report.get("text", "")
            if not text or not self._keywords.topics_of(text):
                stats.irrelevant += 1
                continue
            annotated = self.annotate(report)
            if annotated is None:
                # Relevant but unusable: distinguish the reason for the report.
                location = self._locations.extract(text)
                if location is None and not (
                    report.get("location")
                    and self._locations.contains(report["location"])
                ):
                    stats.no_location += 1
                else:
                    stats.no_language += 1
                continue
            collection.insert_one(annotated.to_document())
            stats.stored += 1
            stats.by_language[annotated.language] = (
                stats.by_language.get(annotated.language, 0) + 1
            )
            for topic in annotated.topics:
                stats.by_topic[topic] = stats.by_topic.get(topic, 0) + 1
        return stats
