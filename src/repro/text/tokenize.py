"""Unicode-aware tokenization for incident reports.

Incident reports arrive as free text in German, French and English
(Section 5.2), so the tokenizer must handle umlauts, accents and
apostrophe-joined French clitics ("l'incendie" -> "l", "incendie").
"""

from __future__ import annotations

import re
import unicodedata
from typing import Iterator

__all__ = ["tokenize", "normalize", "ngrams", "sentence_split"]

_WORD_RE = re.compile(r"[^\W\d_]+", re.UNICODE)
_SENTENCE_RE = re.compile(r"(?<=[.!?])\s+")


def normalize(text: str) -> str:
    """Lowercase and strip combining accents (é -> e, ü -> u).

    German sharp-s is expanded to "ss" by NFKD + casefold, which keeps
    keyword matching robust across spellings ("Straße" vs "Strasse").

    The pass runs twice because compatibility decomposition can surface new
    cased characters (e.g. mathematical bold '𝑨' decomposes to 'A'); the
    second pass makes the function idempotent.
    """
    def one_pass(value: str) -> str:
        decomposed = unicodedata.normalize("NFKD", value.casefold())
        return "".join(ch for ch in decomposed if not unicodedata.combining(ch))

    return one_pass(one_pass(text))


def tokenize(text: str, normalized: bool = True) -> list[str]:
    """Split ``text`` into word tokens (letters only, digits dropped).

    The regex class ``[^\\W\\d_]`` still admits non-decimal numerals
    (e.g. Tibetan half-digits, category No), so tokens are additionally
    required to be fully alphabetic.
    """
    source = normalize(text) if normalized else text
    return [token for token in _WORD_RE.findall(source) if token.isalpha()]


def ngrams(tokens: list[str], n: int) -> Iterator[tuple[str, ...]]:
    """Yield consecutive ``n``-token windows."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    for i in range(len(tokens) - n + 1):
        yield tuple(tokens[i : i + n])


def sentence_split(text: str) -> list[str]:
    """Naive sentence segmentation on terminal punctuation."""
    sentences = [s.strip() for s in _SENTENCE_RE.split(text)]
    return [s for s in sentences if s]
