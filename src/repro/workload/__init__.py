"""Scenario-driven load generation, replay and ops metrics.

This subsystem turns traffic generation into a first-class declarative
layer on top of the streaming substrate:

* :mod:`~repro.workload.scenario` — :class:`Scenario` specs (dataset x
  arrivals x duration x faults, including ``process_crash``) with
  dict/JSON round-trip;
* :mod:`~repro.workload.arrivals` — seeded arrival-time models (constant,
  Poisson, diurnal sinusoid, burst overlays);
* :mod:`~repro.workload.driver` — :class:`LoadDriver`: concurrent
  producers replay a scenario into the broker under accelerated virtual
  time with backpressure, feeding the existing consumer application;
* :mod:`~repro.workload.opsmetrics` — :class:`OpsMetrics`: throughput,
  end-to-end latency percentiles, verification-rate trends, SLA/MTTR;
* :mod:`~repro.workload.library` — named presets (``steady``, ``storm``,
  ``night-burglary``, ...), also reachable from the CLI via
  ``python -m repro loadtest --scenario <name|file>``.

Everything is a pure function of ``(scenario, seed)``: the same scenario
under the same seed replays the identical event timeline.
"""

from repro.workload.arrivals import (
    ArrivalProcess,
    Burst,
    BurstOverlay,
    ConstantRate,
    DiurnalArrivals,
    PoissonArrivals,
    arrival_from_dict,
)
from repro.workload.driver import LoadDriver, LoadTestReport, ScheduledEvent
from repro.workload.library import load_scenario, scenario, scenario_names
from repro.workload.opsmetrics import OpsMetrics, OpsSummary, PRODUCED_AT_KEY
from repro.workload.scenario import DatasetSpec, FaultInjection, Scenario

__all__ = [
    "ArrivalProcess",
    "Burst",
    "BurstOverlay",
    "ConstantRate",
    "DiurnalArrivals",
    "PoissonArrivals",
    "arrival_from_dict",
    "LoadDriver",
    "LoadTestReport",
    "ScheduledEvent",
    "load_scenario",
    "scenario",
    "scenario_names",
    "OpsMetrics",
    "OpsSummary",
    "PRODUCED_AT_KEY",
    "DatasetSpec",
    "FaultInjection",
    "Scenario",
]
