"""Seeded arrival-time models for scenario-driven load generation.

An :class:`ArrivalProcess` turns ``(duration, seed)`` into a sorted array of
virtual event timestamps in ``[0, duration)`` — the parametric
"(params) -> data" pattern: a traffic shape is a seeded function, never a
frozen file, so every scenario replays bit-identically under a fixed seed.

Four models cover the shapes the load driver needs:

* :class:`ConstantRate` — evenly spaced events (steady-state floor);
* :class:`PoissonArrivals` — homogeneous Poisson (memoryless production
  traffic);
* :class:`DiurnalArrivals` — inhomogeneous Poisson with a sinusoidal
  day/night rate profile, sampled by thinning;
* :class:`BurstOverlay` — any base process plus superimposed burst windows
  (storms, alarm floods), each itself a Poisson segment.

All processes round-trip through plain dicts (:func:`arrival_from_dict`),
which is what lets :class:`~repro.workload.scenario.Scenario` serialize to
JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "ArrivalProcess",
    "ConstantRate",
    "PoissonArrivals",
    "DiurnalArrivals",
    "Burst",
    "BurstOverlay",
    "arrival_from_dict",
]

#: Seconds in one day — the default diurnal period.
DAY = 86_400.0


class ArrivalProcess:
    """Base class: a deterministic ``(duration, seed) -> timestamps`` map."""

    kind: str = "abstract"

    def times(self, duration: float, seed: int) -> np.ndarray:
        """Sorted float64 virtual timestamps in ``[0, duration)``."""
        raise NotImplementedError

    def mean_rate(self) -> float:
        """Expected long-run events/second (used for sizing reports)."""
        raise NotImplementedError

    def expected_events(self, duration: float) -> float:
        """Expected event count over ``duration`` virtual seconds."""
        return self.mean_rate() * duration

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible spec; inverse of :func:`arrival_from_dict`."""
        raise NotImplementedError


def _check_positive(name: str, value: float) -> None:
    if value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")


@dataclass(frozen=True)
class ConstantRate(ArrivalProcess):
    """Evenly spaced arrivals at ``rate`` events/second."""

    rate: float
    kind = "constant"

    def __post_init__(self) -> None:
        _check_positive("rate", self.rate)

    def times(self, duration: float, seed: int) -> np.ndarray:
        _check_positive("duration", duration)
        count = int(np.floor(self.rate * duration))
        return (np.arange(count, dtype=np.float64) + 0.5) / self.rate

    def mean_rate(self) -> float:
        return self.rate

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "rate": self.rate}


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson process at ``rate`` events/second."""

    rate: float
    kind = "poisson"

    def __post_init__(self) -> None:
        _check_positive("rate", self.rate)

    def times(self, duration: float, seed: int) -> np.ndarray:
        _check_positive("duration", duration)
        rng = np.random.default_rng((seed, 7001))
        # Draw enough exponential gaps to cover the horizon, then trim.
        expected = self.rate * duration
        draw = max(16, int(expected + 6 * np.sqrt(expected) + 16))
        gaps = rng.exponential(1.0 / self.rate, size=draw)
        stamps = np.cumsum(gaps)
        while stamps[-1] < duration:  # pragma: no cover - astronomically rare
            extra = rng.exponential(1.0 / self.rate, size=draw)
            stamps = np.concatenate([stamps, stamps[-1] + np.cumsum(extra)])
        return stamps[stamps < duration]

    def mean_rate(self) -> float:
        return self.rate

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "rate": self.rate}


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalProcess):
    """Inhomogeneous Poisson with a sinusoidal day/night rate profile.

    Instantaneous rate::

        rate(t) = base_rate * (1 + amplitude * sin(2*pi*(t + phase)/period))

    Sampled by Lewis-Shedler thinning against the peak rate, so the output
    is an exact draw from the inhomogeneous process.  ``phase`` shifts the
    peak (e.g. ``phase=0.75*period`` puts the peak at night — the burglary
    profile).
    """

    base_rate: float
    amplitude: float = 0.8
    period: float = DAY
    phase: float = 0.0
    kind = "diurnal"

    def __post_init__(self) -> None:
        _check_positive("base_rate", self.base_rate)
        _check_positive("period", self.period)
        if not 0.0 <= self.amplitude <= 1.0:
            raise ConfigurationError(
                f"amplitude must be in [0, 1], got {self.amplitude}"
            )

    def _rate_at(self, t: np.ndarray) -> np.ndarray:
        angle = 2.0 * np.pi * (t + self.phase) / self.period
        return self.base_rate * (1.0 + self.amplitude * np.sin(angle))

    def times(self, duration: float, seed: int) -> np.ndarray:
        _check_positive("duration", duration)
        rng = np.random.default_rng((seed, 7002))
        peak = self.base_rate * (1.0 + self.amplitude)
        candidates = PoissonArrivals(peak).times(duration, seed ^ 0x5EED)
        if candidates.size == 0:
            return candidates
        keep = rng.uniform(size=candidates.size) * peak <= self._rate_at(candidates)
        return candidates[keep]

    def mean_rate(self) -> float:
        return self.base_rate

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "base_rate": self.base_rate,
            "amplitude": self.amplitude,
            "period": self.period,
            "phase": self.phase,
        }


@dataclass(frozen=True)
class Burst:
    """One burst window: ``rate`` extra events/second over ``[start, start+duration)``."""

    start: float
    duration: float
    rate: float

    def __post_init__(self) -> None:
        _check_positive("burst duration", self.duration)
        _check_positive("burst rate", self.rate)
        if self.start < 0:
            raise ConfigurationError(f"burst start must be >= 0, got {self.start}")

    def to_dict(self) -> dict[str, Any]:
        return {"start": self.start, "duration": self.duration, "rate": self.rate}

    @staticmethod
    def from_dict(spec: Mapping[str, Any]) -> "Burst":
        return Burst(
            start=float(spec["start"]),
            duration=float(spec["duration"]),
            rate=float(spec["rate"]),
        )


@dataclass(frozen=True)
class BurstOverlay(ArrivalProcess):
    """A base process with superimposed Poisson burst windows (storm model)."""

    base: ArrivalProcess
    bursts: tuple[Burst, ...] = field(default_factory=tuple)
    kind = "burst-overlay"

    def __post_init__(self) -> None:
        object.__setattr__(self, "bursts", tuple(self.bursts))
        if not self.bursts:
            raise ConfigurationError("BurstOverlay needs at least one burst")

    def times(self, duration: float, seed: int) -> np.ndarray:
        parts = [self.base.times(duration, seed)]
        for i, burst in enumerate(self.bursts):
            window = min(burst.duration, max(0.0, duration - burst.start))
            if window <= 0:
                continue
            stamps = PoissonArrivals(burst.rate).times(window, (seed * 31 + 7) ^ i)
            parts.append(stamps + burst.start)
        return np.sort(np.concatenate(parts))

    def mean_rate(self) -> float:
        return self.base.mean_rate()

    def expected_events(self, duration: float) -> float:
        total = self.base.expected_events(duration)
        for burst in self.bursts:
            window = min(burst.duration, max(0.0, duration - burst.start))
            total += burst.rate * window
        return total

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "base": self.base.to_dict(),
            "bursts": [b.to_dict() for b in self.bursts],
        }


_ARRIVAL_KINDS = {
    "constant": lambda spec: ConstantRate(rate=float(spec["rate"])),
    "poisson": lambda spec: PoissonArrivals(rate=float(spec["rate"])),
    "diurnal": lambda spec: DiurnalArrivals(
        base_rate=float(spec["base_rate"]),
        amplitude=float(spec.get("amplitude", 0.8)),
        period=float(spec.get("period", DAY)),
        phase=float(spec.get("phase", 0.0)),
    ),
    "burst-overlay": lambda spec: BurstOverlay(
        base=arrival_from_dict(spec["base"]),
        bursts=tuple(Burst.from_dict(b) for b in spec["bursts"]),
    ),
}


def arrival_from_dict(spec: Mapping[str, Any]) -> ArrivalProcess:
    """Rebuild an arrival process from its :meth:`~ArrivalProcess.to_dict` form."""
    if not isinstance(spec, Mapping) or "kind" not in spec:
        raise ConfigurationError("arrival spec must be a mapping with a 'kind'")
    try:
        factory = _ARRIVAL_KINDS[spec["kind"]]
    except KeyError:
        raise ConfigurationError(
            f"unknown arrival kind {spec['kind']!r}; "
            f"known: {sorted(_ARRIVAL_KINDS)}"
        ) from None
    return factory(spec)
