"""Load driver: replay a scenario into the broker under accelerated time.

The :class:`LoadDriver` turns a declarative
:class:`~repro.workload.scenario.Scenario` into a running experiment:

1. **timeline** — the arrival process is sampled, events are drawn from a
   seeded synthetic alarm population (with optional per-type bias and
   incident-text payload inflation), and fault windows are applied.  The
   timeline is a pure function of ``(scenario, seed)``: two builds yield
   the identical event sequence, which is what makes load tests replayable.
2. **replay** — ``scenario.producers`` concurrent producer threads send the
   timeline into a :class:`~repro.streaming.broker.Broker` topic.  Virtual
   time is compressed by ``speedup`` (a six-hour diurnal profile replays in
   seconds) and producers apply backpressure: when the consumer lags more
   than ``scenario.max_inflight`` records they pause instead of flooding
   the broker.
3. **consume** — the existing :class:`~repro.core.consumer_app.ConsumerApplication`
   (history + ML verification) drains the topic concurrently while
   :class:`~repro.workload.opsmetrics.OpsMetrics` observes every window.

The result is a :class:`LoadTestReport` combining producer-side,
consumer-side and operational metrics.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.consumer_app import ConsumerApplication, ConsumerRunReport
from repro.errors import ConfigurationError
from repro.core.history import AlarmHistory
from repro.core.labeling import label_alarms
from repro.core.verification import ALARM_FEATURES, VerificationService
from repro.datasets.incidents import IncidentReportGenerator
from repro.datasets.sitasys import SitasysGenerator
from repro.ml.forest import RandomForestClassifier
from repro.ml.pipeline import FeaturePipeline
from repro.storage.store import DocumentStore
from repro.streaming.broker import Broker
from repro.streaming.producer import Producer, ProducerStats
from repro.streaming.serializers import serializer_by_name
from repro.workload.opsmetrics import OpsMetrics, OpsSummary, PRODUCED_AT_KEY
from repro.workload.scenario import Scenario

__all__ = ["LoadDriver", "LoadTestReport", "ScheduledEvent"]



@dataclass(frozen=True)
class ScheduledEvent:
    """One event of the replay timeline."""

    time: float            # virtual seconds from scenario start
    document: dict[str, Any]
    producer: int          # producer thread that will send it


@dataclass
class LoadTestReport:
    """Everything one scenario run measured."""

    scenario: str
    seed: int
    speedup: float
    events_scheduled: int
    records_sent: int
    bytes_sent: int
    wall_seconds: float
    produce_records_per_second: float
    produce_bytes_per_second: float
    backpressure_waits: int
    consumer: ConsumerRunReport
    ops: OpsSummary
    ops_report: str = ""
    producer_stats: list[ProducerStats] = field(default_factory=list)


class LoadDriver:
    """Builds and replays one scenario end to end.

    Parameters
    ----------
    scenario:
        The traffic description to replay.
    seed:
        Overrides ``scenario.seed`` (the CLI's ``--seed``).
    speedup:
        Virtual-to-wall time compression factor.  At 600x, one virtual
        hour replays in six wall seconds.
    service, history, ops:
        Injectable components; fresh ones are built when omitted (the
        service is trained on ``scenario.dataset.train_alarms`` synthetic
        alarms).
    """

    def __init__(self, scenario: Scenario, seed: int | None = None,
                 speedup: float = 600.0,
                 service: VerificationService | None = None,
                 history: AlarmHistory | None = None,
                 ops: OpsMetrics | None = None) -> None:
        if speedup <= 0:
            raise ConfigurationError(f"speedup must be > 0, got {speedup}")
        self.scenario = scenario
        self.seed = scenario.seed if seed is None else seed
        if self.seed < 0:
            raise ConfigurationError(
                f"seed must be >= 0 (numpy rng requirement), got {self.seed}"
            )
        self.speedup = speedup
        self.topic = f"loadtest-{scenario.name}"
        self._generator = SitasysGenerator(
            num_devices=scenario.dataset.num_devices,
            seed=self.seed,
            sharpness=scenario.dataset.sharpness,
        )
        self.service = service
        self.history = history
        self._injected_ops = ops
        #: The metrics of the most recent :meth:`run` (an injected instance,
        #: or a fresh one per run so repeated runs never mix windows).
        #: ``None`` until the first run when nothing was injected.
        self.ops: OpsMetrics | None = ops
        self._backpressure_waits = 0
        self._bp_lock = threading.Lock()

    # -- timeline --------------------------------------------------------------

    def build_timeline(self) -> list[ScheduledEvent]:
        """The deterministic event sequence for ``(scenario, seed)``."""
        scenario = self.scenario
        spec = scenario.dataset
        arrival_times = scenario.arrivals.times(scenario.duration, self.seed)
        n_events = arrival_times.size
        if n_events == 0:
            return []

        # Replay pool: a bounded population sampled with replacement, so the
        # pool cost stays flat however long the scenario runs.
        pool_size = int(min(10_000, max(1_000, n_events)))
        pool = self._generator.generate(pool_size, seed_offset=11)
        rng = np.random.default_rng((self.seed, 9001))
        if spec.alarm_type_bias:
            weights = np.array(
                [spec.alarm_type_bias.get(a.alarm_type, 1.0) for a in pool]
            )
            weights /= weights.sum()
            picks = rng.choice(pool_size, size=n_events, p=weights)
        else:
            picks = rng.integers(0, pool_size, size=n_events)

        incident_texts: list[str] | None = None
        if spec.attach_incident_text:
            reports = IncidentReportGenerator(
                self._generator.gazetteer, self._generator.locality_risk,
                seed=self.seed,
            ).generate(500)
            incident_texts = [report["text"] for report in reports]

        events: list[tuple[float, dict[str, Any]]] = []
        for i in range(n_events):
            alarm = pool[int(picks[i])]
            doc = alarm.to_document()
            doc["_event_seq"] = i
            doc["_virtual_time"] = float(arrival_times[i])
            if incident_texts:
                doc["incident_text"] = incident_texts[i % len(incident_texts)]
            events.append((float(arrival_times[i]), doc))

        events = self._apply_faults(events)
        events.sort(key=lambda item: (item[0], item[1]["_event_seq"]))
        return [
            ScheduledEvent(time=t, document=doc, producer=i % scenario.producers)
            for i, (t, doc) in enumerate(events)
        ]

    def _apply_faults(
        self, events: list[tuple[float, dict[str, Any]]]
    ) -> list[tuple[float, dict[str, Any]]]:
        for fault_index, fault in enumerate(self.scenario.faults):
            rng = np.random.default_rng((self.seed, 9100 + fault_index))
            in_window = lambda t: fault.start <= t < fault.end
            if fault.kind == "region_outage":
                fraction = float(fault.params.get("fraction", 0.2))
                names = sorted(self._generator.locality_risk)
                k = max(1, int(round(len(names) * fraction)))
                dark = set(
                    names[int(i)]
                    for i in rng.choice(len(names), size=k, replace=False)
                )
                events = [
                    (t, doc) for t, doc in events
                    if not (in_window(t) and doc.get("locality") in dark)
                ]
            elif fault.kind == "duplicate_delivery":
                probability = float(fault.params.get("probability", 0.5))
                duplicates = []
                for t, doc in events:
                    if in_window(t) and rng.uniform() < probability:
                        redelivery = dict(doc)
                        redelivery["_redelivery"] = True
                        duplicates.append((min(t + 0.001, self.scenario.duration), redelivery))
                events = events + duplicates
            elif fault.kind == "producer_stall":
                # Nothing leaves during the stall; the backlog flushes at the
                # end of the window, in order, effectively instantaneously.
                span = max(fault.end - fault.start, 1e-9)
                events = [
                    (fault.end + (t - fault.start) / span * 1e-3 if in_window(t) else t,
                     doc)
                    for t, doc in events
                ]
        return events

    # -- run -------------------------------------------------------------------

    def _build_service(self) -> VerificationService:
        spec = self.scenario.dataset
        train = self._generator.generate(spec.train_alarms, seed_offset=12)
        labeled = label_alarms(train, 60.0)
        pipeline = FeaturePipeline(
            RandomForestClassifier(
                n_estimators=12, max_depth=20, random_state=self.seed
            ),
            categorical_features=ALARM_FEATURES, encoding="ordinal",
        )
        pipeline.fit(
            [l.features() for l in labeled], [l.is_false for l in labeled]
        )
        return VerificationService(pipeline)

    def _lag(self, broker: Broker, group: str) -> int:
        total = broker.total_records(self.topic)
        committed = 0
        for tp in broker.partitions_for(self.topic):
            offset = broker.committed(group, tp)
            committed += offset or 0
        return total - committed

    def _replay(self, events: list[ScheduledEvent], broker: Broker,
                group: str, wall_start: float,
                producer: Producer) -> None:
        scenario = self.scenario
        # Sampling the lag on every send would query every partition log and
        # contend with the consumer; check periodically instead, scaled to
        # the inflight bound.
        check_every = max(1, min(32, scenario.max_inflight // 4))
        for sent, event in enumerate(events):
            target = wall_start + event.time / self.speedup
            delay = target - time.perf_counter()
            if delay > 0:
                # Timeline pacing: one bounded sleep to this event's absolute
                # deadline (not an idle poll loop — those are gone, see the
                # backpressure wait below).
                time.sleep(delay)
            if sent % check_every == 0:
                # Event-driven backpressure: when the consumer lags too far,
                # block on the broker's activity condition — each commit (or
                # append) wakes us to re-check the lag — instead of
                # sleep-polling at a fixed interval.
                waited = 0
                give_up_at = time.perf_counter() + 10.0  # safety valve
                version = broker.activity_version()
                while self._lag(broker, group) > scenario.max_inflight:
                    if time.perf_counter() > give_up_at:  # pragma: no cover
                        break
                    version = broker.wait_for_activity(version, timeout=0.05)
                    waited += 1
                if waited:
                    with self._bp_lock:
                        self._backpressure_waits += waited
            doc = dict(event.document)
            doc[PRODUCED_AT_KEY] = time.perf_counter()
            producer.send(self.topic, doc, key=doc["device_address"])

    def run(self, max_batch_records: int | None = 2_000) -> LoadTestReport:
        """Replay the scenario end to end; returns the combined report."""
        scenario = self.scenario
        timeline = self.build_timeline()
        service = self.service if self.service is not None else self._build_service()
        history = self.history if self.history is not None else AlarmHistory()
        ops = self._injected_ops
        if ops is None:
            ops = OpsMetrics(DocumentStore())  # fresh metrics per run
        self.ops = ops
        self._backpressure_waits = 0
        if scenario.dataset.preload_history:
            history.record_batch(self._generator.generate(
                scenario.dataset.preload_history, seed_offset=13
            ))

        broker = Broker()
        broker.create_topic(self.topic, num_partitions=scenario.partitions)
        group = f"{self.topic}-consumer"
        consumer = ConsumerApplication(
            broker, self.topic, group, service, history=history,
            serializer=serializer_by_name(scenario.serializer),
            on_window=self.ops.observe_window,
        )

        per_producer: list[list[ScheduledEvent]] = [
            [] for _ in range(scenario.producers)
        ]
        for event in timeline:
            per_producer[event.producer].append(event)
        producers = [
            Producer(broker, serializer=serializer_by_name(scenario.serializer))
            for _ in range(scenario.producers)
        ]

        wall_start = time.perf_counter()
        threads = [
            threading.Thread(
                target=self._replay,
                args=(events, broker, group, wall_start, producer),
                name=f"loadgen-{i}",
            )
            for i, (events, producer) in enumerate(zip(per_producer, producers))
        ]
        for thread in threads:
            thread.start()

        def producers_done() -> bool:
            return not any(thread.is_alive() for thread in threads)

        consumer_report = consumer.drain_until(
            producers_done, max_records=max_batch_records
        )
        for thread in threads:
            thread.join()
        wall_seconds = time.perf_counter() - wall_start

        stats = [producer.stats for producer in producers]
        for producer in producers:
            producer.close()
        records_sent = sum(s.records_sent for s in stats)
        bytes_sent = sum(s.bytes_sent for s in stats)
        active = [s for s in stats if s.records_sent]
        if active:
            started = min(s.started_at for s in active)
            finished = max(s.finished_at for s in active)
            produce_elapsed = max(finished - started, 1e-9)
        else:
            produce_elapsed = 1e-9
        return LoadTestReport(
            scenario=scenario.name,
            seed=self.seed,
            speedup=self.speedup,
            events_scheduled=len(timeline),
            records_sent=records_sent,
            bytes_sent=bytes_sent,
            wall_seconds=wall_seconds,
            produce_records_per_second=records_sent / produce_elapsed,
            produce_bytes_per_second=bytes_sent / produce_elapsed,
            backpressure_waits=self._backpressure_waits,
            consumer=consumer_report,
            ops=self.ops.summary(),
            ops_report=self.ops.render_report(),
            producer_stats=stats,
        )
