"""Load driver: replay a scenario into the broker under accelerated time.

The :class:`LoadDriver` turns a declarative
:class:`~repro.workload.scenario.Scenario` into a running experiment:

1. **timeline** — the arrival process is sampled, events are drawn from a
   seeded synthetic alarm population (with optional per-type bias and
   incident-text payload inflation), and fault windows are applied.  The
   timeline is a pure function of ``(scenario, seed)``: two builds yield
   the identical event sequence, which is what makes load tests replayable.
2. **replay** — ``scenario.producers`` concurrent producer threads send the
   timeline into a :class:`~repro.streaming.broker.Broker` topic.  Virtual
   time is compressed by ``speedup`` (a six-hour diurnal profile replays in
   seconds) and producers apply backpressure: when the consumer lags more
   than ``scenario.max_inflight`` records they pause instead of flooding
   the broker.
3. **consume** — the existing :class:`~repro.core.consumer_app.ConsumerApplication`
   (history + ML verification) drains the topic concurrently while
   :class:`~repro.workload.opsmetrics.OpsMetrics` observes every window.

The result is a :class:`LoadTestReport` combining producer-side,
consumer-side and operational metrics.

**Durable mode** (``durable_dir=``): the broker, alarm history and
verification outputs are backed by the durability subsystem
(:class:`~repro.durability.recovery.RecoveryManager`), and a
``process_crash`` fault window becomes a real mid-scenario crash: at the
fault's start the driver kills the pipeline (every un-fsynced byte is
lost), recovers broker + store + offsets from disk, and replays the rest of
the scenario against the recovered components.  Offsets may rewind to
their last checkpoint, so some windows are re-processed — the idempotent
verification sink (:class:`~repro.core.verification_log.VerificationLog`)
drops the duplicates, which is what makes the run exactly-once end to end:
zero verified alarms lost, zero duplicate verification documents (the
tier-1 invariant of ``benchmarks/test_durability_recovery.py``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.cluster.coordinator import GroupCoordinator
from repro.cluster.sharded import ShardedDocumentStore
from repro.core.consumer_app import ConsumerApplication, ConsumerRunReport
from repro.core.verification_log import VerificationLog
from repro.durability.recovery import RecoveryManager, RecoveryReport
from repro.errors import ConfigurationError, FencedGenerationError
from repro.core.history import AlarmHistory
from repro.core.labeling import label_alarms
from repro.core.verification import ALARM_FEATURES, VerificationService
from repro.datasets.incidents import IncidentReportGenerator
from repro.datasets.sitasys import SitasysGenerator
from repro.ml.forest import RandomForestClassifier
from repro.ml.pipeline import FeaturePipeline
from repro.obs.registry import get_registry
from repro.obs.trace import Tracer
from repro.storage.store import DocumentStore
from repro.streaming.broker import Broker
from repro.streaming.producer import Producer, ProducerStats
from repro.streaming.serializers import serializer_by_name
from repro.workload.opsmetrics import OpsMetrics, OpsSummary, PRODUCED_AT_KEY
from repro.workload.scenario import Scenario

__all__ = ["LoadDriver", "LoadTestReport", "ScheduledEvent", "PIPELINE_SHARD_KEYS"]

#: Routing fields for the pipeline's sharded collections: alarms co-locate
#: per device (the history histogram is a per-device query), verification
#: documents co-locate per alarm uid so the per-shard unique index on
#: ``alarm_uid`` is globally unique.
PIPELINE_SHARD_KEYS = {
    "alarms": "device_address",
    "verifications": "alarm_uid",
}



@dataclass(frozen=True)
class ScheduledEvent:
    """One event of the replay timeline."""

    time: float            # virtual seconds from scenario start
    document: dict[str, Any]
    producer: int          # producer thread that will send it


@dataclass
class LoadTestReport:
    """Everything one scenario run measured."""

    scenario: str
    seed: int
    speedup: float
    events_scheduled: int
    records_sent: int
    bytes_sent: int
    wall_seconds: float
    produce_records_per_second: float
    produce_bytes_per_second: float
    backpressure_waits: int
    consumer: ConsumerRunReport
    ops: OpsSummary
    ops_report: str = ""
    producer_stats: list[ProducerStats] = field(default_factory=list)
    #: Durable-mode extras: whether the run used the durable pipeline, one
    #: recovery report per simulated crash, re-processed alarms dropped by
    #: the idempotent sink, and the unique verification-document count.
    durable: bool = False
    recoveries: list[RecoveryReport] = field(default_factory=list)
    duplicates_skipped: int = 0
    verified_unique: int | None = None
    #: Cluster extras: store shards backing the run, concurrent consumers,
    #: coordinator rebalances performed (joins/leaves during churn), and
    #: one stats dict per single-shard outage recovered mid-run.
    shards: int = 1
    consumers: int = 1
    rebalances: int = 0
    shard_recoveries: list[dict[str, Any]] = field(default_factory=list)
    #: Replication extras: replicas per shard and one promotion record per
    #: ``leader_failover`` fault executed mid-run (old/new leader, epochs,
    #: promotion frontier, failover seconds).
    replicas: int = 1
    failovers: list[dict[str, Any]] = field(default_factory=list)
    #: Telemetry extras: the full metrics snapshot taken at the end of the
    #: run (registry + sampled traces; see :mod:`repro.obs`) and the
    #: completed end-to-end traces as plain documents.
    metrics: dict[str, Any] = field(default_factory=dict)
    traces: list[dict[str, Any]] = field(default_factory=list)


class LoadDriver:
    """Builds and replays one scenario end to end.

    Parameters
    ----------
    scenario:
        The traffic description to replay.
    seed:
        Overrides ``scenario.seed`` (the CLI's ``--seed``).
    speedup:
        Virtual-to-wall time compression factor.  At 600x, one virtual
        hour replays in six wall seconds.
    service, history, ops:
        Injectable components; fresh ones are built when omitted (the
        service is trained on ``scenario.dataset.train_alarms`` synthetic
        alarms).
    durable_dir:
        When set, the broker and document store are the crash-safe durable
        implementations rooted at this directory, verification outputs go
        through the idempotent :class:`VerificationLog`, and
        ``process_crash`` faults actually crash and recover the pipeline
        mid-run.  Required for scenarios containing ``process_crash``.
    offset_checkpoint_every:
        Durable-broker offset checkpoint interval (fsync every N commits);
        smaller values shrink the re-processing window after a crash.
    shards:
        Store shards backing the alarm history and verification log.  With
        ``shards > 1`` the pipeline writes through a
        :class:`~repro.cluster.sharded.ShardedDocumentStore` (durable runs
        get one durability root per shard and recover them independently).
        Required >= 2 for scenarios containing ``shard_outage`` faults
        (which also need ``durable_dir``).
    process_shards:
        Host each store shard in its own child process behind the
        :mod:`repro.runtime` RPC plane (the GIL-breaking execution mode).
        Requires ``durable_dir`` — the workers journal to the per-shard
        durability roots and recover from them across ``process_crash``
        and ``shard_outage`` faults.  Worker processes outlive the run so
        the report's post-run reads still work; call
        :meth:`shutdown_workers` (the CLI does) to reap them.
    replicas:
        Replicas per store shard.  With ``replicas > 1`` every shard is a
        leader/follower :class:`~repro.replication.replica_set.ReplicaSet`
        over ``store/shard-<i>/replica-<r>`` durability roots: writes go
        to the shard's leader and ship to followers over its WAL, and a
        dead leader is replaced by the most-caught-up follower under a
        bumped, fenced epoch.  Requires ``durable_dir``; required >= 2 for
        scenarios containing ``leader_failover`` faults.  Combined with
        ``process_shards``, every *replica* gets its own worker process.
    replica_ack:
        ``"sync"`` (default) acks a write only once every live follower has
        journalled it — promotion is zero-loss; ``"async"`` acks on the
        leader's fsync alone and followers catch up in the background.
    replica_read_from:
        ``"leader"`` (default) for read-your-writes, or ``"follower"`` to
        round-robin reads over followers (bounded staleness in async mode).
    consumers:
        Concurrent consumer-group members draining the topic.  More than
        one — or any ``consumer_churn`` fault — switches the consume side
        to dynamic membership under a
        :class:`~repro.cluster.coordinator.GroupCoordinator` with
        generation-fenced commits, and attaches the idempotent
        verification sink so rebalance re-processing stays exactly-once.
    trace_sample_every:
        Stamp one of every N produced records with a trace context (see
        :class:`~repro.obs.trace.Tracer`); the consumer closes each trace
        with queue-dwell plus per-stage spans.  1 traces everything.
    metrics_port:
        When set, serve the live cluster telemetry endpoint
        (``/metrics`` Prometheus text, ``/metrics.json``, ``/healthz``)
        on ``127.0.0.1:<port>`` for the duration of :meth:`run` (0 binds
        an ephemeral port — read it off ``driver.metrics_server.port``).
        Every scrape harvests and merges the current worker snapshots,
        so mid-run worker-side series are visible live.
    """

    def __init__(self, scenario: Scenario, seed: int | None = None,
                 speedup: float = 600.0,
                 service: VerificationService | None = None,
                 history: AlarmHistory | None = None,
                 ops: OpsMetrics | None = None,
                 durable_dir: str | Path | None = None,
                 offset_checkpoint_every: int = 8,
                 shards: int = 1, consumers: int = 1,
                 process_shards: bool = False,
                 replicas: int = 1, replica_ack: str = "sync",
                 replica_read_from: str = "leader",
                 trace_sample_every: int = 32,
                 metrics_port: int | None = None) -> None:
        if speedup <= 0:
            raise ConfigurationError(f"speedup must be > 0, got {speedup}")
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if replicas < 1:
            raise ConfigurationError(f"replicas must be >= 1, got {replicas}")
        if consumers < 1:
            raise ConfigurationError(f"consumers must be >= 1, got {consumers}")
        self.scenario = scenario
        self.seed = scenario.seed if seed is None else seed
        if self.seed < 0:
            raise ConfigurationError(
                f"seed must be >= 0 (numpy rng requirement), got {self.seed}"
            )
        self.speedup = speedup
        self.topic = f"loadtest-{scenario.name}"
        self._generator = SitasysGenerator(
            num_devices=scenario.dataset.num_devices,
            seed=self.seed,
            sharpness=scenario.dataset.sharpness,
        )
        self.service = service
        self.history = history
        self.durable_dir = Path(durable_dir) if durable_dir is not None else None
        if self.durable_dir is None and any(
            fault.kind == "process_crash" for fault in scenario.faults
        ):
            raise ConfigurationError(
                "scenario contains a process_crash fault, which needs the "
                "durable pipeline: pass durable_dir= (CLI: --durable DIR)"
            )
        if self.durable_dir is not None and history is not None:
            raise ConfigurationError(
                "durable runs build their history on the durable store; "
                "an injected history= cannot be made crash-safe"
            )
        self.shards = shards
        self.process_shards = process_shards
        if process_shards and self.durable_dir is None:
            raise ConfigurationError(
                "process shards journal to per-shard durability roots: pass "
                "durable_dir= as well (CLI: --process-shards --durable DIR)"
            )
        self.consumers = consumers
        # Any churn fault (or a multi-member group) moves the consume side
        # to coordinator-managed dynamic membership.
        self._cluster_consume = consumers > 1 or any(
            fault.kind == "consumer_churn" for fault in scenario.faults
        )
        if shards > 1 and history is not None:
            raise ConfigurationError(
                "sharded runs build their history on the sharded store; "
                "an injected history= cannot be sharded"
            )
        self.replicas = replicas
        self.replica_ack = replica_ack
        self.replica_read_from = replica_read_from
        if replicas > 1 and self.durable_dir is None:
            raise ConfigurationError(
                "replicated shards journal to per-replica durability roots: "
                "pass durable_dir= as well (CLI: --replicas N --durable DIR)"
            )
        for fault in scenario.faults:
            if fault.kind == "shard_outage":
                if self.durable_dir is None or shards < 2:
                    raise ConfigurationError(
                        "scenario contains a shard_outage fault, which needs the "
                        "sharded durable pipeline: pass shards>=2 and durable_dir= "
                        "(CLI: --shards N --durable DIR)"
                    )
                if replicas > 1:
                    raise ConfigurationError(
                        "shard_outage restarts an unreplicated shard from its "
                        "WAL; a replicated run loses a *leader*, not a shard — "
                        "use a leader_failover fault instead"
                    )
                shard = int(fault.params.get("shard", 0))
                if shard >= shards:
                    raise ConfigurationError(
                        f"shard_outage names shard {shard} but the run has "
                        f"only {shards} shards"
                    )
            elif fault.kind == "leader_failover":
                if self.durable_dir is None or replicas < 2:
                    raise ConfigurationError(
                        "scenario contains a leader_failover fault, which needs "
                        "the replicated durable pipeline: pass replicas>=2 and "
                        "durable_dir= (CLI: --replicas N --durable DIR)"
                    )
                shard = int(fault.params.get("shard", 0))
                if shard >= shards:
                    raise ConfigurationError(
                        f"leader_failover names shard {shard} but the run has "
                        f"only {shards} shards"
                    )
        self.offset_checkpoint_every = offset_checkpoint_every
        #: Handles of the most recent :meth:`run`: the recovery manager
        #: owning broker + store (durable mode only), the idempotent
        #: verification sink (durable and cluster runs), and the store
        #: backing history + verifications (a
        #: :class:`ShardedDocumentStore` when ``shards > 1``).
        self.recovery_manager: RecoveryManager | None = None
        self.verification_log: VerificationLog | None = None
        self.store: Any = None
        self._injected_ops = ops
        #: The metrics of the most recent :meth:`run` (an injected instance,
        #: or a fresh one per run so repeated runs never mix windows).
        #: ``None`` until the first run when nothing was injected.
        self.ops: OpsMetrics | None = ops
        self.tracer = Tracer(sample_every=trace_sample_every)
        if metrics_port is not None and not 0 <= metrics_port <= 65535:
            raise ConfigurationError(
                f"metrics_port must be in [0, 65535], got {metrics_port}"
            )
        self.metrics_port = metrics_port
        #: The live :class:`~repro.obs.http.MetricsHTTPServer` while
        #: :meth:`run` is executing with ``metrics_port`` set, else None.
        self.metrics_server: Any = None
        self._backpressure_waits = 0
        self._bp_lock = threading.Lock()

    # -- timeline --------------------------------------------------------------

    def build_timeline(self) -> list[ScheduledEvent]:
        """The deterministic event sequence for ``(scenario, seed)``."""
        scenario = self.scenario
        spec = scenario.dataset
        arrival_times = scenario.arrivals.times(scenario.duration, self.seed)
        n_events = arrival_times.size
        if n_events == 0:
            return []

        # Replay pool: a bounded population sampled with replacement, so the
        # pool cost stays flat however long the scenario runs.
        pool_size = int(min(10_000, max(1_000, n_events)))
        pool = self._generator.generate(pool_size, seed_offset=11)
        rng = np.random.default_rng((self.seed, 9001))
        if spec.alarm_type_bias:
            weights = np.array(
                [spec.alarm_type_bias.get(a.alarm_type, 1.0) for a in pool]
            )
            weights /= weights.sum()
            picks = rng.choice(pool_size, size=n_events, p=weights)
        else:
            picks = rng.integers(0, pool_size, size=n_events)

        incident_texts: list[str] | None = None
        if spec.attach_incident_text:
            reports = IncidentReportGenerator(
                self._generator.gazetteer, self._generator.locality_risk,
                seed=self.seed,
            ).generate(500)
            incident_texts = [report["text"] for report in reports]

        timeline_id = f"{scenario.name}/{self.seed}"
        events: list[tuple[float, dict[str, Any]]] = []
        for i in range(n_events):
            alarm = pool[int(picks[i])]
            doc = alarm.to_document()
            doc["_event_seq"] = i
            # Scopes the exactly-once uid: the same (scenario, seed) replays
            # onto the same uids (idempotent re-runs deduplicate), while a
            # different scenario or seed over the same durable store gets
            # fresh identities instead of colliding on bare seq numbers.
            doc["_timeline_id"] = timeline_id
            doc["_virtual_time"] = float(arrival_times[i])
            if incident_texts:
                doc["incident_text"] = incident_texts[i % len(incident_texts)]
            events.append((float(arrival_times[i]), doc))

        events = self._apply_faults(events)
        events.sort(key=lambda item: (item[0], item[1]["_event_seq"]))
        return [
            ScheduledEvent(time=t, document=doc, producer=i % scenario.producers)
            for i, (t, doc) in enumerate(events)
        ]

    def _apply_faults(
        self, events: list[tuple[float, dict[str, Any]]]
    ) -> list[tuple[float, dict[str, Any]]]:
        for fault_index, fault in enumerate(self.scenario.faults):
            rng = np.random.default_rng((self.seed, 9100 + fault_index))
            in_window = lambda t: fault.start <= t < fault.end
            if fault.kind == "region_outage":
                fraction = float(fault.params.get("fraction", 0.2))
                names = sorted(self._generator.locality_risk)
                k = max(1, int(round(len(names) * fraction)))
                dark = set(
                    names[int(i)]
                    for i in rng.choice(len(names), size=k, replace=False)
                )
                events = [
                    (t, doc) for t, doc in events
                    if not (in_window(t) and doc.get("locality") in dark)
                ]
            elif fault.kind == "duplicate_delivery":
                probability = float(fault.params.get("probability", 0.5))
                duplicates = []
                for t, doc in events:
                    if in_window(t) and rng.uniform() < probability:
                        redelivery = dict(doc)
                        redelivery["_redelivery"] = True
                        duplicates.append((min(t + 0.001, self.scenario.duration), redelivery))
                events = events + duplicates
            elif fault.kind in ("producer_stall", "process_crash"):
                # Nothing leaves during the window (a stalled producer, or a
                # dead process whose upstream buffers); the backlog flushes
                # at the end of the window, in order, effectively
                # instantaneously.  For process_crash the driver's run loop
                # additionally kills and recovers the pipeline at
                # ``fault.start`` when running durably.
                span = max(fault.end - fault.start, 1e-9)
                events = [
                    (fault.end + (t - fault.start) / span * 1e-3 if in_window(t) else t,
                     doc)
                    for t, doc in events
                ]
        return events

    # -- run -------------------------------------------------------------------

    def _build_service(self) -> VerificationService:
        spec = self.scenario.dataset
        train = self._generator.generate(spec.train_alarms, seed_offset=12)
        labeled = label_alarms(train, 60.0)
        pipeline = FeaturePipeline(
            RandomForestClassifier(
                n_estimators=12, max_depth=20, random_state=self.seed
            ),
            categorical_features=ALARM_FEATURES, encoding="ordinal",
        )
        pipeline.fit(
            [l.features() for l in labeled], [l.is_false for l in labeled]
        )
        return VerificationService(pipeline)

    def _lag(self, broker: Broker, group: str) -> int:
        total = broker.total_records(self.topic)
        committed = 0
        for tp in broker.partitions_for(self.topic):
            offset = broker.committed(group, tp)
            committed += offset or 0
        return total - committed

    def _replay(self, events: list[ScheduledEvent], broker: Broker,
                group: str, wall_start: float,
                producer: Producer, base_time: float = 0.0) -> None:
        scenario = self.scenario
        # Sampling the lag on every send would query every partition log and
        # contend with the consumer; check periodically instead, scaled to
        # the inflight bound.
        check_every = max(1, min(32, scenario.max_inflight // 4))
        for sent, event in enumerate(events):
            target = wall_start + (event.time - base_time) / self.speedup
            delay = target - time.perf_counter()
            if delay > 0:
                # Timeline pacing: one bounded sleep to this event's absolute
                # deadline (not an idle poll loop — those are gone, see the
                # backpressure wait below).
                time.sleep(delay)
            if sent % check_every == 0:
                # Event-driven backpressure: when the consumer lags too far,
                # block on the broker's activity condition — each commit (or
                # append) wakes us to re-check the lag — instead of
                # sleep-polling at a fixed interval.
                waited = 0
                give_up_at = time.perf_counter() + 10.0  # safety valve
                version = broker.activity_version()
                while self._lag(broker, group) > scenario.max_inflight:
                    if time.perf_counter() > give_up_at:  # pragma: no cover
                        break
                    version = broker.wait_for_activity(version, timeout=0.05)
                    waited += 1
                if waited:
                    with self._bp_lock:
                        self._backpressure_waits += waited
            doc = dict(event.document)
            sent_at = time.perf_counter()
            doc[PRODUCED_AT_KEY] = sent_at
            headers = self.tracer.sample_headers(sent_at)
            producer.send(self.topic, doc, key=doc["device_address"],
                          headers=headers)

    def _phase_fault_actions(
        self, span: tuple[float, float]
    ) -> list[tuple[float, str, Any]]:
        """Timed cluster-fault actions falling inside one phase's span.

        Returns ``(virtual_time, action_kind, fault)`` triples sorted by
        time.  Churn windows are clamped to the span (a window straddling a
        ``process_crash`` point releases its members at the crash).
        """
        span_start, span_end = span
        actions: list[tuple[float, str, Any]] = []
        for index, fault in enumerate(self.scenario.faults):
            if not span_start <= fault.start < span_end:
                continue
            if fault.kind == "consumer_churn":
                actions.append((fault.start, "join", index))
                actions.append((min(fault.end, span_end), "leave", index))
            elif fault.kind == "shard_outage":
                actions.append((fault.start, "outage", index))
            elif fault.kind == "leader_failover":
                actions.append((fault.start, "failover", index))
        actions.sort(key=lambda entry: entry[0])
        return actions

    def _run_phase(self, phase_events: list[ScheduledEvent], broker: Broker,
                   group: str, make_consumer: Any, store: Any,
                   max_batch_records: int | None,
                   span: tuple[float, float]) -> list[ProducerStats]:
        """Replay one contiguous slice of the timeline and drain it.

        ``make_consumer(coordinator=None, member_id=None)`` builds a
        :class:`ConsumerApplication` wired to the phase's (possibly just
        recovered) components.  Without churn faults or a multi-member
        group this is the classic path: producers on threads, one consumer
        draining in the calling thread.  Otherwise the consume side runs as
        a dynamic consumer group: ``self.consumers`` base members plus the
        phase's churn members, joining and leaving through a
        :class:`GroupCoordinator` while a fault thread fires the scheduled
        membership changes and shard outages at their virtual times.
        """
        scenario = self.scenario
        per_producer: list[list[ScheduledEvent]] = [
            [] for _ in range(scenario.producers)
        ]
        for event in phase_events:
            per_producer[event.producer].append(event)
        producers = [
            Producer(broker, serializer=serializer_by_name(scenario.serializer))
            for _ in range(scenario.producers)
        ]
        base_time = phase_events[0].time if phase_events else span[0]
        actions = self._phase_fault_actions(span)
        wall_start = time.perf_counter()
        threads = [
            threading.Thread(
                target=self._replay,
                args=(events, broker, group, wall_start, producer, base_time),
                name=f"loadgen-{i}",
            )
            for i, (events, producer) in enumerate(zip(per_producer, producers))
        ]
        for thread in threads:
            thread.start()

        def producers_done() -> bool:
            return not any(thread.is_alive() for thread in threads)

        if not self._cluster_consume and not actions:
            # Classic static-assignment path: one consumer, calling thread.
            report = make_consumer().drain_until(
                producers_done, max_records=max_batch_records
            )
            self._phase_reports.append(report)
        else:
            self._run_cluster_consumers(
                broker, group, make_consumer, store, max_batch_records,
                producers_done, actions, wall_start, base_time,
            )
        for thread in threads:
            thread.join()
        stats = [producer.stats for producer in producers]
        for producer in producers:
            producer.close()
        return stats

    def _run_cluster_consumers(self, broker: Broker, group: str,
                               make_consumer: Any, store: Any,
                               max_batch_records: int | None,
                               producers_done: Any,
                               actions: list[tuple[float, str, Any]],
                               wall_start: float, base_time: float) -> None:
        """Drain one phase with dynamic group membership and fault timers."""
        scenario = self.scenario
        coordinator = (
            GroupCoordinator(broker, self.topic, group)
            if self._cluster_consume else None
        )
        faults_done = threading.Event()
        report_lock = threading.Lock()
        member_reports: list[ConsumerRunReport] = []

        def run_member(app: ConsumerApplication, done: Any) -> None:
            report = ConsumerRunReport()
            while True:
                try:
                    app.drain_until(done, max_records=max_batch_records,
                                    report=report)
                except FencedGenerationError:
                    # A rebalance superseded this member's generation while
                    # a commit was in flight.  Its uncommitted tail belongs
                    # to the partitions' new owners now (the idempotent
                    # sink deduplicates the overlap); keep draining under
                    # the assignment the coordinator just handed us,
                    # accumulating into the same report.
                    continue
                break
            with report_lock:
                member_reports.append(report)

        def base_done() -> bool:
            return producers_done() and faults_done.is_set()

        if coordinator is None:
            member_apps = [make_consumer()]
        else:
            member_apps = [
                make_consumer(coordinator, f"static-{i}")
                for i in range(self.consumers)
            ]
        consumer_threads = [
            threading.Thread(target=run_member, args=(app, base_done),
                             name=f"consume-{i}")
            for i, app in enumerate(member_apps)
        ]
        for thread in consumer_threads:
            thread.start()

        churn_threads: list[threading.Thread] = []
        churn_members: dict[int, list[tuple[str, threading.Event]]] = {}
        action_errors: list[BaseException] = []

        def execute_actions() -> None:
            try:
                for virtual_time, kind, fault_index in actions:
                    target = wall_start + (virtual_time - base_time) / self.speedup
                    delay = target - time.perf_counter()
                    if delay > 0:
                        time.sleep(delay)
                    fault = scenario.faults[fault_index]
                    if kind == "join":
                        count = int(fault.params.get("consumers", 1))
                        members = []
                        for j in range(count):
                            member_id = f"churn-{fault_index}-{j}"
                            left = threading.Event()
                            app = make_consumer(coordinator, member_id)
                            thread = threading.Thread(
                                target=run_member, args=(app, left.is_set),
                                name=member_id,
                            )
                            members.append((member_id, left))
                            churn_threads.append(thread)
                            thread.start()
                        churn_members[fault_index] = members
                    elif kind == "leave":
                        for member_id, left in churn_members.pop(fault_index, []):
                            coordinator.leave(member_id)
                            left.set()
                    elif kind == "outage":
                        shard = int(fault.params.get("shard", 0))
                        recovery = store.restart_shard(shard)
                        with self._bp_lock:
                            self._shard_recoveries.append(recovery)
                    elif kind == "failover":
                        # Kill the shard's replica-set leader (SIGKILL in
                        # process mode) and promote the most-caught-up
                        # follower under a bumped, fenced epoch.
                        shard = int(fault.params.get("shard", 0))
                        record = store.fail_over_shard(shard)
                        with self._bp_lock:
                            self._failovers.append(record)
            except BaseException as exc:  # re-raised after the threads unwind
                action_errors.append(exc)
            finally:
                # Whatever happened, release every drain loop: churn members
                # whose scheduled leave never ran (an earlier action raised)
                # must not be left draining forever — that would wedge the
                # joins below instead of surfacing the error.
                for members in churn_members.values():
                    for _member_id, left in members:
                        left.set()
                faults_done.set()

        if actions:
            fault_thread = threading.Thread(target=execute_actions, name="faults")
            fault_thread.start()
        else:
            fault_thread = None
            faults_done.set()

        if fault_thread is not None:
            fault_thread.join()
        for thread in consumer_threads:
            thread.join()
        for thread in churn_threads:
            thread.join()
        if coordinator is not None:
            self._rebalances += coordinator.rebalances
        self._phase_reports.append(self._merge_consumer_reports(member_reports))
        if action_errors:
            raise action_errors[0]

    @staticmethod
    def _split_phases(timeline: list[ScheduledEvent],
                      crash_points: list[float]) -> list[list[ScheduledEvent]]:
        """Cut the timeline at each crash instant (events are pre-shifted out
        of every crash window, so a boundary never splits a window)."""
        phases: list[list[ScheduledEvent]] = []
        rest = timeline
        for point in crash_points:
            phase = [e for e in rest if e.time < point]
            rest = [e for e in rest if e.time >= point]
            phases.append(phase)
        phases.append(rest)
        return phases

    def shutdown_workers(self) -> None:
        """Reap process-mode shard workers left serving post-run reads.
        No-op (and safe) for in-process runs.  Idempotent."""
        if self.recovery_manager is not None:
            self.recovery_manager.shutdown_workers()

    def _open_durable_components(
        self, manager: RecoveryManager
    ) -> tuple[Broker, AlarmHistory, VerificationLog]:
        """Wire the pipeline onto the manager's current (freshly recovered)
        broker + store; used identically at start-up and after each crash."""
        history = AlarmHistory(store=manager.store)
        verification_log = VerificationLog(manager.store)
        self.verification_log = verification_log
        return manager.broker, history, verification_log

    @staticmethod
    def _merge_consumer_reports(reports: list[ConsumerRunReport]) -> ConsumerRunReport:
        merged = ConsumerRunReport()
        for report in reports:
            merged.alarms_processed += report.alarms_processed
            merged.windows += report.windows
            merged.streaming_seconds += report.streaming_seconds
            merged.batch_seconds += report.batch_seconds
            merged.ml_seconds += report.ml_seconds
            merged.store_seconds += report.store_seconds
            merged.elapsed_seconds += report.elapsed_seconds
            merged.duplicates_skipped += report.duplicates_skipped
            merged.verifications.extend(report.verifications)
            if report.started_wall is not None:
                merged.started_wall = (
                    report.started_wall if merged.started_wall is None
                    else min(merged.started_wall, report.started_wall)
                )
            if report.finished_wall is not None:
                merged.finished_wall = (
                    report.finished_wall if merged.finished_wall is None
                    else max(merged.finished_wall, report.finished_wall)
                )
        return merged

    def run(self, max_batch_records: int | None = 2_000) -> LoadTestReport:
        """Replay the scenario end to end; returns the combined report.

        With ``durable_dir`` set the broker/history/verification stores are
        the crash-safe implementations, and each ``process_crash`` fault
        splits the replay: the phase before it is produced and drained,
        the pipeline is crashed (losing all un-fsynced state) and recovered
        from disk, and the next phase continues against the recovered
        components under the same consumer group.

        With ``metrics_port`` set, the live telemetry endpoint serves
        ``/metrics`` + ``/healthz`` for the duration of the run.
        """
        server = None
        if self.metrics_port is not None:
            from repro.obs.http import ClusterTelemetry, MetricsHTTPServer

            # Callables, not values: the store is rebuilt across
            # crash-recovery phases and the telemetry must follow it.
            telemetry = ClusterTelemetry(
                registry=get_registry,
                tracer=lambda: self.tracer,
                store=lambda: self.store,
            )
            server = MetricsHTTPServer(telemetry, port=self.metrics_port)
            self.metrics_server = server.start()
        try:
            return self._run(max_batch_records)
        finally:
            if server is not None:
                server.stop()
                self.metrics_server = None

    def _run(self, max_batch_records: int | None) -> LoadTestReport:
        scenario = self.scenario
        timeline = self.build_timeline()
        crash_points = sorted(
            fault.start for fault in scenario.faults
            if fault.kind == "process_crash"
        )
        durable = self.durable_dir is not None
        service = self.service if self.service is not None else self._build_service()
        ops = self._injected_ops
        if ops is None:
            ops = OpsMetrics(DocumentStore())  # fresh metrics per run
        self.ops = ops
        self._backpressure_waits = 0
        self._phase_reports: list[ConsumerRunReport] = []
        self._rebalances = 0
        self._shard_recoveries: list[dict[str, Any]] = []
        self._failovers: list[dict[str, Any]] = []

        recoveries: list[RecoveryReport] = []
        verification_log: VerificationLog | None = None
        if durable:
            manager = RecoveryManager(
                self.durable_dir,
                offset_checkpoint_every=self.offset_checkpoint_every,
                store_shards=self.shards,
                shard_keys=PIPELINE_SHARD_KEYS,
                process_shards=self.process_shards,
                replicas=self.replicas,
                replica_ack=self.replica_ack,
                replica_read_from=self.replica_read_from,
            )
            manager.recover()
            self.recovery_manager = manager
            broker, history, verification_log = self._open_durable_components(manager)
            store = manager.store
        else:
            broker = Broker()
            if self.shards > 1:
                store = ShardedDocumentStore(
                    num_shards=self.shards, shard_keys=PIPELINE_SHARD_KEYS
                )
                history = AlarmHistory(store=store)
            else:
                history = self.history if self.history is not None else AlarmHistory()
                store = history.store
            if self.shards > 1 or self._cluster_consume:
                # Cluster runs re-process windows across rebalances; the
                # idempotent sink is what keeps them exactly-once, so it is
                # attached even without durability.
                verification_log = VerificationLog(store)
                self.verification_log = verification_log
        self.store = store
        if scenario.dataset.preload_history and not (durable and len(history)):
            history.record_batch(self._generator.generate(
                scenario.dataset.preload_history, seed_offset=13
            ))

        broker.create_topic(self.topic, num_partitions=scenario.partitions)
        group = f"{self.topic}-consumer"
        serializer = serializer_by_name(scenario.serializer)
        phases = self._split_phases(timeline, crash_points)
        spans = list(zip(
            [0.0] + crash_points, crash_points + [float("inf")]
        ))

        stats: list[ProducerStats] = []
        wall_start = time.perf_counter()
        for phase_index, phase_events in enumerate(phases):
            def make_consumer(coordinator: Any = None,
                              member_id: str | None = None,
                              _history: AlarmHistory = history,
                              _log: VerificationLog | None = verification_log,
                              _broker: Broker = broker) -> ConsumerApplication:
                return ConsumerApplication(
                    _broker, self.topic, group, service, history=_history,
                    serializer=serializer, verification_log=_log,
                    on_window=self.ops.observe_window,
                    coordinator=coordinator, member_id=member_id,
                    tracer=self.tracer,
                )

            stats.extend(self._run_phase(
                phase_events, broker, group, make_consumer, store,
                max_batch_records, spans[phase_index],
            ))
            if phase_index < len(phases) - 1:
                # The process_crash fault fires: every byte not yet fsynced
                # is gone, then the pipeline is rebuilt from disk.  Offsets
                # may rewind to their last checkpoint, so the next phase's
                # consumer re-processes a suffix — deduplicated by the sink.
                manager.crash()
                recoveries.append(manager.recover())
                broker, history, verification_log = \
                    self._open_durable_components(manager)
                store = manager.store
                self.store = store
        wall_seconds = time.perf_counter() - wall_start
        if durable:
            manager.close()

        consumer_report = self._merge_consumer_reports(self._phase_reports)
        records_sent = sum(s.records_sent for s in stats)
        bytes_sent = sum(s.bytes_sent for s in stats)
        active = [s for s in stats if s.records_sent]
        if active:
            started = min(s.started_at for s in active)
            finished = max(s.finished_at for s in active)
            produce_elapsed = max(finished - started, 1e-9)
        else:
            produce_elapsed = 1e-9
        return LoadTestReport(
            scenario=scenario.name,
            seed=self.seed,
            speedup=self.speedup,
            events_scheduled=len(timeline),
            records_sent=records_sent,
            bytes_sent=bytes_sent,
            wall_seconds=wall_seconds,
            produce_records_per_second=records_sent / produce_elapsed,
            produce_bytes_per_second=bytes_sent / produce_elapsed,
            backpressure_waits=self._backpressure_waits,
            consumer=consumer_report,
            ops=self.ops.summary(),
            ops_report=self.ops.render_report(),
            producer_stats=stats,
            durable=durable,
            recoveries=recoveries,
            duplicates_skipped=consumer_report.duplicates_skipped,
            verified_unique=(
                verification_log.count() if verification_log is not None else None
            ),
            shards=self.shards,
            consumers=self.consumers,
            rebalances=self._rebalances,
            shard_recoveries=list(self._shard_recoveries),
            replicas=self.replicas,
            failovers=list(self._failovers),
            metrics=self._cluster_metrics(),
            traces=self.tracer.trace_documents(),
        )

    def _cluster_metrics(self) -> dict[str, Any]:
        """The report's ``metrics`` field: the *merged* cluster snapshot.

        In process-shard mode the parent snapshot merges with a harvest of
        every worker (their WAL/journal/planner series surface with
        ``{shard[, replica]}`` labels); otherwise — or when no worker
        answers — this degrades to exactly the parent-only snapshot the
        report carried before, same schema, so old callers keep working.
        """
        from repro.obs.aggregate import collect_cluster_snapshot

        return collect_cluster_snapshot(
            get_registry(), tracer=self.tracer, store=self.store,
        )
