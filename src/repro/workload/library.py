"""Named scenario presets: the traffic shapes a monitoring center sees.

Each preset is a builder returning a fresh :class:`~repro.workload.scenario.Scenario`;
durations are in virtual seconds (the driver compresses them by its
``speedup`` factor).  Presets are sized so a default CLI run finishes in
seconds while still producing a thousand-plus events.

Use :func:`scenario` to fetch one by name, :func:`load_scenario` to accept
either a preset name or a path to a scenario JSON file.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

from repro.errors import ConfigurationError
from repro.workload.arrivals import (
    Burst,
    BurstOverlay,
    ConstantRate,
    DiurnalArrivals,
    PoissonArrivals,
)
from repro.workload.scenario import DatasetSpec, FaultInjection, Scenario

__all__ = ["scenario", "scenario_names", "load_scenario"]


def _steady() -> Scenario:
    """Steady-state floor: constant production traffic, no surprises."""
    return Scenario(
        name="steady",
        description="Constant-rate baseline over one virtual hour.",
        arrivals=ConstantRate(rate=0.5),
        duration=3_600.0,
    )


def _night_burglary() -> Scenario:
    """Diurnal profile with an intrusion-heavy burst in the small hours."""
    return Scenario(
        name="night-burglary",
        description=(
            "Six virtual hours of diurnal traffic; a burglary wave of "
            "intrusion alarms erupts two hours in."
        ),
        arrivals=BurstOverlay(
            base=DiurnalArrivals(base_rate=0.12, amplitude=0.9, phase=0.0),
            bursts=(Burst(start=7_200.0, duration=1_800.0, rate=0.8),),
        ),
        duration=21_600.0,
        dataset=DatasetSpec(alarm_type_bias={"intrusion": 3.0}),
    )


def _storm() -> Scenario:
    """City-wide storm: technical/fire alarm flood plus a region power cut."""
    return Scenario(
        name="storm",
        description=(
            "A storm front crosses the country: two waves of mostly "
            "technical and fire alarms, with one region losing power "
            "(and its sensors) mid-storm."
        ),
        arrivals=BurstOverlay(
            base=ConstantRate(rate=0.3),
            bursts=(
                Burst(start=600.0, duration=900.0, rate=1.5),
                Burst(start=2_100.0, duration=600.0, rate=2.5),
            ),
        ),
        duration=3_600.0,
        dataset=DatasetSpec(
            alarm_type_bias={"technical": 5.0, "fire": 2.5},
        ),
        faults=(
            FaultInjection(
                kind="region_outage", start=2_100.0, end=3_000.0,
                params={"fraction": 0.25},
            ),
        ),
    )


def _serializer_stress() -> Scenario:
    """High rate through the slow reflective serializer (the Figure 11 trap)."""
    return Scenario(
        name="serializer-stress",
        description=(
            "Sustained high-rate traffic through the reflective (Jackson-"
            "style) serializer — the serialization bottleneck scenario."
        ),
        arrivals=PoissonArrivals(rate=1.2),
        duration=1_800.0,
        serializer="reflective",
        producers=4,
    )


def _cold_start() -> Scenario:
    """Fresh deployment: tiny model, empty history, realistic traffic."""
    return Scenario(
        name="cold-start",
        description=(
            "A just-deployed center: the model saw only 300 training "
            "alarms and the history store is empty (every histogram "
            "query starts from zero)."
        ),
        arrivals=PoissonArrivals(rate=0.6),
        duration=3_600.0,
        dataset=DatasetSpec(train_alarms=300, preload_history=0),
    )


def _incident_flood() -> Scenario:
    """Multilingual incident texts attached to every alarm payload."""
    return Scenario(
        name="incident-flood",
        description=(
            "Every alarm carries a multilingual incident-report text, "
            "inflating and diversifying payloads (UTF-8 serializer and "
            "storage stress)."
        ),
        arrivals=PoissonArrivals(rate=0.7),
        duration=2_700.0,
        dataset=DatasetSpec(
            attach_incident_text=True,
            alarm_type_bias={"fire": 2.0, "intrusion": 1.5},
        ),
    )


def _outage_recovery() -> Scenario:
    """Producer stall + duplicate redelivery: the messy network day."""
    return Scenario(
        name="outage-recovery",
        description=(
            "Producers stall for ten virtual minutes and flush the backlog "
            "at once; the flaky network then redelivers a third of the "
            "following traffic."
        ),
        arrivals=ConstantRate(rate=0.5),
        duration=3_600.0,
        faults=(
            FaultInjection(kind="producer_stall", start=900.0, end=1_500.0),
            FaultInjection(
                kind="duplicate_delivery", start=1_500.0, end=2_400.0,
                params={"probability": 0.33},
            ),
        ),
    )


_LIBRARY: dict[str, Callable[[], Scenario]] = {
    "steady": _steady,
    "night-burglary": _night_burglary,
    "storm": _storm,
    "serializer-stress": _serializer_stress,
    "cold-start": _cold_start,
    "incident-flood": _incident_flood,
    "outage-recovery": _outage_recovery,
}


def scenario_names() -> list[str]:
    """All preset names, sorted."""
    return sorted(_LIBRARY)


def scenario(name: str) -> Scenario:
    """Build a fresh preset by name."""
    try:
        return _LIBRARY[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; known: {scenario_names()}"
        ) from None


def load_scenario(name_or_path: str) -> Scenario:
    """Resolve a preset name or a scenario JSON file path."""
    if name_or_path in _LIBRARY:
        return _LIBRARY[name_or_path]()
    path = Path(name_or_path)
    if path.exists():
        return Scenario.from_file(path)
    raise ConfigurationError(
        f"{name_or_path!r} is neither a library scenario nor a file; "
        f"library: {scenario_names()}"
    )
