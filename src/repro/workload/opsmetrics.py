"""Online operations metrics for load-test runs.

:class:`OpsMetrics` observes every consumer window and maintains the
operational numbers a production alarm pipeline is judged by:

* **throughput** — verified alarms per wall-clock second;
* **end-to-end latency** — produce-to-verdict, with p50/p95/p99 percentiles
  (events carry a ``_produced_at`` wall timestamp in their extras, stamped
  by the load driver at send time);
* **verification rate** — the fraction of alarms auto-classified false per
  window, and its trend across the run (an operator watches this line: a
  drifting rate means the model or the traffic changed);
* **SLA / MTTR** — per-window p95 latency is checked against an SLA bound;
  compliance is the fraction of healthy windows and MTTR is the mean wall
  time from an SLA breach back to the first healthy window.

Every window is also persisted as a document in a
:class:`~repro.storage.store.DocumentStore` collection (``ops_windows``),
so trend reports are ordinary queries over the same storage layer the rest
of the system uses — and survive a ``store.save()`` like any other data.
The report queries lean on that layer's planner: the per-run SLA count
narrows through the ``run`` hash index (verifying only that run's window
documents), window ordering rides the ``window`` sorted index instead of
sorting, and every trend read projects *before* cloning so only the handful
of numeric fields it consumes are ever copied.
Each :class:`OpsMetrics` instance observes exactly one run: its documents
carry a fresh ``run`` id and every query filters on it, so a store shared
across runs (or reloaded from disk) keeps each run's report separate.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.core.verification import Verification
from repro.obs.registry import get_registry
from repro.storage.store import DocumentStore

__all__ = ["OpsMetrics", "OpsSummary", "PRODUCED_AT_KEY"]

#: Extras key carrying the producer-side wall timestamp (``time.perf_counter``).
PRODUCED_AT_KEY = "_produced_at"

#: Trend classification tolerance on the false-rate delta between run halves.
_TREND_TOLERANCE = 0.02


@dataclass(frozen=True)
class OpsSummary:
    """Aggregate outcome of one observed run."""

    alarms: int
    windows: int
    elapsed_seconds: float
    throughput: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    verification_rate: float
    sla_compliance: float
    mttr_seconds: float | None
    trend: str
    #: Fraction of alarms whose end-to-end latency missed the per-alarm
    #: deadline (0.0 when no deadline was configured).
    deadline_miss_rate: float = 0.0


class OpsMetrics:
    """Accumulates per-window operational metrics during a run.

    Parameters
    ----------
    store:
        Document store receiving one document per window (a fresh in-memory
        store when omitted).
    collection_name:
        Target collection for window documents.
    sla_p95_seconds:
        Per-window p95 latency bound that defines a "healthy" window.
    deadline_seconds:
        Optional per-alarm end-to-end deadline.  When set, every alarm
        whose produce-to-verdict latency exceeds it counts as a deadline
        miss; the run report and each window document carry the miss rate.
    """

    def __init__(self, store: DocumentStore | None = None,
                 collection_name: str = "ops_windows",
                 sla_p95_seconds: float = 0.5,
                 deadline_seconds: float | None = None) -> None:
        self.store = store if store is not None else DocumentStore()
        self.collection = self.store.collection(collection_name)
        if "window" not in self.collection.index_fields():
            self.collection.create_index("window", kind="sorted")
        if "run" not in self.collection.index_fields():
            self.collection.create_index("run", kind="hash")
        existing_runs = self.collection.distinct("run")
        self.run = (max(existing_runs) + 1) if existing_runs else 0
        self.sla_p95_seconds = sla_p95_seconds
        self.deadline_seconds = deadline_seconds
        self.alarms = 0
        self.windows = 0
        self._latencies: list[float] = []
        self._false_count = 0
        self._deadline_misses = 0
        self._started_at: float | None = None
        self._finished_at: float | None = None
        self._latency_hist = get_registry().histogram("repro_e2e_latency_seconds")
        # Several consumers of one group (cluster mode) observe windows
        # concurrently; the running totals and the window counter must
        # update atomically.
        self._observe_lock = threading.Lock()

    # -- observation -----------------------------------------------------------

    def observe_window(self, verifications: Sequence[Verification],
                       batch: Any = None) -> dict[str, Any]:
        """Record one consumer window; returns the stored window document.

        Thread-safe: windows reported concurrently by several consumers of
        one group (dynamic-membership cluster runs) serialize on an
        internal lock, so counters and window numbering stay consistent.
        """
        now = time.perf_counter()
        latencies = [
            now - float(v.alarm.extras[PRODUCED_AT_KEY])
            for v in verifications
            if PRODUCED_AT_KEY in v.alarm.extras
        ]
        false_count = sum(1 for v in verifications if v.is_false)
        count = len(verifications)
        if latencies:
            arr = np.asarray(latencies)
            p50, p95, p99 = (float(p) for p in np.percentile(arr, (50, 95, 99)))
            mean = float(arr.mean())
            self._latency_hist.observe_many(latencies)
        else:
            p50 = p95 = p99 = mean = 0.0
        misses = 0
        if self.deadline_seconds is not None:
            misses = sum(1 for lat in latencies if lat > self.deadline_seconds)
        with self._observe_lock:
            if self._started_at is None:
                self._started_at = now
            self._finished_at = max(self._finished_at or now, now)
            self.alarms += count
            self._false_count += false_count
            self._deadline_misses += misses
            self._latencies.extend(latencies)
            doc = {
                "run": self.run,
                "window": self.windows,
                "count": count,
                "false_rate": false_count / count if count else 0.0,
                "latency_mean": mean,
                "latency_p50": p50,
                "latency_p95": p95,
                "latency_p99": p99,
                "sla_ok": p95 <= self.sla_p95_seconds,
                "deadline_misses": misses,
                "deadline_miss_rate": misses / count if count else 0.0,
                "observed_at": now,
            }
            self.collection.insert_one(doc)
            self.windows += 1
        return doc

    # -- aggregates ------------------------------------------------------------

    @property
    def elapsed_seconds(self) -> float:
        """Wall time between the first and last observed window."""
        if self._started_at is None or self._finished_at is None:
            return 0.0
        return self._finished_at - self._started_at

    def throughput(self) -> float:
        """Verified alarms per second of observed wall time.

        With fewer than two observed windows there is no elapsed interval
        to divide by, so the rate is reported as ``0.0`` — returning the
        raw alarm count (the old behaviour) made a single-window run look
        like an absurd alarms-per-second figure.
        """
        elapsed = self.elapsed_seconds
        if elapsed <= 0:
            return 0.0
        return self.alarms / elapsed

    def latency_percentiles(self) -> dict[str, float]:
        """Run-level p50/p95/p99 end-to-end latency in seconds."""
        if not self._latencies:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        p50, p95, p99 = np.percentile(np.asarray(self._latencies), (50, 95, 99))
        return {"p50": float(p50), "p95": float(p95), "p99": float(p99)}

    def verification_rate(self) -> float:
        """Overall fraction of alarms classified false."""
        if self.alarms == 0:
            return 0.0
        return self._false_count / self.alarms

    def deadline_miss_rate(self) -> float:
        """Fraction of alarms that missed the per-alarm deadline (0.0 when
        no ``deadline_seconds`` was configured)."""
        if self.alarms == 0:
            return 0.0
        return self._deadline_misses / self.alarms

    def sla_compliance(self) -> float:
        """Fraction of windows whose p95 latency met the SLA bound."""
        if self.windows == 0:
            return 1.0
        healthy = self.collection.count({"run": self.run, "sla_ok": True})
        return healthy / self.windows

    def mttr_seconds(self) -> float | None:
        """Mean wall time from an SLA breach to the next healthy window.

        ``None`` when no breach occurred — or when the only breach began in
        the final window, where no recovery interval is observable (a 0s
        "recovery" would make the worst case look like the best).  A breach
        still open at the end of the run counts from its start to the last
        observed window.
        """
        docs = self.collection.find({"run": self.run}, sort="window",
                                    projection=["sla_ok", "observed_at"])
        recoveries: list[float] = []
        breach_started: float | None = None
        last_seen: float | None = None
        for doc in docs:
            last_seen = doc["observed_at"]
            if not doc["sla_ok"] and breach_started is None:
                breach_started = doc["observed_at"]
            elif doc["sla_ok"] and breach_started is not None:
                recoveries.append(doc["observed_at"] - breach_started)
                breach_started = None
        if (breach_started is not None and last_seen is not None
                and last_seen > breach_started):
            recoveries.append(last_seen - breach_started)
        if not recoveries:
            return None
        return float(np.mean(recoveries))

    # -- trend reporting ---------------------------------------------------------

    def verification_rate_trend(self, buckets: int = 6) -> list[dict[str, Any]]:
        """Bucketed false-rate series over the run (the operator trend line).

        Windows are grouped into up to ``buckets`` equal spans; each entry
        reports the span's window range, alarm count, and aggregate false
        rate — the shape of an endpoint-incident trend table.
        """
        docs = self.collection.find(
            {"run": self.run}, sort="window",
            projection=["window", "count", "false_rate", "latency_p95"],
        )
        if not docs:
            return []
        span = max(1, -(-len(docs) // buckets))  # ceil division
        trend: list[dict[str, Any]] = []
        for start in range(0, len(docs), span):
            chunk = docs[start : start + span]
            alarms = sum(d["count"] for d in chunk)
            false_alarms = sum(d["count"] * d["false_rate"] for d in chunk)
            trend.append({
                "windows": f"{chunk[0]['window']}-{chunk[-1]['window']}",
                "alarms": alarms,
                "false_rate": false_alarms / alarms if alarms else 0.0,
                "latency_p95": max(d["latency_p95"] for d in chunk),
            })
        return trend

    def trend_direction(self) -> str:
        """``rising`` / ``falling`` / ``stable`` false-rate over the run.

        Each half's rate is the *alarm-weighted* aggregate
        ``sum(false) / sum(alarms)``, not the mean of per-window rates: an
        unweighted mean would let a 1-alarm window outvote a 1000-alarm
        window and flip the reported direction on skewed traffic.
        """
        docs = self.collection.find({"run": self.run}, sort="window",
                                    projection=["false_rate", "count"])
        pairs = [(d["false_rate"], d["count"]) for d in docs if d["count"] > 0]
        if len(pairs) < 2:
            return "stable"
        half = len(pairs) // 2

        def weighted_rate(chunk: list[tuple[float, int]]) -> float:
            alarms = sum(count for _rate, count in chunk)
            return sum(rate * count for rate, count in chunk) / alarms

        first, second = weighted_rate(pairs[:half]), weighted_rate(pairs[half:])
        if second - first > _TREND_TOLERANCE:
            return "rising"
        if first - second > _TREND_TOLERANCE:
            return "falling"
        return "stable"

    def summary(self) -> OpsSummary:
        """Aggregate the run into one :class:`OpsSummary`."""
        percentiles = self.latency_percentiles()
        return OpsSummary(
            alarms=self.alarms,
            windows=self.windows,
            elapsed_seconds=self.elapsed_seconds,
            throughput=self.throughput(),
            latency_p50=percentiles["p50"],
            latency_p95=percentiles["p95"],
            latency_p99=percentiles["p99"],
            verification_rate=self.verification_rate(),
            sla_compliance=self.sla_compliance(),
            mttr_seconds=self.mttr_seconds(),
            trend=self.trend_direction(),
            deadline_miss_rate=self.deadline_miss_rate(),
        )

    def render_report(self) -> str:
        """Human-readable run report (what the ``loadtest`` command prints)."""
        s = self.summary()
        lines = [
            f"alarms verified     {s.alarms} in {s.windows} windows "
            f"({s.elapsed_seconds:.2f}s observed)",
            f"throughput          {s.throughput:,.0f} alarms/s",
            f"latency p50/p95/p99 {s.latency_p50 * 1e3:.1f} / "
            f"{s.latency_p95 * 1e3:.1f} / {s.latency_p99 * 1e3:.1f} ms",
            f"verification rate   {s.verification_rate:.1%} false "
            f"({s.trend})",
            f"SLA compliance      {s.sla_compliance:.1%} of windows "
            f"(p95 <= {self.sla_p95_seconds * 1e3:.0f} ms)",
        ]
        if self.deadline_seconds is not None:
            lines.append(
                f"deadline misses     {s.deadline_miss_rate:.1%} of alarms "
                f"(deadline {self.deadline_seconds * 1e3:.0f} ms)"
            )
        if s.mttr_seconds is not None:
            lines.append(f"MTTR                {s.mttr_seconds:.2f}s")
        trend = self.verification_rate_trend()
        if trend:
            lines.append("verification-rate trend:")
            for row in trend:
                lines.append(
                    f"  windows {row['windows']:>9s}  alarms {row['alarms']:>6d}  "
                    f"false {row['false_rate']:6.1%}  p95 {row['latency_p95'] * 1e3:7.1f} ms"
                )
        return "\n".join(lines)
