"""Declarative traffic scenarios: dataset x arrivals x faults as one spec.

A :class:`Scenario` is the unit of reproducible load testing: it composes a
parametric dataset generator (:class:`DatasetSpec`), an arrival process, a
virtual duration, and a list of :class:`FaultInjection` windows into one
value that round-trips through dicts and JSON.  Two runs of the same
scenario under the same seed produce the *same event timeline* — scenarios
are seeded functions, not recorded traces, so a library preset and a
scenario file checked into a repo replay identically anywhere.

Fault kinds understood by the load driver:

* ``region_outage`` — a deterministic fraction of localities goes dark for
  the window (their events are dropped: sensors without power send nothing);
* ``duplicate_delivery`` — events in the window are re-delivered with some
  probability (an at-least-once upstream during network flaps);
* ``producer_stall`` — the producers stop sending for the window and flush
  the backlog when it ends (events are delayed, never lost);
* ``process_crash`` — the whole pipeline process dies at ``start`` and is
  restarted (crash recovery) at ``end``; events in the window are buffered
  upstream and flushed after the restart.  Requires the durable pipeline
  (``LoadDriver(durable_dir=...)``) — a crash without durability would
  simply lose the run.
* ``consumer_churn`` — ``params["consumers"]`` extra consumers join the
  consumer group at ``start`` and leave at ``end``; each membership change
  is a generation-bumped, offset-fenced rebalance through the
  :class:`~repro.cluster.coordinator.GroupCoordinator`.  Events are
  untouched — the fault stresses the group protocol, and the idempotent
  verification sink must keep the run exactly-once across the handovers.
* ``shard_outage`` — store shard ``params["shard"]`` crashes at ``start``
  (losing its un-fsynced bytes) and is immediately recovered from its own
  durability root while the other shards keep serving.  Requires the
  sharded durable pipeline (``LoadDriver(shards=N, durable_dir=...)``).
* ``leader_failover`` — shard ``params["shard"]``'s replica-set *leader* is
  killed at ``start`` (SIGKILL in process mode) and the most-caught-up
  follower is promoted under a bumped, fenced epoch; the old leader
  rejoins as a follower and catches up.  Requires the replicated durable
  pipeline (``LoadDriver(replicas>=2, durable_dir=...)``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ConfigurationError
from repro.workload.arrivals import ArrivalProcess, arrival_from_dict

__all__ = ["DatasetSpec", "FaultInjection", "Scenario"]

_FAULT_KINDS = (
    "region_outage", "duplicate_delivery", "producer_stall", "process_crash",
    "consumer_churn", "shard_outage", "leader_failover",
)
_SERIALIZERS = ("compact", "reflective")


@dataclass(frozen=True)
class DatasetSpec:
    """Parametric alarm-population spec: ``(params, seed) -> alarms``.

    Parameters
    ----------
    num_devices:
        Fleet size of the synthetic Sitasys generator.
    sharpness:
        Generator inverse temperature (passed through).
    train_alarms:
        Offline training-set size for the verification model; small values
        model a cold-start deployment.
    preload_history:
        Alarms inserted into the history store before the run starts
        (0 = empty history, the cold-start case).
    alarm_type_bias:
        Optional per-alarm-type sampling weight multipliers applied when
        events are drawn from the replay pool — ``{"technical": 6.0}``
        models a storm of technical alarms without touching the latent
        generative process.
    attach_incident_text:
        Attach a multilingual incident-report text to every event's extras,
        inflating and diversifying payloads (serializer/UTF-8 stress).
    """

    num_devices: int = 400
    sharpness: float = 3.5
    train_alarms: int = 3_000
    preload_history: int = 1_000
    alarm_type_bias: Mapping[str, float] | None = None
    attach_incident_text: bool = False

    def __post_init__(self) -> None:
        if self.num_devices < 10:
            raise ConfigurationError(
                f"num_devices must be >= 10, got {self.num_devices}"
            )
        if self.train_alarms < 50:
            raise ConfigurationError(
                f"train_alarms must be >= 50, got {self.train_alarms}"
            )
        if self.preload_history < 0:
            raise ConfigurationError(
                f"preload_history must be >= 0, got {self.preload_history}"
            )
        if self.alarm_type_bias is not None:
            bias = {}
            for alarm_type, weight in dict(self.alarm_type_bias).items():
                try:
                    weight = float(weight)
                except (TypeError, ValueError):
                    raise ConfigurationError(
                        f"alarm_type_bias[{alarm_type!r}] must be a number, "
                        f"got {weight!r}"
                    ) from None
                if weight <= 0:
                    raise ConfigurationError(
                        f"alarm_type_bias[{alarm_type!r}] must be > 0, got {weight}"
                    )
                bias[alarm_type] = weight
            object.__setattr__(self, "alarm_type_bias", bias)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "num_devices": self.num_devices,
            "sharpness": self.sharpness,
            "train_alarms": self.train_alarms,
            "preload_history": self.preload_history,
            "attach_incident_text": self.attach_incident_text,
        }
        if self.alarm_type_bias is not None:
            out["alarm_type_bias"] = dict(self.alarm_type_bias)
        return out

    @staticmethod
    def from_dict(spec: Mapping[str, Any]) -> "DatasetSpec":
        return DatasetSpec(
            num_devices=int(spec.get("num_devices", 400)),
            sharpness=float(spec.get("sharpness", 3.5)),
            train_alarms=int(spec.get("train_alarms", 3_000)),
            preload_history=int(spec.get("preload_history", 1_000)),
            alarm_type_bias=spec.get("alarm_type_bias"),
            attach_incident_text=bool(spec.get("attach_incident_text", False)),
        )


@dataclass(frozen=True)
class FaultInjection:
    """One fault window ``[start, end)`` in virtual seconds."""

    kind: str
    start: float
    end: float
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; known: {list(_FAULT_KINDS)}"
            )
        if self.start < 0 or self.end <= self.start:
            raise ConfigurationError(
                f"fault window must satisfy 0 <= start < end, "
                f"got [{self.start}, {self.end})"
            )
        object.__setattr__(self, "params", dict(self.params))
        if self.kind == "region_outage":
            fraction = float(self.params.get("fraction", 0.2))
            if not 0.0 < fraction <= 1.0:
                raise ConfigurationError(
                    f"region_outage fraction must be in (0, 1], got {fraction}"
                )
        if self.kind == "duplicate_delivery":
            probability = float(self.params.get("probability", 0.5))
            if not 0.0 < probability <= 1.0:
                raise ConfigurationError(
                    f"duplicate_delivery probability must be in (0, 1], "
                    f"got {probability}"
                )
        if self.kind == "consumer_churn":
            consumers = int(self.params.get("consumers", 1))
            if consumers < 1:
                raise ConfigurationError(
                    f"consumer_churn consumers must be >= 1, got {consumers}"
                )
        if self.kind in ("shard_outage", "leader_failover"):
            shard = int(self.params.get("shard", 0))
            if shard < 0:
                raise ConfigurationError(
                    f"{self.kind} shard must be >= 0, got {shard}"
                )

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "params": dict(self.params),
        }

    @staticmethod
    def from_dict(spec: Mapping[str, Any]) -> "FaultInjection":
        return FaultInjection(
            kind=spec["kind"],
            start=float(spec["start"]),
            end=float(spec["end"]),
            params=spec.get("params", {}),
        )


@dataclass(frozen=True)
class Scenario:
    """A complete, replayable load-test description.

    ``duration`` is in *virtual* seconds; the driver compresses it by its
    ``speedup`` factor at replay time, so a six-hour diurnal profile runs in
    seconds of wall clock without changing the event timeline.
    """

    name: str
    arrivals: ArrivalProcess
    duration: float
    description: str = ""
    dataset: DatasetSpec = field(default_factory=DatasetSpec)
    faults: tuple[FaultInjection, ...] = ()
    producers: int = 2
    partitions: int = 4
    serializer: str = "compact"
    max_inflight: int = 20_000
    seed: int = 42

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must not be empty")
        if self.duration <= 0:
            raise ConfigurationError(f"duration must be > 0, got {self.duration}")
        if self.producers < 1:
            raise ConfigurationError(f"producers must be >= 1, got {self.producers}")
        if self.partitions < 1:
            raise ConfigurationError(
                f"partitions must be >= 1, got {self.partitions}"
            )
        if self.serializer not in _SERIALIZERS:
            raise ConfigurationError(
                f"serializer must be one of {list(_SERIALIZERS)}, "
                f"got {self.serializer!r}"
            )
        if self.max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.seed < 0:
            raise ConfigurationError(
                f"seed must be >= 0 (numpy rng requirement), got {self.seed}"
            )
        object.__setattr__(self, "faults", tuple(self.faults))

    def with_seed(self, seed: int) -> "Scenario":
        """A copy of this scenario under a different seed."""
        return replace(self, seed=seed)

    def expected_events(self) -> int:
        """Rough event-count estimate over the duration (excludes faults)."""
        return int(self.arrivals.expected_events(self.duration))

    # -- dict / JSON round-trip ------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "dataset": self.dataset.to_dict(),
            "arrivals": self.arrivals.to_dict(),
            "duration": self.duration,
            "faults": [fault.to_dict() for fault in self.faults],
            "producers": self.producers,
            "partitions": self.partitions,
            "serializer": self.serializer,
            "max_inflight": self.max_inflight,
            "seed": self.seed,
        }

    @staticmethod
    def from_dict(spec: Mapping[str, Any]) -> "Scenario":
        if not isinstance(spec, Mapping):
            raise ConfigurationError("scenario spec must be a mapping")
        missing = {"name", "arrivals", "duration"} - set(spec)
        if missing:
            raise ConfigurationError(
                f"scenario spec missing required keys: {sorted(missing)}"
            )
        return Scenario(
            name=str(spec["name"]),
            description=str(spec.get("description", "")),
            dataset=DatasetSpec.from_dict(spec.get("dataset", {})),
            arrivals=arrival_from_dict(spec["arrivals"]),
            duration=float(spec["duration"]),
            faults=tuple(
                FaultInjection.from_dict(f) for f in spec.get("faults", [])
            ),
            producers=int(spec.get("producers", 2)),
            partitions=int(spec.get("partitions", 4)),
            serializer=str(spec.get("serializer", "compact")),
            max_inflight=int(spec.get("max_inflight", 20_000)),
            seed=int(spec.get("seed", 42)),
        )

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize to a JSON document (the scenario-file format)."""
        return json.dumps(self.to_dict(), indent=indent)

    @staticmethod
    def from_json(text: str) -> "Scenario":
        """Inverse of :meth:`to_json`."""
        try:
            spec = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid scenario JSON: {exc}") from exc
        return Scenario.from_dict(spec)

    @staticmethod
    def from_file(path: str | Path) -> "Scenario":
        """Load a scenario from a JSON file."""
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(f"cannot read scenario file {path}: {exc}") from exc
        return Scenario.from_json(text)
