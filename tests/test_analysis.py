"""Tests for the static-analysis engine (`python -m repro lint`).

Each rule gets must-flag and must-not-flag fixture trees built in
``tmp_path``; the engine itself gets baseline round-trip, noqa
suppression, and CLI exit-code coverage, plus the self-check that the
repo's own tree lints clean with an empty baseline.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisConfig,
    Analyzer,
    Baseline,
    Finding,
    default_config,
)
from repro.analysis.rules import (
    ErrorRehydrationRule,
    LockDisciplineRule,
    MetricDriftRule,
    RpcSurfaceRule,
    SpawnSafetyRule,
)
from repro.cli import main
from repro.errors import ConfigurationError

REPO_ROOT = Path(__file__).resolve().parents[1]


def write_tree(root: Path, files: dict[str, str]) -> None:
    for name, text in files.items():
        path = root / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")


def run_lint(root: Path, files: dict[str, str], rules=None, *,
             readme: Path | None = None,
             baseline_path: Path | None = None,
             error_rule_modules: tuple[str, ...] = ("app.py",),
             spawn_entry: str = "worker.py"):
    write_tree(root, files)
    config = AnalysisConfig(
        root=root,
        source_roots=(root,),
        readme=readme,
        baseline_path=baseline_path,
        error_rule_modules=error_rule_modules,
        spawn_entry=spawn_entry,
        metric_exclude=(),
    )
    return Analyzer(config, rules=rules).run()


def messages(report) -> list[str]:
    return [f.message for f in report.findings]


class TestLockDiscipline:
    def test_flags_blocking_calls_under_lock(self, tmp_path):
        report = run_lint(tmp_path, {"app.py": """\
            import os
            import time

            def f(lock, handle, transport, wal, worker_thread, evt):
                with lock:
                    os.fsync(handle.fileno())
                    time.sleep(0.5)
                    transport.send(b"x")
                    transport.recv()
                    wal.append(b"rec")
                    worker_thread.join()
                    evt.wait()
            """}, rules=[LockDisciplineRule()])
        msgs = messages(report)
        assert len(msgs) == 7
        assert any("fsync" in m for m in msgs)
        assert any("time.sleep" in m for m in msgs)
        assert any("transport.send" in m for m in msgs)
        assert any("transport.recv" in m for m in msgs)
        assert any("WAL append" in m for m in msgs)
        assert any("thread join" in m for m in msgs)
        assert any("wait on `evt`" in m for m in msgs)

    def test_must_not_flag_sanctioned_patterns(self, tmp_path):
        report = run_lint(tmp_path, {"app.py": """\
            import os
            import time

            class Log:
                def read(self, timeout):
                    with self._cond:
                        # waiting on the held condition releases it: fine
                        self._cond.wait(timeout)

                def observe_outside(self):
                    with self._lock:
                        records = list(self._records)
                    time.sleep(0.01)          # outside the lock: fine
                    os.fsync(self._fd)        # outside the lock: fine
                    return records

                def register(self, cb):
                    with self._lock:
                        def deferred():       # runs later, not under lock
                            time.sleep(1)
                        self._cbs.append(deferred)
            """}, rules=[LockDisciplineRule()])
        assert report.findings == []

    def test_flags_lock_order_cycle(self, tmp_path):
        report = run_lint(tmp_path, {"app.py": """\
            def f(a_lock, b_lock):
                with a_lock:
                    with b_lock:
                        pass

            def g(a_lock, b_lock):
                with b_lock:
                    with a_lock:
                        pass
            """}, rules=[LockDisciplineRule()])
        assert len(report.findings) == 1
        assert "lock-order cycle" in report.findings[0].message
        assert "a_lock" in report.findings[0].message

    def test_consistent_order_and_reentry_not_flagged(self, tmp_path):
        report = run_lint(tmp_path, {"app.py": """\
            class Store:
                def f(self):
                    with self._reg_lock:
                        with self._commit_lock:
                            pass

                def g(self):
                    with self._reg_lock:
                        with self._commit_lock:
                            pass

                def reenter(self):
                    with self._write_lock:     # RLock re-entry
                        with self._write_lock:
                            pass
            """}, rules=[LockDisciplineRule()])
        assert report.findings == []

    def test_cross_method_cycle_via_class_keys(self, tmp_path):
        # self.<attr> locks key per-class, so a cycle split across two
        # methods of the same class is still a cycle.
        report = run_lint(tmp_path, {"app.py": """\
            class Broker:
                def a(self):
                    with self._registry_lock:
                        with self._committed_lock:
                            pass

                def b(self):
                    with self._committed_lock:
                        with self._registry_lock:
                            pass
            """}, rules=[LockDisciplineRule()])
        assert len(report.findings) == 1
        assert "Broker._registry_lock" in report.findings[0].message


RPC_CONSISTENT = {
    "protocol.py": """\
        STORE_OPS = frozenset({"ping"})
        COLLECTION_OPS = frozenset({"get"})

        class Request:
            id: int
            ops: list = None
            trace_id: str = None

        class Response:
            id: int
            results: list = None
        """,
    "worker.py": """\
        class ShardWorker:
            def _execute_store(self, method, args, kwargs):
                if method == "ping":
                    return {}
                raise RuntimeError(method)

            def _execute_collection(self, name, method, args, kwargs):
                if method == "get":
                    return None
                raise RuntimeError(method)
        """,
    "remote.py": """\
        class RemoteShardStore:
            def ping(self):
                return self._store_call("ping")

        class RemoteCollection:
            def get(self, doc_id):
                return self._one("get", doc_id)
        """,
}


class TestRpcSurface:
    def test_consistent_surface_is_clean(self, tmp_path):
        report = run_lint(tmp_path, dict(RPC_CONSISTENT),
                          rules=[RpcSurfaceRule()])
        assert report.findings == []

    def test_flags_every_drift_direction(self, tmp_path):
        files = dict(RPC_CONSISTENT)
        files["protocol.py"] = """\
            STORE_OPS = frozenset({"ping", "unused"})
            COLLECTION_OPS = frozenset({"get"})

            class Request:
                id: int
                ops: list = None
                new_key: str

            class Response:
                id: int
                results: list = None
            """
        files["remote.py"] = """\
            class RemoteShardStore:
                def ping(self):
                    return self._store_call("ping")

                def extra(self):
                    return self._store_call("extra")

            class RemoteCollection:
                def get(self, doc_id):
                    return self._one("get", doc_id)
            """
        report = run_lint(tmp_path, files, rules=[RpcSurfaceRule()])
        msgs = messages(report)
        assert any("`extra` absent from protocol.STORE_OPS" in m for m in msgs)
        assert any("allows `unused` but no remote client" in m for m in msgs)
        assert any("`unused` has no ShardWorker handler" in m for m in msgs)
        assert any("Request.new_key is a new wire key without a default" in m
                   for m in msgs)

    def test_getattr_fallback_resolves_against_server_classes(self, tmp_path):
        files = dict(RPC_CONSISTENT)
        files["protocol.py"] = """\
            STORE_OPS = frozenset({"ping", "checkpoint", "vanish"})
            COLLECTION_OPS = frozenset({"get"})
            """
        files["worker.py"] = """\
            class ShardWorker:
                def _execute_store(self, method, args, kwargs):
                    if method == "ping":
                        return {}
                    return getattr(self.store, method)(*args, **kwargs)

                def _execute_collection(self, name, method, args, kwargs):
                    if method == "get":
                        return None
                    raise RuntimeError(method)
            """
        files["store_impl.py"] = """\
            class DurableDocumentStore:
                def checkpoint(self):
                    return 0
            """
        files["remote.py"] = """\
            class RemoteShardStore:
                def ping(self):
                    return self._store_call("ping")

                def checkpoint(self):
                    return self._store_call("checkpoint")

                def vanish(self):
                    return self._store_call("vanish")

            class RemoteCollection:
                def get(self, doc_id):
                    return self._one("get", doc_id)
            """
        report = run_lint(tmp_path, files, rules=[RpcSurfaceRule()])
        msgs = messages(report)
        # checkpoint resolves via the DurableDocumentStore fallback; vanish
        # resolves nowhere.
        assert not any("checkpoint" in m for m in msgs)
        assert any("`vanish` resolves via getattr but no fallback class" in m
                   for m in msgs)


class TestErrorRehydration:
    FILES = {
        "errors.py": """\
            class ReproError(Exception):
                pass

            class KnownError(ReproError):
                pass
            """,
        "app.py": """\
            from errors import KnownError

            def handler(flag, exc):
                if flag:
                    raise KnownError("fine")
                raise SystemExit(3)

            def reraise(exc):
                raise exc

            def bad():
                raise MissingError("not registered")
            """,
    }

    def test_flags_unregistered_exception_only(self, tmp_path):
        report = run_lint(tmp_path, dict(self.FILES),
                          rules=[ErrorRehydrationRule()])
        assert len(report.findings) == 1
        assert "`raise MissingError`" in report.findings[0].message
        assert "repro.errors defines no" in report.findings[0].message

    def test_module_outside_rpc_scope_is_ignored(self, tmp_path):
        files = dict(self.FILES)
        files["offline.py"] = files.pop("app.py")
        report = run_lint(tmp_path, files, rules=[ErrorRehydrationRule()],
                          error_rule_modules=("app.py",))
        assert report.findings == []


class TestSpawnSafety:
    def test_flags_side_effects_in_import_closure(self, tmp_path):
        report = run_lint(tmp_path, {
            "worker.py": """\
                import helpers

                def worker_main():
                    import lazy_impure  # deferred: must NOT be followed
                """,
            "helpers.py": """\
                import deep

                LIMIT = 42                      # pure: fine
                NAMES = frozenset({"a", "b"})   # whitelisted call: fine
                """,
            "deep.py": """\
                from registry_mod import get_registry

                REGISTRY = get_registry()
                """,
            "lazy_impure.py": """\
                print("only imported lazily")
                """,
            "registry_mod.py": """\
                def get_registry():
                    return None
                """,
        }, rules=[SpawnSafetyRule()])
        msgs = messages(report)
        assert len(msgs) == 1
        assert "get_registry()" in msgs[0]
        assert "worker.py -> helpers.py -> deep.py" in msgs[0]
        assert "pins metrics" in report.findings[0].hint

    def test_package_init_in_closure_is_checked(self, tmp_path):
        report = run_lint(tmp_path, {
            "worker.py": "from pkg import mod\n",
            "pkg/__init__.py": "import atexit\natexit.register(print)\n",
            "pkg/mod.py": "VALUE = 1\n",
        }, rules=[SpawnSafetyRule()])
        assert len(report.findings) == 1
        assert "atexit.register" in report.findings[0].message
        assert report.findings[0].path == "pkg/__init__.py"

    def test_pure_closure_is_clean(self, tmp_path):
        report = run_lint(tmp_path, {
            "worker.py": """\
                import re
                from typing import TYPE_CHECKING

                import framing

                if TYPE_CHECKING:
                    from nonexistent import Whatever

                PATTERN = re.compile(r"x+")

                def worker_main():
                    return PATTERN

                if __name__ == "__main__":
                    worker_main()
                """,
            "framing.py": """\
                import struct
                from dataclasses import dataclass

                HEADER = struct.Struct(">I")

                @dataclass(frozen=True)
                class Frame:
                    payload: bytes

                    def size(self):
                        return len(self.payload)
                """,
        }, rules=[SpawnSafetyRule()])
        assert report.findings == []


class TestMetricDrift:
    def test_naming_conventions(self, tmp_path):
        report = run_lint(tmp_path, {"app.py": """\
            def setup(registry):
                registry.counter("repro_good_total")
                registry.histogram("repro_latency_seconds")
                registry.gauge("repro_depth_records")
                registry.counter("unprefixed_total")
                registry.counter("repro_missing_suffix")
                registry.gauge("repro_confused_total")
                registry.histogram("repro_no_unit")
            """}, rules=[MetricDriftRule()])
        msgs = messages(report)
        assert not any("repro_good_total" in m for m in msgs)
        assert not any("repro_latency_seconds" in m for m in msgs)
        assert not any("repro_depth_records" in m for m in msgs)
        assert any("lacks the `repro_` namespace prefix" in m for m in msgs)
        assert any("`repro_missing_suffix` is a counter but does not end "
                   "`_total`" in m for m in msgs)
        assert any("`repro_confused_total` is a gauge but ends `_total`" in m
                   for m in msgs)
        assert any("`repro_no_unit` (histogram) lacks a unit suffix" in m
                   for m in msgs)

    def test_readme_catalog_round_trip(self, tmp_path):
        readme = tmp_path / "README.md"
        readme.write_text(textwrap.dedent("""\
            # Fixture

            | series | type | labels | layer |
            |---|---|---|---|
            | `good_total` | counter | — | x |
            | `ghost_seconds` | histogram | — | x |
            """), encoding="utf-8")
        report = run_lint(tmp_path, {"app.py": """\
            def setup(registry):
                registry.counter("repro_good_total")
                registry.histogram("repro_uncataloged_seconds")
            """}, rules=[MetricDriftRule()], readme=readme)
        msgs = messages(report)
        assert any("`repro_uncataloged_seconds` is not in the README" in m
                   for m in msgs)
        assert any("lists `ghost_seconds` but no instrument" in m
                   for m in msgs)
        assert not any("good_total" in m for m in msgs)


class TestEngine:
    def test_noqa_suppression(self, tmp_path):
        files = {"app.py": """\
            import time

            def f(lock, other_lock, third_lock):
                with lock:
                    time.sleep(1)  # repro: noqa[lock-discipline]
                with other_lock:
                    time.sleep(1)  # repro: noqa
                with third_lock:
                    time.sleep(1)  # repro: noqa[metric-drift]
            """}
        report = run_lint(tmp_path, files, rules=[LockDisciplineRule()])
        # Targeted and blanket noqa suppress; a different rule id does not.
        assert len(report.findings) == 1
        assert len(report.suppressed) == 2

    def test_baseline_round_trip(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        files = {"app.py": """\
            import time

            def f(lock):
                with lock:
                    time.sleep(1)
            """}
        write_tree(tmp_path, files)
        config = AnalysisConfig(
            root=tmp_path, source_roots=(tmp_path,),
            baseline_path=baseline_path,
        )
        analyzer = Analyzer(config, rules=[LockDisciplineRule()])
        first = analyzer.run()
        assert len(first.findings) == 1

        analyzer.update_baseline()
        assert baseline_path.exists()
        second = analyzer.run()
        assert second.ok
        assert len(second.baselined) == 1

        # The baseline ratchets: a second identical-message violation in the
        # same file is NEW (multiset semantics), not absorbed.
        loaded = Baseline.load(baseline_path)
        finding = first.findings[0]
        new, known = loaded.split([finding, finding])
        assert len(known) == 1 and len(new) == 1

    def test_baseline_rejects_malformed_file(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("[]", encoding="utf-8")
        with pytest.raises(ConfigurationError):
            Baseline.load(path)
        path.write_text(json.dumps({"version": 1, "findings": [{}]}),
                        encoding="utf-8")
        with pytest.raises(ConfigurationError):
            Baseline.load(path)

    def test_baseline_ignores_line_drift(self):
        baseline = Baseline.from_findings([
            Finding(rule="r", path="p.py", line=10, message="m"),
        ])
        moved = Finding(rule="r", path="p.py", line=99, message="m")
        new, known = baseline.split([moved])
        assert new == [] and known == [moved]

    def test_parse_error_fails_the_run(self, tmp_path):
        report = run_lint(tmp_path, {"app.py": "def broken(:\n"},
                          rules=[LockDisciplineRule()])
        assert not report.ok
        assert report.parse_errors and report.parse_errors[0][0] == "app.py"


class TestCli:
    SEEDED = {"src/repro/seeded.py": """\
        import time

        def f(lock):
            with lock:
                time.sleep(1)
        """}

    def test_lint_fails_on_seeded_violation(self, tmp_path, capsys):
        write_tree(tmp_path, dict(self.SEEDED))
        assert main(["lint", "--root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "[lock-discipline]" in out
        assert "1 finding(s)" in out

    def test_json_format_and_update_baseline(self, tmp_path, capsys):
        write_tree(tmp_path, dict(self.SEEDED))
        assert main(["lint", "--root", str(tmp_path),
                     "--format", "json"]) == 1
        body = json.loads(capsys.readouterr().out)
        assert body["ok"] is False
        assert body["findings"][0]["rule"] == "lock-discipline"

        assert main(["lint", "--root", str(tmp_path),
                     "--update-baseline"]) == 0
        assert (tmp_path / "analysis-baseline.json").exists()
        assert main(["lint", "--root", str(tmp_path)]) == 0


class TestSelfCheck:
    def test_repo_tree_lints_clean_with_empty_baseline(self):
        config = default_config(REPO_ROOT)
        analyzer = Analyzer(config)
        report = analyzer.run(baseline=Baseline())  # force-empty baseline
        assert report.ok, report.render_pretty()

    def test_shipped_baseline_is_empty(self):
        baseline = Baseline.load(REPO_ROOT / "analysis-baseline.json")
        assert len(baseline) == 0

    def test_example_walkthrough_fires_every_rule(self):
        import os
        import subprocess
        import sys

        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "examples" / "lint_findings.py")],
            capture_output=True, text=True, env=env,
        )
        assert proc.returncode == 1, proc.stdout + proc.stderr
        for rule in ("lock-discipline", "rpc-surface", "error-rehydration",
                     "spawn-safety", "metric-drift"):
            assert f"[{rule}]" in proc.stdout
