"""CLI tests: each subcommand exercised through ``repro.cli.main``."""

import json

import pytest

from repro.cli import main
from repro.ml import FeaturePipeline


@pytest.fixture(scope="module")
def alarm_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "alarms.jsonl"
    code = main([
        "generate", "--count", "1200", "--devices", "120",
        "--seed", "5", "--out", str(path),
    ])
    assert code == 0
    return path


@pytest.fixture(scope="module")
def model_file(tmp_path_factory, alarm_file):
    path = tmp_path_factory.mktemp("cli") / "model.pkl"
    code = main([
        "train", "--alarms", str(alarm_file), "--model", str(path),
        "--algorithm", "lr",
    ])
    assert code == 0
    return path


class TestGenerate:
    def test_writes_valid_jsonl(self, alarm_file):
        lines = alarm_file.read_text().strip().splitlines()
        assert len(lines) == 1200
        doc = json.loads(lines[0])
        assert {"device_address", "zip_code", "timestamp", "alarm_type",
                "duration_seconds"} <= set(doc)

    def test_deterministic_for_seed(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        main(["generate", "--count", "50", "--seed", "9", "--out", str(a)])
        main(["generate", "--count", "50", "--seed", "9", "--out", str(b)])
        assert a.read_text() == b.read_text()


class TestTrain:
    def test_saves_loadable_pipeline(self, model_file):
        pipeline = FeaturePipeline.load(model_file)
        assert set(pipeline.classes_) == {True, False}

    def test_training_prints_accuracy(self, capsys, alarm_file, tmp_path):
        main(["train", "--alarms", str(alarm_file),
              "--model", str(tmp_path / "m.pkl"), "--algorithm", "lr"])
        out = capsys.readouterr().out
        assert "training accuracy" in out

    def test_empty_input_fails(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        code = main(["train", "--alarms", str(empty),
                     "--model", str(tmp_path / "m.pkl")])
        assert code == 1


class TestVerify:
    def test_prints_verifications_and_summary(self, capsys, alarm_file, model_file):
        code = main(["verify", "--model", str(model_file),
                     "--alarms", str(alarm_file), "--limit", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "alarms verified" in out
        assert "p_false=" in out


class TestStreamDemo:
    def test_runs_end_to_end(self, capsys):
        code = main(["stream-demo", "--count", "600", "--algorithm", "lr"])
        assert code == 0
        out = capsys.readouterr().out
        assert "verified 600 alarms" in out
        assert "ml" in out


class TestIncidents:
    def test_prints_corpus_stats_and_writes_jsonl(self, capsys, tmp_path):
        out_path = tmp_path / "incidents.jsonl"
        code = main(["incidents", "--count", "300", "--out", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "languages:" in out
        lines = out_path.read_text().strip().splitlines()
        assert lines
        doc = json.loads(lines[0])
        assert {"text", "topics", "language", "location"} <= set(doc)


class TestSecurityMap:
    def test_renders_grid(self, capsys):
        code = main(["security-map", "--count", "300",
                     "--width", "30", "--height", "10"])
        assert code == 0
        out = capsys.readouterr().out
        grid_lines = [l for l in out.splitlines() if set(l) <= {".", "o", "#"} and l]
        assert len(grid_lines) == 10
        assert "cells:" in out


class TestLoadtest:
    def test_list_prints_library(self, capsys):
        code = main(["loadtest", "--scenario", "list"])
        assert code == 0
        out = capsys.readouterr().out.splitlines()
        assert "storm" in out and "steady" in out

    def test_unknown_scenario_fails_cleanly(self, capsys):
        code = main(["loadtest", "--scenario", "quiet-sunday"])
        assert code == 2
        assert "neither a library scenario nor a file" in capsys.readouterr().err

    def test_invalid_speedup_fails_cleanly(self, capsys):
        code = main(["loadtest", "--scenario", "steady", "--speedup", "0"])
        assert code == 2
        assert "speedup" in capsys.readouterr().err

    def test_negative_seed_fails_cleanly(self, capsys):
        code = main(["loadtest", "--scenario", "steady", "--seed", "-1"])
        assert code == 2
        assert "seed must be >= 0" in capsys.readouterr().err

    def test_scenario_file_runs_end_to_end(self, capsys, tmp_path):
        from repro.workload import ConstantRate, DatasetSpec, Scenario
        spec = Scenario(
            name="tiny", arrivals=ConstantRate(rate=2.0), duration=30.0,
            dataset=DatasetSpec(num_devices=50, train_alarms=200,
                                preload_history=0),
        )
        path = tmp_path / "tiny.json"
        path.write_text(spec.to_json(), encoding="utf-8")
        out_path = tmp_path / "dump.json"
        code = main(["loadtest", "--scenario", str(path),
                     "--seed", "3", "--speedup", "3000",
                     "--out", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "scheduled 60 events; sent 60 records" in out
        assert "p50/p95/p99" in out
        assert "verification-rate trend" in out
        # The dumped spec carries the seed override and replays identically.
        dumped = Scenario.from_file(out_path)
        assert dumped.seed == 3
        code = main(["loadtest", "--scenario", str(out_path),
                     "--speedup", "3000"])
        assert code == 0
        assert "scheduled 60 events; sent 60 records" in capsys.readouterr().out

    def test_shards_and_consumers_flags_run_cluster_mode(self, capsys, tmp_path):
        from repro.workload import ConstantRate, DatasetSpec, Scenario
        spec = Scenario(
            name="tiny-cluster", arrivals=ConstantRate(rate=2.0), duration=30.0,
            dataset=DatasetSpec(num_devices=50, train_alarms=200,
                                preload_history=0),
        )
        path = tmp_path / "tiny.json"
        path.write_text(spec.to_json(), encoding="utf-8")
        code = main(["loadtest", "--scenario", str(path), "--speedup", "3000",
                     "--shards", "2", "--consumers", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "[2 store shards, 2 consumers]" in out
        assert "scheduled 60 events; sent 60 records" in out
        assert "rebalances" in out

    def test_shard_outage_without_sharded_durable_fails_cleanly(self, capsys, tmp_path):
        from repro.workload import (
            ConstantRate, DatasetSpec, FaultInjection, Scenario,
        )
        spec = Scenario(
            name="needs-shards", arrivals=ConstantRate(rate=2.0), duration=30.0,
            dataset=DatasetSpec(num_devices=50, train_alarms=200,
                                preload_history=0),
            faults=(FaultInjection(kind="shard_outage", start=10.0, end=11.0),),
        )
        path = tmp_path / "outage.json"
        path.write_text(spec.to_json(), encoding="utf-8")
        code = main(["loadtest", "--scenario", str(path)])
        assert code == 2
        assert "shard_outage" in capsys.readouterr().err

    def test_durable_flag_runs_crash_recovery_and_prints_stats(self, capsys, tmp_path):
        """--durable DIR: the scenario runs against the durable pipeline;
        with no process_crash fault in the spec one is injected mid-run,
        and the recovery statistics are printed."""
        from repro.workload import ConstantRate, DatasetSpec, Scenario
        spec = Scenario(
            name="tiny-durable", arrivals=ConstantRate(rate=4.0), duration=30.0,
            dataset=DatasetSpec(num_devices=50, train_alarms=200,
                                preload_history=0),
        )
        path = tmp_path / "tiny.json"
        path.write_text(spec.to_json(), encoding="utf-8")
        durable_dir = tmp_path / "pipeline"
        code = main(["loadtest", "--scenario", str(path),
                     "--speedup", "3000", "--durable", str(durable_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "durable pipeline at" in out
        assert "120 unique verification documents" in out
        assert "crash 1: recovered" in out
        # The durable state is really on disk.
        assert (durable_dir / "broker" / "topics.json").exists()
        assert (durable_dir / "store" / "wal").is_dir()

    def test_durable_out_dump_replays_standalone(self, capsys, tmp_path):
        """--out under --durable must dump the original spec, not the one
        carrying the auto-injected crash fault (which cannot replay
        without --durable)."""
        from repro.workload import ConstantRate, DatasetSpec, Scenario
        spec = Scenario(
            name="dumpable", arrivals=ConstantRate(rate=2.0), duration=30.0,
            dataset=DatasetSpec(num_devices=50, train_alarms=200,
                                preload_history=0),
        )
        path = tmp_path / "in.json"
        path.write_text(spec.to_json(), encoding="utf-8")
        out_path = tmp_path / "out.json"
        code = main(["loadtest", "--scenario", str(path), "--speedup", "3000",
                     "--durable", str(tmp_path / "d"), "--out", str(out_path)])
        assert code == 0
        capsys.readouterr()
        dumped = Scenario.from_file(out_path)
        assert dumped.faults == ()
        code = main(["loadtest", "--scenario", str(out_path), "--speedup", "3000"])
        assert code == 0, "dumped spec must replay without --durable"
        capsys.readouterr()

    def test_process_crash_without_durable_fails_cleanly(self, capsys, tmp_path):
        from repro.workload import ConstantRate, DatasetSpec, FaultInjection, Scenario
        spec = Scenario(
            name="crashy", arrivals=ConstantRate(rate=2.0), duration=30.0,
            dataset=DatasetSpec(num_devices=50, train_alarms=200,
                                preload_history=0),
            faults=(FaultInjection(kind="process_crash", start=10.0, end=11.0),),
        )
        path = tmp_path / "crashy.json"
        path.write_text(spec.to_json(), encoding="utf-8")
        code = main(["loadtest", "--scenario", str(path), "--speedup", "3000"])
        assert code == 2
        assert "durable" in capsys.readouterr().err


class TestMetrics:
    def _run_loadtest_with_metrics(self, tmp_path):
        from repro.workload import ConstantRate, DatasetSpec, Scenario
        spec = Scenario(
            name="tiny-metrics", arrivals=ConstantRate(rate=4.0), duration=30.0,
            dataset=DatasetSpec(num_devices=50, train_alarms=200,
                                preload_history=0),
        )
        path = tmp_path / "tiny.json"
        path.write_text(spec.to_json(), encoding="utf-8")
        snapshot_path = tmp_path / "metrics.json"
        code = main(["loadtest", "--scenario", str(path), "--speedup", "3000",
                     "--metrics-out", str(snapshot_path)])
        assert code == 0
        return snapshot_path

    def test_loadtest_metrics_out_writes_snapshot(self, capsys, tmp_path):
        snapshot_path = self._run_loadtest_with_metrics(tmp_path)
        out = capsys.readouterr().out
        assert "wrote metrics snapshot to" in out
        assert "produce window" in out
        assert "consume window" in out
        snapshot = json.loads(snapshot_path.read_text())
        assert snapshot["schema"] == "repro.metrics/v1"
        broker_hist = snapshot["histograms"]["repro_broker_append_batch_records"]
        assert broker_hist["count"] > 0

    def test_metrics_command_renders_snapshot(self, capsys, tmp_path):
        snapshot_path = self._run_loadtest_with_metrics(tmp_path)
        capsys.readouterr()
        assert main(["metrics", str(snapshot_path)]) == 0
        pretty = capsys.readouterr().out
        assert "histograms" in pretty
        assert "repro_broker_append_batch_records" in pretty
        assert main(["metrics", str(snapshot_path),
                     "--format", "prometheus"]) == 0
        prom = capsys.readouterr().out
        assert "# TYPE repro_broker_append_batch_records histogram" in prom
        assert main(["metrics", str(snapshot_path), "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out)["schema"] == "repro.metrics/v1"

    def test_metrics_command_missing_file_fails_cleanly(self, capsys, tmp_path):
        code = main(["metrics", str(tmp_path / "absent.json")])
        assert code == 2
        assert "cannot read snapshot" in capsys.readouterr().err


class TestParser:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
