"""Group coordinator tests: dynamic membership, generation fencing,
rebalance handover semantics, and streaming-context integration."""

import pytest

from repro.cluster import GroupCoordinator
from repro.errors import FencedGenerationError, RebalanceError
from repro.streaming import Broker, Consumer, Producer, StreamingContext


@pytest.fixture
def broker():
    b = Broker()
    b.create_topic("alarms", num_partitions=8)
    return b


def fill(broker, n, topic="alarms"):
    Producer(broker).send_many(topic, [{"i": i} for i in range(n)],
                               key_fn=lambda v: str(v["i"]))


class TestMembership:
    def test_join_deals_partitions_disjoint_and_complete(self, broker):
        coordinator = GroupCoordinator(broker, "alarms", "g")
        consumers = {name: Consumer(broker, "g") for name in ("a", "b", "c")}
        for name, consumer in consumers.items():
            coordinator.join(name, consumer)
        assignments = coordinator.assignments()
        dealt = [tp for share in assignments.values() for tp in share]
        assert sorted(dealt) == sorted(broker.partitions_for("alarms"))
        assert len(dealt) == len(set(dealt))
        for name, consumer in consumers.items():
            assert consumer.assignment() == sorted(assignments[name])

    def test_every_membership_change_bumps_the_generation(self, broker):
        coordinator = GroupCoordinator(broker, "alarms", "g")
        a, b = Consumer(broker, "g"), Consumer(broker, "g")
        assert coordinator.join("a", a) == 1
        assert coordinator.join("b", b) == 2
        assert coordinator.leave("b") == 3
        assert coordinator.generation == 3
        assert broker.group_generation("g") == 3
        assert a.generation == 3
        assert a.assignment() == sorted(broker.partitions_for("alarms"))

    def test_duplicate_join_and_unknown_leave_raise(self, broker):
        coordinator = GroupCoordinator(broker, "alarms", "g")
        coordinator.join("a", Consumer(broker, "g"))
        with pytest.raises(RebalanceError):
            coordinator.join("a", Consumer(broker, "g"))
        with pytest.raises(RebalanceError):
            coordinator.leave("ghost")

    def test_consumer_from_another_group_is_rejected(self, broker):
        coordinator = GroupCoordinator(broker, "alarms", "g")
        with pytest.raises(RebalanceError):
            coordinator.join("a", Consumer(broker, "other-group"))


class TestGenerationFencing:
    def test_zombie_commit_is_fenced(self, broker):
        fill(broker, 40)
        coordinator = GroupCoordinator(broker, "alarms", "g")
        zombie = Consumer(broker, "g")
        coordinator.join("zombie", zombie)
        zombie.poll(100)
        zombie.commit()  # current generation: fine

        survivor = Consumer(broker, "g")
        coordinator.join("survivor", survivor)
        coordinator.leave("zombie")  # zombie keeps its stale generation
        with pytest.raises(FencedGenerationError):
            zombie.commit()

    def test_fenced_commit_changes_nothing(self, broker):
        fill(broker, 16)
        coordinator = GroupCoordinator(broker, "alarms", "g")
        old = Consumer(broker, "g")
        coordinator.join("old", old)
        old.poll(100)
        new = Consumer(broker, "g")
        coordinator.join("new", new)
        coordinator.leave("old")
        committed_before = {
            tp: broker.committed("g", tp) for tp in broker.partitions_for("alarms")
        }
        with pytest.raises(FencedGenerationError):
            broker.commit("g", {tp: 1 for tp in committed_before}, generation=1)
        committed_after = {
            tp: broker.committed("g", tp) for tp in broker.partitions_for("alarms")
        }
        assert committed_after == committed_before

    def test_unfenced_groups_keep_static_semantics(self, broker):
        fill(broker, 8)
        consumer = Consumer(broker, "static-group")
        consumer.subscribe("alarms")
        consumer.poll(100)
        consumer.commit()  # generation=None on an unfenced group: fine

    def test_fence_must_move_forward(self, broker):
        broker.fence_group("g", 3)
        with pytest.raises(RebalanceError):
            broker.fence_group("g", 3)
        with pytest.raises(RebalanceError):
            broker.fence_group("g", 2)
        broker.fence_group("g", 4)
        assert broker.group_generation("g") == 4

    def test_commit_with_newer_generation_is_accepted(self, broker):
        fill(broker, 4)
        broker.fence_group("g", 2)
        tp = broker.partitions_for("alarms")[0]
        broker.commit("g", {tp: 0}, generation=5)
        assert broker.committed("g", tp) == 0


class TestRebalanceHandover:
    def test_handover_resumes_from_committed_offsets(self, broker):
        """A new member picks up each partition exactly where the previous
        owner committed — the uncommitted tail is re-read, never skipped."""
        fill(broker, 40)
        coordinator = GroupCoordinator(broker, "alarms", "g")
        first = Consumer(broker, "g")
        coordinator.join("first", first)
        first_values = first.poll_values(20)
        first.commit()
        first.poll_values(10)  # processed but NOT committed

        second = Consumer(broker, "g")
        coordinator.join("second", second)
        coordinator.leave("first")
        second_values = list(second.stream_values(max_records=100))
        seen = sorted(v["i"] for v in first_values + second_values)
        assert seen == list(range(40))  # the uncommitted tail was re-read

    def test_two_members_consume_everything_exactly_once(self, broker):
        fill(broker, 60)
        coordinator = GroupCoordinator(broker, "alarms", "g")
        a, b = Consumer(broker, "g"), Consumer(broker, "g")
        coordinator.join("a", a)
        coordinator.join("b", b)
        values_a = list(a.stream_values(max_records=200))
        values_b = list(b.stream_values(max_records=200))
        seen = sorted(v["i"] for v in values_a + values_b)
        assert seen == list(range(60))
        assert values_a and values_b  # both shares are non-empty


class TestStreamingContextIntegration:
    def test_contexts_join_instead_of_subscribing(self, broker):
        fill(broker, 30)
        coordinator = GroupCoordinator(broker, "alarms", "g")
        first = StreamingContext(broker, "alarms", "g",
                                 coordinator=coordinator, member_id="one")
        second = StreamingContext(broker, "alarms", "g",
                                  coordinator=coordinator, member_id="two")
        assert coordinator.members() == ["one", "two"]
        assert len(first.consumer.assignment()) == 4
        assert len(second.consumer.assignment()) == 4

        seen = []
        for context in (first, second):
            context.process_available(
                lambda batch: seen.extend(batch.dataset.collect())
            )
        assert sorted(doc["i"] for doc in seen) == list(range(30))
