"""Sharded store tests: ring placement, scatter-gather equivalence,
routing, global uniqueness via shard keys, and per-shard durability."""

import random

import pytest

from repro.cluster import HashRing, ShardedDocumentStore
from repro.durability import DurableDocumentStore
from repro.durability.recovery import RecoveryManager
from repro.errors import ConfigurationError, DuplicateKeyError, IndexError_
from repro.storage import DocumentStore


class TestHashRing:
    def test_placement_is_deterministic_across_instances(self):
        a, b = HashRing(5), HashRing(5)
        keys = [f"dev-{i}" for i in range(500)]
        assert [a.shard_for(k) for k in keys] == [b.shard_for(k) for k in keys]

    def test_spread_is_roughly_balanced(self):
        ring = HashRing(4)
        spread = ring.spread([f"dev-{i}" for i in range(8000)])
        assert set(spread) == {0, 1, 2, 3}
        for count in spread.values():
            assert 0.5 * 2000 < count < 1.5 * 2000

    def test_resizing_moves_a_minority_of_keys(self):
        keys = [f"dev-{i}" for i in range(2000)]
        before = [HashRing(4).shard_for(k) for k in keys]
        after = [HashRing(5).shard_for(k) for k in keys]
        moved = sum(1 for b, a in zip(before, after) if b != a)
        # Consistent hashing: ~1/5 of keys move to the new shard; modulo
        # hashing would reshuffle ~80%.
        assert moved < len(keys) * 0.45

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            HashRing(0)
        with pytest.raises(ConfigurationError):
            HashRing(2, vnodes=0)


def make_docs(n=400, seed=3):
    rng = random.Random(seed)
    return [
        {
            "device_address": f"d{i % 23}",
            "ts": rng.random() * 100,
            "kind": rng.choice(["fire", "intrusion", "technical"]),
            "i": i,
        }
        for i in range(n)
    ]


@pytest.fixture
def pair():
    """The same documents in a 3-shard store and a single store."""
    sharded = ShardedDocumentStore(
        num_shards=3, shard_keys={"alarms": "device_address"}
    )
    single = DocumentStore()
    docs = make_docs()
    for store in (sharded, single):
        coll = store.collection("alarms")
        coll.create_index("device_address", kind="hash")
        coll.create_index("ts", kind="sorted")
        coll.insert_many(docs)
    return sharded, single


class TestScatterGatherEquivalence:
    def test_count_is_sum_of_covered_shard_counts(self, pair):
        sharded, single = pair
        for filt in ({}, {"device_address": "d3"}, {"ts": {"$gte": 50.0}},
                     {"kind": "fire"}):
            assert sharded.collection("alarms").count(filt) == \
                single.collection("alarms").count(filt)
        # the equality count is covered (pure index work) on every shard
        for shard in sharded.shards:
            plan = shard.collection("alarms").explain({"device_address": "d3"})
            assert plan["covered"] is True

    @pytest.mark.parametrize("sort", ["ts", ("ts", -1)])
    @pytest.mark.parametrize("limit,skip", [(None, 0), (25, 0), (10, 5)])
    def test_sorted_find_merges_like_a_single_store(self, pair, sort, limit, skip):
        sharded, single = pair
        filt = {"kind": {"$in": ["fire", "intrusion"]}}
        got = sharded.collection("alarms").find(
            filt, sort=sort, limit=limit, skip=skip
        )
        want = single.collection("alarms").find(
            filt, sort=sort, limit=limit, skip=skip
        )
        assert [d["i"] for d in got] == [d["i"] for d in want]

    def test_unsorted_find_respects_global_limit(self, pair):
        sharded, _single = pair
        got = sharded.collection("alarms").find({"ts": {"$lt": 50.0}}, limit=7)
        assert len(got) == 7

    def test_distinct_unions_shards(self, pair):
        sharded, single = pair
        assert sharded.collection("alarms").distinct("device_address") == \
            single.collection("alarms").distinct("device_address")

    def test_aggregate_group_matches_single_store(self, pair):
        sharded, single = pair
        pipeline = [
            {"$match": {"ts": {"$lt": 60.0}}},
            {"$group": {"_id": "$kind", "n": {"$sum": 1}, "hi": {"$max": "$ts"}}},
        ]
        got = {r["_id"]: (r["n"], r["hi"]) for r in sharded.aggregate("alarms", pipeline)}
        want = {r["_id"]: (r["n"], r["hi"]) for r in single.aggregate("alarms", pipeline)}
        assert got == want

    def test_aggregate_pushdown_prefix_with_sort_limit(self, pair):
        sharded, single = pair
        pipeline = [
            {"$match": {"kind": "fire"}},
            {"$sort": {"ts": -1}},
            {"$limit": 5},
            {"$project": {"ts": 1, "i": 1}},
        ]
        got = sharded.aggregate("alarms", pipeline)
        want = single.aggregate("alarms", pipeline)
        assert [r["i"] for r in got] == [r["i"] for r in want]

    def test_update_and_delete_fan_out(self, pair):
        sharded, single = pair
        for store in pair:
            coll = store.collection("alarms")
            assert coll.update_many({"kind": "fire"}, {"$set": {"flag": 1}}) > 0
            assert coll.delete_many({"ts": {"$gte": 90.0}}) >= 0
        assert sharded.collection("alarms").count({"flag": 1}) == \
            single.collection("alarms").count({"flag": 1})
        assert len(sharded.collection("alarms")) == len(single.collection("alarms"))


class TestRouting:
    def test_shard_key_equality_routes_to_one_shard(self, pair):
        sharded, _ = pair
        plan = sharded.collection("alarms").explain({"device_address": "d7"})
        assert plan["mode"] == "routed"
        assert len(plan["shards"]) == 1

    def test_shard_key_in_routes_to_member_owners(self, pair):
        sharded, _ = pair
        plan = sharded.collection("alarms").explain(
            {"device_address": {"$in": ["d1", "d2", "d3", "d4"]}}
        )
        assert plan["mode"] == "routed"
        assert 1 <= len(plan["shards"]) <= 3

    def test_non_shard_key_filters_fan_out(self, pair):
        sharded, _ = pair
        plan = sharded.collection("alarms").explain({"kind": "fire"})
        assert plan["mode"] == "fanout"
        assert plan["shards"] == [0, 1, 2]

    def test_routed_reads_only_touch_the_owning_shard(self, pair):
        sharded, _ = pair
        before = [s.collection("alarms").index_hits + s.collection("alarms").scans
                  for s in sharded.shards]
        sharded.collection("alarms").find({"device_address": "d7"})
        after = [s.collection("alarms").index_hits + s.collection("alarms").scans
                 for s in sharded.shards]
        assert sum(a - b for a, b in zip(after, before)) == 1

    def test_documents_without_shard_key_route_by_content(self):
        store = ShardedDocumentStore(num_shards=3, shard_keys={"c": "missing"})
        coll = store.collection("c")
        coll.insert_one({"x": 1})
        coll.insert_one({"x": 1})  # identical content -> same shard
        sizes = [len(s.collection("c")) for s in store.shards]
        assert sorted(sizes, reverse=True)[0] == 2

    def test_array_shard_key_degrades_routing_not_results(self):
        """An array shard-key value matches equality probes on any element
        but lives on one shard — inserting one must permanently disable
        routed reads so those probes keep matching (fan-out finds it)."""
        store = ShardedDocumentStore(num_shards=3, shard_keys={"c": "k"})
        coll = store.collection("c")
        coll.insert_one({"k": "scalar", "n": 0})
        assert coll.explain({"k": "scalar"})["mode"] == "routed"
        coll.insert_one({"k": ["X", "Y"], "n": 1})
        assert coll.explain({"k": "X"})["mode"] == "fanout"
        single = DocumentStore()
        single.collection("c").insert_many([{"k": "scalar", "n": 0},
                                            {"k": ["X", "Y"], "n": 1}])
        for probe in ({"k": "X"}, {"k": "Y"}, {"k": "scalar"},
                      {"k": {"$in": ["X", "missing"]}}):
            assert [d["n"] for d in coll.find(probe)] == \
                [d["n"] for d in single.collection("c").find(probe)]

    def test_shard_key_update_degrades_routing_not_results(self):
        """Rewriting the shard key in place leaves the document on its old
        shard; routed probes for the new value must still find it."""
        store = ShardedDocumentStore(num_shards=3, shard_keys={"c": "k"})
        coll = store.collection("c")
        coll.insert_many([{"k": f"key-{i}", "n": i} for i in range(30)])
        assert coll.explain({"k": "key-1"})["mode"] == "routed"
        coll.update_many({"k": "key-1"}, {"$set": {"k": "renamed"}})
        assert coll.explain({"k": "renamed"})["mode"] == "fanout"
        assert [d["n"] for d in coll.find({"k": "renamed"})] == [1]
        assert coll.count({"k": "key-1"}) == 0

    def test_numeric_family_routes_together(self):
        """1, 1.0 and True compare equal in filters, so they must route to
        one shard — else an int-valued probe misses a float-valued doc."""
        ring = HashRing(8)
        assert ring.shard_for(1) == ring.shard_for(1.0) == ring.shard_for(True)
        assert ring.shard_for(0) == ring.shard_for(0.0) == ring.shard_for(False)
        store = ShardedDocumentStore(num_shards=4, shard_keys={"c": "k"})
        coll = store.collection("c")
        coll.insert_one({"k": 1, "n": "int"})
        assert [d["n"] for d in coll.find({"k": 1.0})] == ["int"]

    def test_shard_key_routing_is_stable_for_equal_keys(self):
        store = ShardedDocumentStore(num_shards=4, shard_keys={"v": "uid"})
        coll = store.collection("v")
        for i in range(50):
            coll.insert_one({"uid": f"u-{i % 10}", "n": i})
        # every uid's documents live on exactly one shard
        for uid in {f"u-{i}" for i in range(10)}:
            holders = [
                s for s in store.shards
                if s.collection("v").count({"uid": uid})
            ]
            assert len(holders) == 1


class TestUniqueIndexes:
    def test_shard_key_unique_index_is_globally_unique(self):
        store = ShardedDocumentStore(num_shards=4, shard_keys={"v": "uid"})
        coll = store.collection("v")
        coll.create_index("uid", kind="hash", unique=True)
        coll.insert_many([{"uid": f"u{i}"} for i in range(40)])
        with pytest.raises(DuplicateKeyError):
            coll.insert_one({"uid": "u7"})
        assert len(coll) == 40

    def test_ddl_fans_out_to_every_shard(self):
        store = ShardedDocumentStore(num_shards=3)
        coll = store.collection("c")
        coll.create_index("f", kind="sorted")
        assert coll.index_fields() == ["f"]
        for shard in store.shards:
            assert shard.collection("c").index_fields() == ["f"]
        coll.drop_index("f")
        with pytest.raises(IndexError_):
            coll.index_spec("f")

    def test_collection_names_and_drop(self):
        store = ShardedDocumentStore(num_shards=2)
        store.collection("a").insert_one({"x": 1})
        store.collection("b")
        assert store.collection_names() == ["a", "b"]
        store.drop_collection("a")
        assert store.collection_names() == ["b"]


class TestPerShardDurability:
    def test_durable_shards_recover_independently(self, tmp_path):
        manager = RecoveryManager(
            tmp_path, store_shards=3, shard_keys={"alarms": "device_address"}
        )
        manager.recover()
        coll = manager.store.collection("alarms")
        coll.create_index("device_address", kind="hash")
        coll.insert_many(make_docs(120))
        total = len(coll)
        manager.crash()

        recovered = RecoveryManager(
            tmp_path, store_shards=3, shard_keys={"alarms": "device_address"}
        )
        report = recovered.recover()
        assert len(recovered.store.collection("alarms")) == total
        assert report.store_ops_replayed > 0
        # every shard directory holds its own WAL root
        for i in range(3):
            assert recovered.shard_directory(i).exists()
        recovered.close()

    def test_restart_shard_is_a_single_shard_outage(self, tmp_path):
        shards = [
            DurableDocumentStore(tmp_path / f"shard-{i}") for i in range(3)
        ]
        store = ShardedDocumentStore(
            stores=shards, shard_keys={"alarms": "device_address"},
            reopen=lambda i: DurableDocumentStore(tmp_path / f"shard-{i}"),
        )
        coll = store.collection("alarms")
        coll.insert_many(make_docs(90))
        total = len(coll)
        by_shard = [len(s.collection("alarms")) for s in store.shards]
        victim = max(range(3), key=lambda i: by_shard[i])

        stats = store.restart_shard(victim)
        assert stats["shard"] == victim
        assert stats["ops_replayed"] > 0 or stats["snapshot_documents"] > 0
        # nothing lost: acknowledged writes were fsynced per group commit
        assert len(coll) == total
        # the other shards were never touched
        for i in range(3):
            if i != victim:
                assert store.shards[i] is shards[i]
        store.close()

    def test_restart_without_reopen_factory_is_rejected(self):
        store = ShardedDocumentStore(num_shards=2)
        with pytest.raises(ConfigurationError):
            store.restart_shard(0)
        with pytest.raises(ConfigurationError):
            ShardedDocumentStore(num_shards=2, reopen=lambda i: None).restart_shard(5)
