"""Alarm record and duration-labeling tests."""

import datetime as dt

import pytest

from repro.core import (
    Alarm,
    DEFAULT_DELTA_T,
    LabeledAlarm,
    delta_t_sweep,
    label_alarms,
    label_by_duration,
)
from repro.errors import ConfigurationError


def make_alarm(**overrides):
    defaults = dict(
        device_address="00:1A:00:01",
        zip_code="8001",
        timestamp=dt.datetime(2016, 1, 15, 14, 30, tzinfo=dt.timezone.utc).timestamp(),
        alarm_type="intrusion",
        property_type="residential",
        duration_seconds=30.0,
        sensor_type="motion",
        software_version="2.0",
        locality="Zurichberg",
    )
    defaults.update(overrides)
    return Alarm(**defaults)


class TestAlarm:
    def test_time_derivations(self):
        alarm = make_alarm()
        assert alarm.hour_of_day == 14
        assert alarm.day_of_week == 4  # 2016-01-15 was a Friday

    def test_document_round_trip(self):
        alarm = make_alarm(extras={"battery": "low"})
        restored = Alarm.from_document(alarm.to_document())
        assert restored == alarm

    def test_document_round_trip_ignores_store_id(self):
        doc = make_alarm().to_document()
        doc["_id"] = 42
        assert Alarm.from_document(doc) == make_alarm()

    def test_document_defaults_for_optional_fields(self):
        doc = make_alarm().to_document()
        del doc["sensor_type"], doc["software_version"], doc["locality"]
        restored = Alarm.from_document(doc)
        assert restored.sensor_type == "generic"
        assert restored.software_version == "1.0"


class TestLabeledAlarm:
    def test_features_with_and_without_extras(self):
        labeled = LabeledAlarm(
            location="8001", property_type="residential", alarm_type="fire",
            hour_of_day=9, day_of_week=2, is_false=True,
            extra_features={"sensor_type": "smoke"},
        )
        assert "sensor_type" in labeled.features()
        assert "sensor_type" not in labeled.features(include_extras=False)

    def test_features_with_risk(self):
        labeled = LabeledAlarm("8001", "residential", "fire", 9, 2, False)
        features = labeled.features(risk=0.25)
        assert features["risk"] == 0.25

    def test_label_string(self):
        assert LabeledAlarm("z", "p", "a", 0, 0, True).label == "false"
        assert LabeledAlarm("z", "p", "a", 0, 0, False).label == "true"


class TestLabeling:
    def test_short_duration_is_false_alarm(self):
        assert label_by_duration(10.0, delta_t_seconds=60.0) is True

    def test_long_duration_is_true_alarm(self):
        assert label_by_duration(600.0, delta_t_seconds=60.0) is False

    def test_boundary_is_true_alarm(self):
        assert label_by_duration(60.0, delta_t_seconds=60.0) is False

    def test_default_delta_t_is_one_minute(self):
        assert DEFAULT_DELTA_T == 60.0

    def test_invalid_inputs_raise(self):
        with pytest.raises(ConfigurationError):
            label_by_duration(10.0, delta_t_seconds=0.0)
        with pytest.raises(ConfigurationError):
            label_by_duration(-5.0)

    def test_label_alarms_carries_features(self):
        labeled = label_alarms([make_alarm(duration_seconds=5.0)], 60.0)
        assert labeled[0].is_false is True
        assert labeled[0].location == "8001"
        assert labeled[0].extra_features["software_version"] == "2.0"

    def test_larger_delta_t_labels_more_false(self):
        alarms = [make_alarm(duration_seconds=d) for d in (5, 90, 400, 1200)]
        small = sum(l.is_false for l in label_alarms(alarms, 60.0))
        large = sum(l.is_false for l in label_alarms(alarms, 600.0))
        assert small == 1 and large == 3

    def test_delta_t_sweep_default_grid(self):
        assert delta_t_sweep() == [60.0 * m for m in range(1, 11)]

    def test_delta_t_sweep_validation(self):
        with pytest.raises(ConfigurationError):
            delta_t_sweep([0])
