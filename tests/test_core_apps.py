"""Producer/consumer application tests (configuration and failure paths)."""

import pytest

from repro.core import (
    AlarmHistory,
    ConsumerApplication,
    ProducerApplication,
    VerificationService,
    label_alarms,
)
from repro.datasets import SitasysGenerator
from repro.errors import ConfigurationError
from repro.ml import FeaturePipeline, LogisticRegression
from repro.streaming import Broker

CATS = ["location", "property_type", "alarm_type", "hour_of_day",
        "day_of_week", "sensor_type", "software_version"]


@pytest.fixture(scope="module")
def alarms():
    return SitasysGenerator(num_devices=80, seed=11).generate(800)


@pytest.fixture(scope="module")
def service(alarms):
    labeled = label_alarms(alarms[:400], 60.0)
    pipe = FeaturePipeline(LogisticRegression(max_iter=60), CATS)
    pipe.fit([l.features() for l in labeled], [l.is_false for l in labeled])
    return VerificationService(pipe)


@pytest.fixture
def broker():
    b = Broker()
    b.create_topic("alarms", num_partitions=3)
    return b


class TestProducerApplication:
    def test_run_sends_requested_count(self, broker, alarms):
        app = ProducerApplication(broker, "alarms", alarms, seed=1)
        report = app.run(250)
        assert report.records_sent == 250
        assert broker.total_records("alarms") == 250
        assert report.throughput > 0

    def test_multithreaded_run_conserves_count(self, broker, alarms):
        app = ProducerApplication(broker, "alarms", alarms, seed=1)
        report = app.run(301, num_threads=3)
        assert report.records_sent == 301
        assert broker.total_records("alarms") == 301
        assert report.threads == 3

    def test_keying_by_device_keeps_device_in_one_partition(self, broker, alarms):
        ProducerApplication(broker, "alarms", alarms, seed=2).run(400)
        from repro.streaming import Consumer
        consumer = Consumer(broker, "check")
        consumer.subscribe("alarms")
        device_partitions: dict[str, set[int]] = {}
        for record in consumer.poll(1000):
            doc_partitions = device_partitions.setdefault(
                record.key.decode(), set()
            )
            doc_partitions.add(record.partition)
        assert all(len(parts) == 1 for parts in device_partitions.values())

    def test_deterministic_given_seed(self, alarms):
        def collect(seed):
            b = Broker()
            b.create_topic("alarms", num_partitions=1)
            ProducerApplication(b, "alarms", alarms, seed=seed).run(50)
            from repro.streaming import Consumer
            c = Consumer(b, "g")
            c.subscribe("alarms")
            return [v["device_address"] for v in c.poll_values(100)]
        assert collect(7) == collect(7)
        assert collect(7) != collect(8)

    def test_validation(self, broker, alarms):
        with pytest.raises(ConfigurationError):
            ProducerApplication(broker, "alarms", [])
        app = ProducerApplication(broker, "alarms", alarms)
        with pytest.raises(ConfigurationError):
            app.run(0)
        with pytest.raises(ConfigurationError):
            app.run(10, num_threads=0)

    def test_rate_limit_is_respected(self, broker, alarms):
        import time
        app = ProducerApplication(broker, "alarms", alarms, seed=1)
        started = time.perf_counter()
        app.run(60, rate_limit=300.0)
        assert time.perf_counter() - started >= 60 / 300.0 * 0.7


class TestConsumerApplication:
    def test_process_available_verifies_everything(self, broker, alarms, service):
        ProducerApplication(broker, "alarms", alarms, seed=3).run(200)
        consumer = ConsumerApplication(broker, "alarms", "g", service)
        report = consumer.process_available()
        assert report.alarms_processed == 200
        assert report.windows >= 1
        assert report.elapsed_seconds > 0

    def test_parallel_ml_mode_produces_same_counts(self, broker, alarms, service):
        ProducerApplication(broker, "alarms", alarms, seed=4).run(150)
        consumer = ConsumerApplication(
            broker, "alarms", "g", service, repartition=3, parallel_ml=True,
        )
        assert consumer.process_available().alarms_processed == 150

    def test_histogram_since_filters_history(self, broker, alarms, service):
        history = AlarmHistory()
        history.record_batch(alarms[:100])
        latest = max(a.timestamp for a in alarms[:100])
        consumer = ConsumerApplication(
            broker, "alarms", "g", service, history=history,
            histogram_since=latest + 1.0,
        )
        ProducerApplication(broker, "alarms", alarms, seed=5).run(50)
        consumer.process_available()
        # Everything predates the cutoff except the window itself (recorded
        # after the histogram step), so all counts are zero.
        assert all(count == 0 for count in consumer.last_histogram.values())

    def test_invalid_repartition_raises(self, broker, service):
        with pytest.raises(ConfigurationError):
            ConsumerApplication(broker, "alarms", "g", service, repartition=0)

    def test_keep_verifications_off_keeps_memory_flat(self, broker, alarms, service):
        ProducerApplication(broker, "alarms", alarms, seed=6).run(100)
        consumer = ConsumerApplication(broker, "alarms", "g", service)
        report = consumer.process_available()
        assert report.verifications == []

    def test_run_loop_with_live_producer(self, broker, alarms, service):
        import threading
        consumer = ConsumerApplication(broker, "alarms", "g", service)
        producer = ProducerApplication(broker, "alarms", alarms, seed=7)
        thread = threading.Thread(target=lambda: producer.run(120))
        thread.start()
        report = consumer.run(duration_seconds=1.0)
        thread.join()
        # run() must pick up everything the live producer wrote.
        remaining = consumer.process_available()
        assert report.alarms_processed + remaining.alarms_processed == 120

    def test_breakdown_shares_sum_to_one(self, broker, alarms, service):
        ProducerApplication(broker, "alarms", alarms, seed=8).run(80)
        consumer = ConsumerApplication(broker, "alarms", "g", service)
        report = consumer.process_available()
        assert sum(report.breakdown().values()) == pytest.approx(1.0)

    def test_empty_topic_report(self, broker, service):
        consumer = ConsumerApplication(broker, "alarms", "g", service)
        report = consumer.process_available()
        assert report.alarms_processed == 0
        assert report.breakdown() == {
            "streaming": 0.0, "batch": 0.0, "ml": 0.0, "store": 0.0
        }

    def test_on_window_observer_sees_every_verification(self, broker, alarms, service):
        ProducerApplication(broker, "alarms", alarms, seed=3).run(150)
        observed = []
        consumer = ConsumerApplication(
            broker, "alarms", "g", service,
            on_window=lambda verifications, batch: observed.append(
                (len(verifications), batch.index)
            ),
        )
        report = consumer.process_available(max_records=60)
        assert report.alarms_processed == 150
        assert sum(count for count, _ in observed) == 150
        assert len(observed) == report.windows

    def test_drain_until_processes_everything_then_stops(self, broker, alarms, service):
        ProducerApplication(broker, "alarms", alarms, seed=4).run(120)
        consumer = ConsumerApplication(broker, "alarms", "g", service)
        report = consumer.drain_until(lambda: True, max_records=50)
        assert report.alarms_processed == 120
        assert report.windows >= 1

    def test_drain_until_waits_for_done_signal(self, broker, alarms, service):
        consumer = ConsumerApplication(broker, "alarms", "g", service)
        state = {"calls": 0}

        def done():
            state["calls"] += 1
            if state["calls"] == 2:
                ProducerApplication(broker, "alarms", alarms, seed=5).run(30)
            return state["calls"] >= 2

        report = consumer.drain_until(done, idle_sleep=0.001)
        assert report.alarms_processed == 30
