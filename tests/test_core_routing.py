"""My Security Center routing and prioritization tests (Section 3)."""

import pytest

from repro.core import (
    Alarm,
    MySecurityCenter,
    Route,
    RoutingPolicy,
    Verification,
    prioritize,
)
from repro.errors import ConfigurationError


def make_verification(p_false, alarm_type="intrusion"):
    alarm = Alarm(
        device_address="d", zip_code="8001", timestamp=0.0,
        alarm_type=alarm_type, property_type="residential",
        duration_seconds=10.0,
    )
    return Verification(alarm=alarm, is_false=p_false >= 0.5,
                        probability_false=p_false)


class TestRoutingPolicy:
    def test_defaults(self):
        policy = RoutingPolicy()
        assert policy.true_threshold == 0.5

    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            RoutingPolicy(true_threshold=1.5)

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            RoutingPolicy(customer_window_seconds=0)


class TestRouting:
    def test_likely_true_goes_to_arc(self):
        center = MySecurityCenter(RoutingPolicy(true_threshold=0.7))
        assert center.route(make_verification(p_false=0.1)) == Route.ARC

    def test_likely_false_goes_to_customer(self):
        center = MySecurityCenter(RoutingPolicy(true_threshold=0.7))
        assert center.route(make_verification(p_false=0.9)) == Route.CUSTOMER

    def test_technical_alarms_suppressed(self):
        policy = RoutingPolicy(suppress_alarm_types=frozenset({"technical"}))
        center = MySecurityCenter(policy)
        assert center.route(make_verification(0.2, "technical")) == Route.SUPPRESSED

    def test_customer_confirmation_stops_escalation(self):
        center = MySecurityCenter(RoutingPolicy(true_threshold=0.9))
        center.route(make_verification(0.8), customer_confirmed_false=True)
        assert center.report.escalated == 0

    def test_no_answer_escalates(self):
        center = MySecurityCenter(RoutingPolicy(true_threshold=0.9))
        center.route(make_verification(0.8), customer_confirmed_false=None)
        center.route(make_verification(0.8), customer_confirmed_false=False)
        assert center.report.escalated == 2

    def test_report_counters(self):
        policy = RoutingPolicy(
            true_threshold=0.6, suppress_alarm_types=frozenset({"technical"})
        )
        center = MySecurityCenter(policy)
        center.route_batch([
            make_verification(0.1),               # arc
            make_verification(0.9),               # customer (escalates)
            make_verification(0.5, "technical"),  # suppressed
        ])
        report = center.report
        assert report.to_arc == 1
        assert report.to_customer == 1
        assert report.suppressed == 1
        assert report.total == 3

    def test_arc_load_reduction(self):
        center = MySecurityCenter(RoutingPolicy(true_threshold=0.5))
        # 1 to ARC, 1 suppressed technical, 1 customer-confirmed false.
        center.route(make_verification(0.1))
        policy_center = center  # keep flow explicit
        policy_center.policy = RoutingPolicy(
            true_threshold=0.5, suppress_alarm_types=frozenset({"technical"})
        )
        policy_center.route(make_verification(0.4, "technical"))
        policy_center.route(make_verification(0.9), customer_confirmed_false=True)
        assert policy_center.report.arc_load_reduction == pytest.approx(2 / 3)

    def test_empty_report(self):
        assert MySecurityCenter().report.arc_load_reduction == 0.0


class TestPrioritize:
    def test_most_likely_true_first(self):
        queue = prioritize([
            make_verification(0.9),
            make_verification(0.1),
            make_verification(0.5),
        ])
        assert [v.probability_true for v in queue] == pytest.approx([0.9, 0.5, 0.1])

    def test_stable_for_equal_probabilities(self):
        a = make_verification(0.5)
        b = make_verification(0.5)
        queue = prioritize([a, b])
        assert len(queue) == 2

    def test_empty(self):
        assert prioritize([]) == []
