"""Verification-service and alarm-history tests."""

import pytest

from repro.core import AlarmHistory, VerificationService
from repro.core.labeling import label_alarms
from repro.datasets import SitasysGenerator
from repro.errors import ConfigurationError
from repro.ml import FeaturePipeline, LogisticRegression
from repro.risk import RiskModel
from repro.storage import DocumentStore

CATS = ["location", "property_type", "alarm_type", "hour_of_day",
        "day_of_week", "sensor_type", "software_version"]


@pytest.fixture(scope="module")
def generator():
    return SitasysGenerator(num_devices=100, seed=11)


@pytest.fixture(scope="module")
def alarms(generator):
    return generator.generate(1200)


@pytest.fixture(scope="module")
def service(alarms):
    labeled = label_alarms(alarms, 60.0)
    pipe = FeaturePipeline(LogisticRegression(max_iter=120), CATS)
    pipe.fit([l.features() for l in labeled], [l.is_false for l in labeled])
    return VerificationService(pipe)


class TestVerificationService:
    def test_verify_single_alarm(self, service, alarms):
        verification = service.verify(alarms[0])
        assert verification.alarm == alarms[0]
        assert 0.0 <= verification.probability_false <= 1.0
        assert verification.probability_true == pytest.approx(
            1.0 - verification.probability_false
        )

    def test_classification_matches_probability(self, service, alarms):
        for verification in service.verify_batch(alarms[:50]):
            assert verification.is_false == (verification.probability_false >= 0.5)

    def test_confidence_is_max_probability(self, service, alarms):
        verification = service.verify(alarms[0])
        assert verification.confidence >= 0.5

    def test_batch_accuracy_is_reasonable(self, service, alarms):
        labeled = label_alarms(alarms, 60.0)
        verifications = service.verify_batch(alarms)
        agreement = sum(
            v.is_false == l.is_false for v, l in zip(verifications, labeled)
        ) / len(alarms)
        assert agreement > 0.75  # trained on these alarms; sanity bound

    def test_empty_batch(self, service):
        assert service.verify_batch([]) == []

    def test_verified_count_accumulates(self, alarms):
        labeled = label_alarms(alarms[:200], 60.0)
        pipe = FeaturePipeline(LogisticRegression(max_iter=60), CATS)
        pipe.fit([l.features() for l in labeled], [l.is_false for l in labeled])
        svc = VerificationService(pipe)
        svc.verify_batch(alarms[:10])
        svc.verify(alarms[10])
        assert svc.verified_count == 11

    def test_risk_enriched_service(self, generator, alarms):
        risk = RiskModel({"SomeCity": 10}, {"SomeCity": 1000})
        labeled = label_alarms(alarms[:300], 60.0)
        pipe = FeaturePipeline(
            LogisticRegression(max_iter=60), CATS, numeric_features=["risk"]
        )
        records = [
            l.features(risk=risk.absolute(a.locality))
            for l, a in zip(labeled, alarms)
        ]
        pipe.fit(records, [l.is_false for l in labeled])
        svc = VerificationService(pipe, risk_model=risk, risk_kind="absolute")
        verification = svc.verify(alarms[0])
        assert 0.0 <= verification.probability_false <= 1.0

    def test_invalid_risk_kind_raises(self, service):
        with pytest.raises(ConfigurationError):
            VerificationService(service.pipeline, risk_kind="cubic")


class TestAlarmHistory:
    def test_record_and_count(self, alarms):
        history = AlarmHistory()
        history.record(alarms[0])
        history.record_batch(alarms[1:10])
        assert len(history) == 10

    def test_indexes_created(self):
        history = AlarmHistory()
        assert set(history.collection.index_fields()) == {"device_address", "timestamp"}

    def test_device_histogram_counts(self, alarms):
        history = AlarmHistory()
        history.record_batch(alarms[:100])
        devices = sorted({a.device_address for a in alarms[:100]})
        histogram = history.device_histogram(devices)
        assert sum(histogram.values()) == 100

    def test_device_histogram_since(self, alarms):
        history = AlarmHistory()
        history.record_batch(alarms[:100])
        timestamps = sorted(a.timestamp for a in alarms[:100])
        cutoff = timestamps[50]
        devices = sorted({a.device_address for a in alarms[:100]})
        histogram = history.device_histogram(devices, since=cutoff)
        expected = sum(1 for a in alarms[:100] if a.timestamp >= cutoff)
        assert sum(histogram.values()) == expected

    def test_histogram_unknown_device_is_zero(self):
        history = AlarmHistory()
        assert history.device_histogram(["ghost"]) == {"ghost": 0}

    def test_alarms_by_zip(self, alarms):
        history = AlarmHistory()
        history.record_batch(alarms[:200])
        by_zip = history.alarms_by_zip()
        assert sum(by_zip.values()) == 200
        fire_only = history.alarms_by_zip(alarm_types=["fire"])
        assert sum(fire_only.values()) == sum(
            1 for a in alarms[:200] if a.alarm_type == "fire"
        )

    def test_hourly_profile(self, alarms):
        history = AlarmHistory()
        history.record_batch(alarms[:100])
        device = alarms[0].device_address
        profile = history.hourly_profile(device)
        expected = sum(1 for a in alarms[:100] if a.device_address == device)
        assert sum(profile.values()) == expected

    def test_recent_sorted_newest_first(self, alarms):
        history = AlarmHistory()
        history.record_batch(alarms[:50])
        recent = history.recent(since=0.0, limit=10)
        timestamps = [a.timestamp for a in recent]
        assert timestamps == sorted(timestamps, reverse=True)
        assert len(recent) == 10

    def test_history_with_shared_store(self, alarms):
        store = DocumentStore()
        history = AlarmHistory(store=store)
        history.record(alarms[0])
        assert len(store.collection("alarms")) == 1
