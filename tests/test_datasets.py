"""Dataset-generator tests: determinism, published statistics, structure."""

import numpy as np
import pytest

from repro.core.labeling import label_alarms
from repro.datasets import (
    Gazetteer,
    IncidentReportGenerator,
    LondonGenerator,
    SanFranciscoGenerator,
    SitasysGenerator,
    TABLE1_SCHEMA,
    london_to_labeled,
    sanfrancisco_to_labeled,
    sitasys_to_labeled,
)
from repro.errors import DatasetError


class TestGazetteer:
    @pytest.fixture(scope="class")
    def gaz(self):
        return Gazetteer(num_localities=300, seed=7)

    def test_deterministic(self):
        a = Gazetteer(num_localities=50, seed=1)
        b = Gazetteer(num_localities=50, seed=1)
        assert a.names() == b.names()
        assert a.populations() == b.populations()

    def test_unique_names_and_zips(self, gaz):
        names = gaz.names()
        zips = gaz.zip_codes()
        assert len(names) == len(set(names)) == 300
        assert len(zips) == len(set(zips))

    def test_multi_zip_cities_are_the_largest(self, gaz):
        multi = gaz.multi_zip_localities()
        single = gaz.single_zip_localities()
        assert multi and single
        assert min(m.population for m in multi) >= max(s.population for s in single)

    def test_multi_zip_cities_have_3_to_8_zips(self, gaz):
        for city in gaz.multi_zip_localities():
            assert 3 <= len(city.zip_codes) <= 8

    def test_zip_lookup_round_trip(self, gaz):
        for locality in list(gaz)[:20]:
            for zip_code in locality.zip_codes:
                assert gaz.by_zip(zip_code).name == locality.name

    def test_by_name_unknown_raises(self, gaz):
        with pytest.raises(DatasetError):
            gaz.by_name("Atlantis")

    def test_language_regions(self, gaz):
        languages = {loc.language for loc in gaz}
        assert languages == {"de", "fr"}
        for loc in gaz:
            assert (loc.language == "fr") == (loc.x < 0.28 * Gazetteer.X_SPAN)

    def test_populations_zipf_like(self, gaz):
        pops = [loc.population for loc in gaz.localities]
        assert pops[0] > 50 * pops[-1]  # heavy head
        assert pops == sorted(pops, reverse=True)

    def test_too_few_localities_raises(self):
        with pytest.raises(DatasetError):
            Gazetteer(num_localities=5)


class TestSitasysGenerator:
    @pytest.fixture(scope="class")
    def gen(self):
        return SitasysGenerator(num_devices=300, seed=11)

    @pytest.fixture(scope="class")
    def alarms(self, gen):
        return gen.generate(4000)

    def test_deterministic(self):
        g1 = SitasysGenerator(num_devices=50, seed=3)
        g2 = SitasysGenerator(num_devices=50, seed=3)
        assert g1.generate(100) == g2.generate(100)

    def test_seed_offset_varies_stream(self, gen):
        assert gen.generate(50, seed_offset=0) != gen.generate(50, seed_offset=1)

    def test_devices_have_stable_attributes(self, gen, alarms):
        by_device = {}
        for alarm in alarms:
            attrs = (alarm.zip_code, alarm.property_type, alarm.sensor_type,
                     alarm.software_version, alarm.locality)
            by_device.setdefault(alarm.device_address, set()).add(attrs)
        assert all(len(variants) == 1 for variants in by_device.values())

    def test_roughly_balanced_labels_at_one_minute(self, alarms):
        labeled = label_alarms(alarms, 60.0)
        false_rate = np.mean([l.is_false for l in labeled])
        assert 0.40 <= false_rate <= 0.65  # paper: "roughly equal proportions"

    def test_false_rate_grows_with_delta_t(self, alarms):
        rates = [
            np.mean([l.is_false for l in label_alarms(alarms, dt)])
            for dt in (60.0, 300.0, 600.0)
        ]
        assert rates[0] <= rates[1] <= rates[2]

    def test_technical_alarms_mostly_short(self, alarms):
        technical = [a.duration_seconds for a in alarms if a.alarm_type == "technical"]
        assert np.median(technical) < 60.0

    def test_timestamps_inside_collection_window(self, alarms):
        import datetime as dt
        for alarm in alarms[:200]:
            when = alarm.datetime
            assert dt.datetime(2015, 9, 30, tzinfo=dt.timezone.utc) <= when
            assert when <= dt.datetime(2016, 5, 2, tzinfo=dt.timezone.utc)

    def test_zip_risk_within_city_varies_only_for_multi_zip(self, gen):
        for locality in gen.gazetteer:
            risks = {gen.zip_risk[z] for z in locality.zip_codes}
            if locality.is_single_zip:
                assert risks == {gen.locality_risk[locality.name]}

    def test_bayes_accuracy_is_high(self, gen):
        assert gen.bayes_accuracy_estimate(2000) > 0.85

    def test_sharpness_validation(self):
        with pytest.raises(DatasetError):
            SitasysGenerator(sharpness=0.0)

    def test_labeled_adapter_includes_sensor_extras(self, alarms):
        labeled = sitasys_to_labeled(alarms[:5])
        assert all("sensor_type" in l.extra_features for l in labeled)
        features = labeled[0].features()
        assert set(features) >= {"location", "property_type", "alarm_type",
                                 "hour_of_day", "day_of_week", "sensor_type",
                                 "software_version"}


class TestLondonGenerator:
    @pytest.fixture(scope="class")
    def incidents(self):
        return LondonGenerator(seed=23).generate(8000)

    def test_deterministic(self):
        assert LondonGenerator(seed=1).generate(50) == LondonGenerator(seed=1).generate(50)

    def test_false_ratio_near_published_48_percent(self, incidents):
        stats = LondonGenerator(seed=23).statistics(incidents)
        assert 0.42 <= stats["false_ratio"] <= 0.56

    def test_years_cover_2009_to_2016(self, incidents):
        years = {i.year for i in incidents}
        assert years == set(range(2009, 2017))

    def test_three_incident_groups(self, incidents):
        groups = {i.incident_group for i in incidents}
        assert groups == {"False Alarm", "Fire", "Special Service"}

    def test_statistics_totals(self, incidents):
        stats = LondonGenerator(seed=23).statistics(incidents)
        assert stats["total"] == 8000
        assert sum(stats["by_group"].values()) == 8000
        assert sum(stats["by_year"].values()) == 8000

    def test_labeled_adapter_does_not_leak_group(self, incidents):
        labeled = london_to_labeled(incidents[:100])
        assert {l.alarm_type for l in labeled} == {"incident"}


class TestSanFranciscoGenerator:
    @pytest.fixture(scope="class")
    def calls(self):
        return SanFranciscoGenerator(seed=31).generate(20000)

    def test_deterministic(self):
        g = SanFranciscoGenerator(seed=2)
        assert g.generate(50) == g.generate(50)

    def test_funnel_shape_matches_paper(self, calls):
        funnel = SanFranciscoGenerator.funnel(calls)
        assert funnel["disposition_other"] / funnel["total"] > 0.5
        assert funnel["medical"] / funnel["total"] > 0.5
        assert funnel["usable_labeled"] < funnel["alarm_or_fire"]
        assert funnel["usable_labeled"] > 0

    def test_usable_subset_is_labeled_alarm_fire(self, calls):
        for call in SanFranciscoGenerator.usable_subset(calls):
            assert call.is_labeled
            assert call.call_type in ("Alarms", "Structure Fire", "Outside Fire")

    def test_medical_labels_near_random(self, calls):
        medical = [c for c in SanFranciscoGenerator.labeled_subset(calls)
                   if c.call_type == "Medical Incident"]
        rate = np.mean([c.is_false for c in medical])
        assert 0.42 <= rate <= 0.58

    def test_no_property_type_in_adapter(self, calls):
        labeled = sanfrancisco_to_labeled(SanFranciscoGenerator.usable_subset(calls)[:50])
        assert {l.property_type for l in labeled} == {"unknown"}


class TestIncidentReports:
    @pytest.fixture(scope="class")
    def setup(self):
        gaz = Gazetteer(num_localities=200, seed=7)
        sit = SitasysGenerator(gazetteer=gaz, num_devices=100, seed=11)
        gen = IncidentReportGenerator(gaz, sit.locality_risk, coverage=0.3, seed=17)
        return gaz, gen, gen.generate(800)

    def test_coverage_fraction(self, setup):
        gaz, gen, _ = setup
        assert len(gen.covered_localities) == round(200 * 0.3)

    def test_reports_have_text_and_source(self, setup):
        _, _, reports = setup
        assert all(r.get("text") for r in reports)
        assert all(r.get("source") in ("twitter", "rss", "web") for r in reports)

    def test_risk_increases_expected_count(self, setup):
        gaz, gen, _ = setup
        # Among covered localities with similar population, higher latent
        # risk must give a higher expected report count.
        sit_risk = gen.locality_risk
        covered = gen.covered_localities
        pairs = [(sit_risk[name], gen.expected_count(name) /
                  gaz.by_name(name).population) for name in covered]
        pairs.sort()
        low_third = np.mean([rate for _, rate in pairs[: len(pairs) // 3]])
        top_third = np.mean([rate for _, rate in pairs[-len(pairs) // 3:]])
        assert top_third > low_third

    def test_corpus_feeds_pipeline(self, setup):
        gaz, _, reports = setup
        from repro.storage import Collection
        from repro.text import IncidentPipeline
        coll = Collection("incidents")
        stats = IncidentPipeline(gaz.names()).run(reports, coll)
        assert stats.stored > 0.7 * stats.collected  # most reports usable
        assert set(stats.by_language) <= {"de", "fr", "en"}
        assert set(stats.by_topic) == {"fire", "intrusion"}

    def test_invalid_coverage_raises(self, setup):
        gaz, gen, _ = setup
        with pytest.raises(DatasetError):
            IncidentReportGenerator(gaz, {}, coverage=0.0)


class TestTable1Schema:
    def test_all_three_datasets_described(self):
        assert set(TABLE1_SCHEMA) == {"Sitasys", "London", "San Francisco"}

    def test_san_francisco_has_no_property_type(self):
        assert TABLE1_SCHEMA["San Francisco"]["Type of Location"] == "-"

    def test_labels_match_paper(self):
        assert TABLE1_SCHEMA["Sitasys"]["Label"] == "Alarm Duration"
        assert TABLE1_SCHEMA["London"]["Label"] == "Incident Group"
        assert TABLE1_SCHEMA["San Francisco"]["Label"] == "Call Final Disposition"
