"""Durability subsystem tests: WAL, snapshots, journal, broker, recovery.

Crash behaviour is exercised through ``simulate_crash()``, which discards
every byte not yet fsynced — the deterministic in-process model of power
loss (a live OS never loses flushed writes, so killing the process alone
would prove nothing).
"""

import pytest

from repro.core import (
    Alarm,
    AlarmHistory,
    ConsumerApplication,
    VerificationLog,
    alarm_uid,
)
from repro.durability import (
    DurableBroker,
    DurableDocumentStore,
    RecoveryManager,
    SnapshotManager,
    WriteAheadLog,
)
from repro.errors import (
    DuplicateKeyError,
    DurabilityError,
    UnknownTopicError,
    WALCorruptionError,
    WALError,
)
from repro.storage import DocumentStore
from repro.streaming.message import TopicPartition


def wal_segments(directory):
    return sorted(directory.glob("wal-*.log"))


class TestWriteAheadLog:
    def test_append_assigns_dense_lsns_and_replays_in_order(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        assert wal.append(b"one") == 0
        assert wal.append_many([b"two", b"three"]) == [1, 2]
        assert list(wal.replay()) == [(0, b"one"), (1, b"two"), (2, b"three")]
        assert list(wal.replay(start_lsn=2)) == [(2, b"three")]
        assert wal.next_lsn == 3
        wal.close()

    def test_reopen_recovers_records(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append_many([b"a", b"b"])
        reopened = WriteAheadLog(tmp_path)
        assert reopened.truncated_bytes == 0
        assert [p for _, p in reopened.replay()] == [b"a", b"b"]
        assert reopened.append(b"c") == 2
        reopened.close()

    def test_segment_rotation_and_compaction(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_max_bytes=32)
        for payload in (b"x" * 24, b"y" * 24, b"z" * 24):
            wal.append(payload)  # each append fills and seals one segment
        assert wal.segment_count() >= 3
        removed = wal.truncate_until(2)
        assert removed == 2
        assert wal.first_lsn == 2
        assert list(wal.replay(2)) == [(2, b"z" * 24)]
        with pytest.raises(WALError, match="predates"):
            list(wal.replay(0))
        wal.close()

    def test_active_tail_survives_compaction(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(b"only")
        assert wal.truncate_until(10) == 0  # never unlink the live tail
        assert wal.record_count() == 1
        wal.close()

    def test_torn_tail_is_truncated_on_open(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append_many([b"good-1", b"good-2"])
        segment = wal_segments(tmp_path)[-1]
        with segment.open("ab") as handle:
            handle.write(b"\x00\x00\x00\x09\xde\xad\xbe\xefpartial")
        recovered = WriteAheadLog(tmp_path)
        assert recovered.truncated_bytes > 0
        assert [p for _, p in recovered.replay()] == [b"good-1", b"good-2"]
        # The torn bytes are physically gone: a re-open is clean.
        recovered.close()
        assert WriteAheadLog(tmp_path).truncated_bytes == 0

    def test_corrupt_payload_in_tail_is_discarded(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append_many([b"keep", b"doomed"])
        segment = wal_segments(tmp_path)[-1]
        blob = bytearray(segment.read_bytes())
        blob[-1] ^= 0xFF  # flip one payload byte of the last record
        segment.write_bytes(bytes(blob))
        recovered = WriteAheadLog(tmp_path)
        assert [p for _, p in recovered.replay()] == [b"keep"]
        assert recovered.next_lsn == 1
        recovered.close()

    def test_corruption_in_sealed_segment_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_max_bytes=16)
        wal.append_many([b"a" * 16, b"b" * 16])  # two sealed-ish segments
        wal.close()
        first = wal_segments(tmp_path)[0]
        blob = bytearray(first.read_bytes())
        blob[-1] ^= 0xFF
        first.write_bytes(bytes(blob))
        with pytest.raises(WALCorruptionError, match="sealed segment"):
            WriteAheadLog(tmp_path)

    def test_crash_loses_only_unsynced_records(self, tmp_path):
        wal = WriteAheadLog(tmp_path, sync="never")
        wal.append_many([b"durable-1", b"durable-2"], sync=True)
        wal.append_many([b"lost-1", b"lost-2"])  # flushed, never fsynced
        wal.simulate_crash()
        recovered = WriteAheadLog(tmp_path)
        assert [p for _, p in recovered.replay()] == [b"durable-1", b"durable-2"]
        recovered.close()

    def test_crash_preserves_lsn_frontier_of_empty_tail(self, tmp_path):
        """An empty rotated tail carries the LSN frontier in its filename;
        crash simulation must truncate, never unlink, or post-recovery
        appends would reuse LSNs a snapshot already claims to cover."""
        wal = WriteAheadLog(tmp_path, segment_max_bytes=16)
        wal.append(b"x" * 16)  # fills segment 0, rotates to empty tail at lsn 1
        wal.truncate_until(1)  # compaction drops the sealed segment
        assert wal.next_lsn == 1
        wal.simulate_crash()
        recovered = WriteAheadLog(tmp_path)
        assert recovered.next_lsn == 1, "LSN space must not reset after crash"
        assert recovered.append(b"y") == 1
        recovered.close()

    def test_group_commit_is_durable_as_a_unit(self, tmp_path):
        wal = WriteAheadLog(tmp_path, sync="batch")
        wal.append_many([b"a", b"b", b"c"])  # one fsync for the group
        wal.simulate_crash()
        recovered = WriteAheadLog(tmp_path)
        assert recovered.record_count() == 3
        recovered.close()

    def test_rejects_bad_inputs(self, tmp_path):
        with pytest.raises(WALError, match="sync"):
            WriteAheadLog(tmp_path / "a", sync="sometimes")
        wal = WriteAheadLog(tmp_path / "b")
        with pytest.raises(WALError, match="bytes"):
            wal.append("not-bytes")
        wal.close()
        with pytest.raises(WALError, match="closed"):
            wal.append(b"late")


class TestSnapshotManager:
    def make_store(self, n=5):
        store = DocumentStore()
        coll = store.collection("docs")
        coll.create_index("k", kind="hash", unique=True)
        coll.insert_many([{"k": i, "v": i * i} for i in range(n)])
        return store

    def test_write_and_load_round_trip(self, tmp_path):
        manager = SnapshotManager(tmp_path)
        info = manager.write(self.make_store(), wal_lsn=17)
        assert info.wal_lsn == 17 and info.documents == 5
        loaded, lsn = SnapshotManager(tmp_path).load_latest()
        assert lsn == 17
        assert loaded.collection("docs").find_one({"k": 3})["v"] == 9
        assert "k" in loaded.collection("docs").index_fields()

    def test_empty_directory_loads_fresh_store(self, tmp_path):
        store, lsn = SnapshotManager(tmp_path).load_latest()
        assert lsn == 0 and store.collection_names() == []

    def test_prune_keeps_newest(self, tmp_path):
        manager = SnapshotManager(tmp_path, keep=2)
        for lsn in (5, 10, 15, 20):
            manager.write(self.make_store(), wal_lsn=lsn)
        assert [info.wal_lsn for info in manager.list()] == [15, 20]
        assert manager.latest().wal_lsn == 20

    def test_rewriting_same_lsn_keeps_existing_image(self, tmp_path):
        """A second write() at an LSN that already has a complete snapshot
        must not delete-then-replace it (a crash in that window would leave
        no snapshot at all for an already-truncated WAL)."""
        manager = SnapshotManager(tmp_path)
        first = manager.write(self.make_store(), wal_lsn=7)
        again = manager.write(self.make_store(), wal_lsn=7)
        assert again.wal_lsn == 7
        assert [info.wal_lsn for info in manager.list()] == [7]
        assert first.path == again.path

    def test_half_written_tmp_dirs_are_swept_and_ignored(self, tmp_path):
        manager = SnapshotManager(tmp_path)
        manager.write(self.make_store(), wal_lsn=3)
        litter = tmp_path / "tmp-00000000000000000009-123"
        litter.mkdir()
        (litter / "docs.jsonl").write_text('{"k": 1}\n')
        fresh = SnapshotManager(tmp_path)
        assert fresh.latest().wal_lsn == 3
        assert not litter.exists()


class TestDurableDocumentStore:
    def test_crash_recovery_replays_every_write_kind(self, tmp_path):
        store = DurableDocumentStore(tmp_path)
        coll = store.collection("alarms")
        coll.create_index("uid", kind="hash", unique=True)
        coll.insert_many([{"uid": i, "n": 0} for i in range(6)])
        coll.update_many({"uid": {"$lt": 3}}, {"$set": {"n": 1}})
        coll.delete_many({"uid": 5})
        store.collection("other").insert_one({"x": 1})
        store.drop_collection("other")
        store.simulate_crash()

        recovered = DurableDocumentStore(tmp_path)
        coll = recovered.collection("alarms")
        assert len(coll) == 5
        assert coll.count({"n": 1}) == 3
        assert coll.find_one({"uid": 5}) is None
        assert "other" not in recovered.collection_names()
        assert recovered.replayed_ops == 6
        recovered.close()

    def test_writes_after_checkpointed_crash_survive_a_second_crash(self, tmp_path):
        """Checkpoint -> crash -> write -> crash: the post-recovery writes
        land above the snapshot LSN and must be replayed by the second
        recovery (regression for the LSN-space reset on empty-tail crash)."""
        store = DurableDocumentStore(tmp_path)
        store.collection("docs").insert_many([{"i": i} for i in range(4)])
        store.checkpoint()
        store.simulate_crash()
        middle = DurableDocumentStore(tmp_path)
        middle.collection("docs").insert_one({"i": 99})
        middle.simulate_crash()
        final = DurableDocumentStore(tmp_path)
        assert len(final.collection("docs")) == 5
        assert final.replayed_ops == 1
        final.close()

    def test_wal_reanchors_when_crash_truncates_below_snapshot(self, tmp_path):
        """sync="never": a crash can drop journal records the snapshot
        already covers, leaving next_lsn < snapshot_lsn.  Recovery must
        re-anchor the LSN space so later (even fsynced) writes are not
        hidden behind the snapshot on the next recovery."""
        store = DurableDocumentStore(tmp_path, sync="never")
        store.collection("docs").insert_one({"x": 1})  # journaled, not fsynced
        store.checkpoint()                             # snapshot at LSN 1
        store.simulate_crash()                         # journal tail lost

        middle = DurableDocumentStore(tmp_path, sync="never")
        assert len(middle.collection("docs")) == 1     # snapshot had it
        assert middle.wal.next_lsn >= middle.snapshot_lsn
        middle.collection("docs").insert_one({"x": 2})
        middle.wal.sync()
        middle.close()

        final = DurableDocumentStore(tmp_path)
        assert len(final.collection("docs")) == 2, \
            "post-reanchor writes must replay on the next recovery"
        final.close()

    def test_values_are_json_normalized_identically_live_and_replayed(self, tmp_path):
        """The live apply runs the decoded journal payload, so non-JSON
        shapes (tuples) normalize to lists immediately — the recovered
        state can never diverge from the served one."""
        store = DurableDocumentStore(tmp_path)
        store.collection("docs").insert_one({"pair": (1, 2)})
        assert store.collection("docs").find_one({"pair": [1, 2]}) is not None
        live = store.collection("docs").find_one({})["pair"]
        store.simulate_crash()
        recovered = DurableDocumentStore(tmp_path)
        assert recovered.collection("docs").find_one({})["pair"] == live == [1, 2]
        recovered.close()

    def test_checkpoint_bounds_replay_to_the_wal_suffix(self, tmp_path):
        store = DurableDocumentStore(tmp_path)
        coll = store.collection("docs")
        coll.insert_many([{"i": i} for i in range(10)])
        lsn = store.checkpoint()
        coll.insert_one({"i": 10})
        store.simulate_crash()

        recovered = DurableDocumentStore(tmp_path)
        assert recovered.snapshot_lsn == lsn
        assert recovered.snapshot_documents == 10
        assert recovered.replayed_ops == 1  # only the post-checkpoint insert
        assert len(recovered.collection("docs")) == 11
        recovered.close()

    def test_auto_compaction_when_journal_outgrows_ratio(self, tmp_path):
        store = DurableDocumentStore(
            tmp_path, compact_ratio=2.0, min_compact_records=4
        )
        coll = store.collection("docs")
        for i in range(8):  # 8 single-doc ops over few live docs
            coll.insert_one({"i": i})
            coll.delete_many({"i": i})
        assert store.snapshot_lsn > 0, "ratio trigger must have checkpointed"
        assert store.journal_ops_since_snapshot() < 16
        store.close()

    def test_replayed_duplicate_insert_counts_as_deduplicated(self, tmp_path):
        store = DurableDocumentStore(tmp_path)
        coll = store.collection("sink")
        coll.create_index("uid", kind="hash", unique=True)
        coll.insert_one({"uid": "a"})
        with pytest.raises(DuplicateKeyError):
            coll.insert_one({"uid": "a"})  # journaled, then failed to apply
        store.simulate_crash()

        recovered = DurableDocumentStore(tmp_path)
        assert len(recovered.collection("sink")) == 1
        assert recovered.deduplicated_ops == 1
        recovered.close()

    def test_callable_updates_are_rejected(self, tmp_path):
        store = DurableDocumentStore(tmp_path)
        store.collection("docs").insert_one({"a": 1})
        with pytest.raises(DurabilityError, match="journaled"):
            store.collection("docs").update_many({}, lambda doc: doc)
        store.close()

    def test_unjournalable_document_fails_before_any_state_change(self, tmp_path):
        store = DurableDocumentStore(tmp_path)
        coll = store.collection("docs")
        with pytest.raises(DurabilityError, match="JSON"):
            coll.insert_one({"payload": b"raw-bytes"})
        assert len(coll) == 0
        assert store.wal.record_count() == 0
        store.close()

    def test_insert_group_failed_sub_batch_does_not_abort_siblings(self, tmp_path):
        """Live apply and replay must converge: a duplicate in one
        sub-batch raises, but the sibling sub-batch is still applied — and
        recovery reproduces exactly that state."""
        store = DurableDocumentStore(tmp_path)
        sink = store.collection("sink")
        sink.create_index("uid", kind="hash", unique=True)
        sink.insert_one({"uid": "taken"})
        with pytest.raises(DuplicateKeyError):
            store.insert_group([
                ("sink", [{"uid": "taken"}]),
                ("history", [{"row": 1}, {"row": 2}]),
            ])
        assert len(store.collection("sink")) == 1
        assert len(store.collection("history")) == 2
        store.simulate_crash()

        recovered = DurableDocumentStore(tmp_path)
        assert len(recovered.collection("sink")) == 1
        assert len(recovered.collection("history")) == 2
        recovered.close()

    def test_reads_are_delegated(self, tmp_path):
        store = DurableDocumentStore(tmp_path)
        coll = store.collection("docs")
        coll.insert_many([{"i": i, "tag": "even" if i % 2 == 0 else "odd"}
                          for i in range(6)])
        assert coll.count({"tag": "even"}) == 3
        assert coll.distinct("tag") == ["even", "odd"]
        assert [d["i"] for d in coll.find({}, sort=("i", -1), limit=2)] == [5, 4]
        rows = store.aggregate("docs", [
            {"$group": {"_id": "$tag", "n": {"$sum": 1}}},
        ])
        assert {row["_id"]: row["n"] for row in rows} == {"even": 3, "odd": 3}
        store.close()


class TestDurableBroker:
    def test_records_offsets_and_metadata_survive_crash(self, tmp_path):
        broker = DurableBroker(tmp_path, offset_checkpoint_every=1)
        broker.create_topic("alarms", num_partitions=2)
        broker.append_batch("alarms", 0, [
            (b"k1", b"v1", 123.5, {"h": "x"}), (None, b"v2"),
        ])
        broker.append("alarms", 1, None, b"v3")
        broker.commit("grp", {TopicPartition("alarms", 0): 2})
        broker.simulate_crash()

        recovered = DurableBroker(tmp_path)
        assert recovered.topics() == ["alarms"]
        assert recovered.num_partitions("alarms") == 2
        assert recovered.recovered_records == 3
        assert recovered.committed("grp", TopicPartition("alarms", 0)) == 2
        records = recovered.fetch(TopicPartition("alarms", 0), 0)
        assert (records[0].key, records[0].value) == (b"k1", b"v1")
        assert records[0].timestamp == 123.5
        assert records[0].headers == {"h": "x"}
        assert records[1].key is None
        recovered.close()

    def test_offsets_rewind_to_last_checkpoint_after_crash(self, tmp_path):
        broker = DurableBroker(tmp_path, offset_checkpoint_every=3)
        broker.create_topic("t", 1)
        tp = TopicPartition("t", 0)
        broker.append_batch("t", 0, [(None, b"x")] * 10)
        for offset in (1, 2, 3):  # third commit hits the checkpoint
            broker.commit("g", {tp: offset})
        for offset in (4, 5):     # flushed, not yet checkpointed
            broker.commit("g", {tp: offset})
        broker.simulate_crash()

        recovered = DurableBroker(tmp_path)
        assert recovered.committed("g", tp) == 3, \
            "post-checkpoint commits are lost, never torn"
        assert recovered.total_records("t") == 10
        recovered.close()

    def test_clean_close_checkpoints_pending_offsets(self, tmp_path):
        broker = DurableBroker(tmp_path, offset_checkpoint_every=100)
        broker.create_topic("t", 1)
        tp = TopicPartition("t", 0)
        broker.append("t", 0, None, b"x")
        broker.commit("g", {tp: 1})
        broker.close()
        recovered = DurableBroker(tmp_path)
        assert recovered.committed("g", tp) == 1
        recovered.close()

    def test_offset_journal_compacts_to_live_keys(self, tmp_path):
        broker = DurableBroker(tmp_path, offset_checkpoint_every=10_000)
        broker.create_topic("t", 1)
        tp = TopicPartition("t", 0)
        broker.append_batch("t", 0, [(None, b"x")] * 2)
        for i in range(1_100):
            broker.commit("g", {tp: 1 + (i % 2)})
        broker.sync_offsets()
        # Compaction fired when the journal crossed its live-key threshold:
        # 1100 commit records collapse to (one checkpoint record per live
        # key) + the commits appended since.
        assert broker._offset_wal.record_count() < 200, \
            "journal must compact to last-value-wins, not grow unboundedly"
        broker.simulate_crash()
        recovered = DurableBroker(tmp_path)
        assert recovered.committed("g", tp) == 2  # last commit (i=1099)
        recovered.close()

    def test_torn_offset_compaction_swap_is_restored(self, tmp_path):
        """A crash between compaction's two directory renames leaves the
        previous journal stranded as offsets.old; reopening must restore
        it instead of silently recovering zero offsets."""
        import os

        broker = DurableBroker(tmp_path, offset_checkpoint_every=1)
        broker.create_topic("t", 1)
        tp = TopicPartition("t", 0)
        broker.append("t", 0, None, b"x")
        broker.commit("g", {tp: 1})
        broker.close()
        os.rename(tmp_path / "offsets", tmp_path / "offsets.old")  # torn swap

        recovered = DurableBroker(tmp_path)
        assert recovered.committed("g", tp) == 1
        assert not (tmp_path / "offsets.old").exists()
        recovered.close()

    def test_delete_topic_removes_disk_state(self, tmp_path):
        broker = DurableBroker(tmp_path)
        broker.create_topic("gone", 1)
        broker.append("gone", 0, None, b"x")
        broker.delete_topic("gone")
        broker.close()
        recovered = DurableBroker(tmp_path)
        assert recovered.topics() == []
        recovered.close()

    def test_stale_offset_journal_entries_do_not_resurrect(self, tmp_path):
        """Offsets journaled before a topic deletion must not leak into a
        topic re-created with the same name after recovery."""
        broker = DurableBroker(tmp_path, offset_checkpoint_every=1)
        broker.create_topic("t", 1)
        tp = TopicPartition("t", 0)
        broker.append("t", 0, None, b"x")
        broker.commit("g", {tp: 1})
        broker.delete_topic("t")
        broker.close()

        recovered = DurableBroker(tmp_path)
        recovered.create_topic("t", 1)
        assert recovered.committed("g", tp) is None
        assert recovered.recovered_offsets == 0
        recovered.close()

    def test_offsets_of_recreated_topic_do_not_resurrect(self, tmp_path):
        """delete + re-create of the same topic name within one process:
        recovery must not hand the re-created (empty) topic the old
        generation's committed offsets."""
        broker = DurableBroker(tmp_path, offset_checkpoint_every=1)
        broker.create_topic("t", 1)
        tp = TopicPartition("t", 0)
        broker.append_batch("t", 0, [(None, b"x")] * 5)
        broker.commit("g", {tp: 5})
        broker.delete_topic("t")
        broker.create_topic("t", 1)  # new, empty generation
        broker.close()

        recovered = DurableBroker(tmp_path)
        assert recovered.topics() == ["t"]
        assert recovered.total_records("t") == 0
        assert recovered.committed("g", tp) is None
        recovered.close()

    def test_concurrent_appends_recover_in_served_order(self, tmp_path):
        """The replayed record sequence must be byte-identical to the one
        served before the crash, even with racing producers on one
        partition (the WAL write and the in-memory append happen under one
        per-partition lock)."""
        import threading

        broker = DurableBroker(tmp_path)
        broker.create_topic("t", 1)

        def produce(tag):
            for i in range(50):
                broker.append("t", 0, None, f"{tag}-{i}".encode())

        threads = [threading.Thread(target=produce, args=(t,)) for t in "ab"]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        served = [r.value for r in broker.fetch(TopicPartition("t", 0), 0,
                                                max_records=1_000)]
        broker.simulate_crash()

        recovered = DurableBroker(tmp_path)
        replayed = [r.value for r in recovered.fetch(TopicPartition("t", 0), 0,
                                                     max_records=1_000)]
        assert replayed == served
        recovered.close()

    def test_orphan_partition_dirs_do_not_leak_into_recreated_topic(self, tmp_path):
        """A delete that crashed after the durable unregister but before
        the data rmtree leaves orphan partition dirs; re-creating the topic
        must start empty, not inherit the old generation's records."""
        import shutil as sh

        broker = DurableBroker(tmp_path)
        broker.create_topic("t", 1)
        broker.append("t", 0, None, b"old-generation")
        broker.close()
        # Simulate the crashed delete: unregistered, data left behind.
        (tmp_path / "topics.json").write_text("{}", encoding="utf-8")

        recovered = DurableBroker(tmp_path)
        assert recovered.topics() == []
        recovered.create_topic("t", 1)
        assert recovered.total_records("t") == 0
        recovered.simulate_crash()
        final = DurableBroker(tmp_path)
        assert final.total_records("t") == 0
        final.close()
        sh.rmtree(tmp_path / "topics", ignore_errors=True)

    def test_append_to_unknown_topic_is_not_journaled(self, tmp_path):
        broker = DurableBroker(tmp_path)
        with pytest.raises(UnknownTopicError):
            broker.append("ghost", 0, None, b"x")
        broker.close()
        assert not (tmp_path / "topics" / "ghost").exists()

    def test_recreating_topic_is_idempotent(self, tmp_path):
        broker = DurableBroker(tmp_path)
        broker.create_topic("t", 2)
        broker.append("t", 0, None, b"x")
        broker.create_topic("t", 2)
        assert broker.total_records("t") == 1
        broker.close()


def make_alarm(seq=None, device="dev-1", timestamp=1000.0):
    extras = {} if seq is None else {"_event_seq": seq}
    return Alarm(
        device_address=device, zip_code="8000", timestamp=timestamp,
        alarm_type="burglary", property_type="residential",
        duration_seconds=30.0, extras=extras,
    )


def make_verification(alarm):
    from repro.core import Verification
    return Verification(alarm=alarm, is_false=True, probability_false=0.9)


class TestVerificationLog:
    def test_uid_prefers_event_seq_and_falls_back_to_content_hash(self):
        assert alarm_uid(make_alarm(seq=7)) == "seq::7"
        a = alarm_uid(make_alarm())
        assert a.startswith("sha:")
        assert a == alarm_uid(make_alarm())
        assert a != alarm_uid(make_alarm(timestamp=1001.0))

    def test_uid_is_scoped_by_timeline(self):
        """The same seq from two different timelines (scenario/seed pairs)
        must be two identities — replaying a *different* scenario into one
        durable store is new data, not a duplicate."""
        one = Alarm(
            device_address="d", zip_code="8000", timestamp=1.0,
            alarm_type="fire", property_type="residential",
            duration_seconds=1.0,
            extras={"_event_seq": 3, "_timeline_id": "storm/1"},
        )
        other = Alarm(
            device_address="d", zip_code="8000", timestamp=1.0,
            alarm_type="fire", property_type="residential",
            duration_seconds=1.0,
            extras={"_event_seq": 3, "_timeline_id": "storm/2"},
        )
        assert alarm_uid(one) == "seq:storm/1:3"
        assert alarm_uid(one) != alarm_uid(other)

    def test_record_batch_is_idempotent(self):
        log = VerificationLog(DocumentStore())
        window = [make_verification(make_alarm(seq=i)) for i in range(4)]
        fresh = log.record_batch(window)
        assert len(fresh) == 4
        replayed = log.record_batch(window)  # crash-recovery re-processing
        assert replayed == []
        assert log.duplicates_skipped == 4
        assert log.count() == 4
        assert log.duplicate_uids() == []

    def test_within_batch_redeliveries_collapse(self):
        log = VerificationLog(DocumentStore())
        window = [
            make_verification(make_alarm(seq=1)),
            make_verification(make_alarm(seq=1)),  # at-least-once redelivery
        ]
        assert len(log.record_batch(window)) == 1
        assert log.duplicates_skipped == 1

    def test_grouped_history_write_is_atomic_with_verifications(self, tmp_path):
        """On a shared durable store the sink journals verification docs and
        history rows as ONE WAL record, so recovery restores both or
        neither — never a verification without its history row."""
        store = DurableDocumentStore(tmp_path)
        history = AlarmHistory(store=store)
        log = VerificationLog(store)
        lsn_before = store.wal.next_lsn
        window = [make_verification(make_alarm(seq=i)) for i in range(3)]
        fresh = log.record_batch(window, history=history)
        assert len(fresh) == 3
        assert store.wal.next_lsn == lsn_before + 1, \
            "verifications + history must be one journaled group"
        store.simulate_crash()

        recovered = DurableDocumentStore(tmp_path)
        assert len(recovered.collection("verifications")) == 3
        assert len(recovered.collection("alarms")) == 3
        recovered.close()

    def test_record_batch_with_separate_history_store(self):
        """Different stores (the in-memory configuration): the fresh subset
        still reaches the history exactly once."""
        log = VerificationLog(DocumentStore())
        history = AlarmHistory()
        window = [make_verification(make_alarm(seq=i)) for i in range(5)]
        assert len(log.record_batch(window, history=history)) == 5
        assert len(history) == 5
        assert log.record_batch(window, history=history) == []
        assert len(history) == 5

    def test_consumer_app_reprocessing_is_exactly_once(self):
        """Two consumer groups over the same records, one shared sink: the
        second (simulating a post-crash replay from offset 0) writes nothing
        new to the sink or the history."""
        from repro.streaming import Broker, Producer

        class StubService:
            def verify_batch(self, alarms):
                return [make_verification(a) for a in alarms]

        store = DocumentStore()
        log = VerificationLog(store)
        history = AlarmHistory()
        broker = Broker()
        broker.create_topic("alarms", num_partitions=1)
        producer = Producer(broker)
        docs = [make_alarm(seq=i).to_document() for i in range(20)]
        producer.send_many("alarms", docs,
                           key_fn=lambda d: d["device_address"])

        first = ConsumerApplication(
            broker, "alarms", "g1", StubService(), history=history,
            verification_log=log,
        )
        report1 = first.process_available()
        assert report1.alarms_processed == 20
        assert report1.duplicates_skipped == 0

        replay = ConsumerApplication(
            broker, "alarms", "g2-pretend-crash", StubService(),
            history=history, verification_log=log,
        )
        report2 = replay.process_available()
        assert report2.alarms_processed == 20
        assert report2.duplicates_skipped == 20
        assert log.count() == 20
        assert len(history) == 20, "deduped alarms must not reach the history"


class TestDurableLoadDriver:
    def test_injected_history_is_rejected_in_durable_mode(self, tmp_path):
        from repro.errors import ConfigurationError
        from repro.workload import ConstantRate, DatasetSpec, Scenario, LoadDriver

        scenario = Scenario(
            name="t", arrivals=ConstantRate(rate=1.0), duration=10.0,
            dataset=DatasetSpec(num_devices=50, train_alarms=200),
        )
        with pytest.raises(ConfigurationError, match="durable"):
            LoadDriver(scenario, durable_dir=tmp_path,
                       history=AlarmHistory())

    def test_process_crash_without_durable_dir_is_rejected(self):
        from repro.errors import ConfigurationError
        from repro.workload import (
            ConstantRate, DatasetSpec, FaultInjection, Scenario, LoadDriver,
        )

        scenario = Scenario(
            name="t", arrivals=ConstantRate(rate=1.0), duration=10.0,
            dataset=DatasetSpec(num_devices=50, train_alarms=200),
            faults=(FaultInjection(kind="process_crash", start=5.0, end=6.0),),
        )
        with pytest.raises(ConfigurationError, match="process_crash"):
            LoadDriver(scenario)


class TestRecoveryManager:
    def test_fresh_directory_yields_empty_components(self, tmp_path):
        manager = RecoveryManager(tmp_path)
        report = manager.recover()
        assert report.broker_records == 0
        assert report.store_ops_replayed == 0
        assert manager.broker.topics() == []
        manager.close()

    def test_crash_and_recover_reports_the_cut(self, tmp_path):
        manager = RecoveryManager(tmp_path, offset_checkpoint_every=1)
        manager.recover()
        manager.broker.create_topic("t", 1)
        manager.broker.append_batch("t", 0, [(None, b"r")] * 4)
        manager.broker.commit("g", {TopicPartition("t", 0): 2})
        coll = manager.store.collection("c")
        coll.insert_many([{"i": i} for i in range(3)])
        manager.crash()

        report = manager.recover()
        assert report.broker_records == 4
        assert report.broker_offsets == 1
        assert report.topics == ["t"]
        assert report.store_ops_replayed == 1
        assert report.seconds > 0
        assert "recovered 4 broker records" in report.summary()
        assert len(manager.store.collection("c")) == 3
        manager.close()

    def test_recover_after_clean_close_is_lossless(self, tmp_path):
        manager = RecoveryManager(tmp_path)
        manager.recover()
        manager.broker.create_topic("t", 1)
        manager.broker.append("t", 0, None, b"x")
        manager.store.collection("c").insert_one({"a": 1})
        manager.close()
        report = manager.recover()
        assert report.broker_records == 1
        assert len(manager.store.collection("c")) == 1
        manager.close()
