"""Tests for the extension modules: time windows, calibration, retraining,
cost model."""

import numpy as np
import pytest

from repro.core import (
    Alarm,
    AlarmHistory,
    CostModel,
    RetrainingManager,
    Verification,
    VerificationService,
)
from repro.datasets import SitasysGenerator
from repro.errors import ConfigurationError, DimensionMismatchError
from repro.ml import (
    FeaturePipeline,
    LogisticRegression,
    brier_score,
    confidence_histogram,
    expected_calibration_error,
    reliability_curve,
)
from repro.streaming import SlidingWindows, TumblingWindows, Window, windowed_counts

CATS = ["location", "property_type", "alarm_type", "hour_of_day",
        "day_of_week", "sensor_type", "software_version"]


class TestTimeWindows:
    def test_tumbling_assignment_is_unique_and_aligned(self):
        windows = TumblingWindows(60.0)
        assigned = windows.assign(125.0)
        assert assigned == [Window(120.0, 180.0)]
        assert assigned[0].contains(125.0)

    def test_tumbling_boundary_goes_to_next_window(self):
        windows = TumblingWindows(60.0)
        assert windows.assign(120.0) == [Window(120.0, 180.0)]

    def test_sliding_assignment_covers_timestamp(self):
        windows = SlidingWindows(60.0, 20.0)
        assigned = windows.assign(125.0)
        assert len(assigned) == 3  # ceil(60/20)
        assert all(w.contains(125.0) for w in assigned)
        starts = [w.start for w in assigned]
        assert starts == sorted(starts)

    def test_sliding_equal_to_tumbling_when_slide_is_size(self):
        sliding = SlidingWindows(60.0, 60.0)
        tumbling = TumblingWindows(60.0)
        assert sliding.assign(95.0) == tumbling.assign(95.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TumblingWindows(0.0)
        with pytest.raises(ConfigurationError):
            SlidingWindows(10.0, 20.0)

    def test_windowed_counts_per_device(self):
        events = [
            {"device": "a", "ts": 5.0},
            {"device": "a", "ts": 15.0},
            {"device": "b", "ts": 15.0},
            {"device": "a", "ts": 65.0},
        ]
        counts = windowed_counts(
            events, TumblingWindows(60.0),
            timestamp_fn=lambda e: e["ts"], key_fn=lambda e: e["device"],
        )
        first = counts[Window(0.0, 60.0)]
        second = counts[Window(60.0, 120.0)]
        assert first == {"a": 2, "b": 1}
        assert second == {"a": 1}

    def test_sliding_counts_overlap(self):
        events = [{"ts": 25.0}]
        counts = windowed_counts(
            events, SlidingWindows(40.0, 20.0),
            timestamp_fn=lambda e: e["ts"], key_fn=lambda e: "k",
        )
        assert len(counts) == 2  # the record lands in two sliding windows


class TestCalibration:
    def test_brier_perfect_and_worst(self):
        assert brier_score([1, 0], [1.0, 0.0]) == 0.0
        assert brier_score([1, 0], [0.0, 1.0]) == 1.0

    def test_brier_uninformed(self):
        assert brier_score([1, 0], [0.5, 0.5]) == pytest.approx(0.25)

    def test_reliability_curve_perfectly_calibrated(self):
        rng = np.random.default_rng(0)
        proba = rng.uniform(size=5000)
        outcomes = (rng.uniform(size=5000) < proba).astype(int)
        bins = reliability_curve(outcomes, proba, n_bins=5)
        assert all(bin_.gap < 0.05 for bin_ in bins)

    def test_reliability_curve_counts_sum(self):
        proba = np.linspace(0, 1, 100)
        outcomes = (proba > 0.5).astype(int)
        bins = reliability_curve(outcomes, proba, n_bins=10)
        assert sum(b.count for b in bins) == 100

    def test_ece_detects_overconfidence(self):
        # Model says 0.99 but is right only half the time.
        proba = np.full(200, 0.99)
        outcomes = np.array([1, 0] * 100)
        assert expected_calibration_error(outcomes, proba) > 0.4

    def test_ece_zero_for_perfect_model(self):
        assert expected_calibration_error([1, 1, 0, 0], [1, 1, 0, 0]) == 0.0

    def test_confidence_histogram_counts(self):
        histogram = confidence_histogram([0.5, 0.95, 0.05, 0.7], n_bins=5)
        assert sum(histogram.values()) == 4

    def test_validation(self):
        with pytest.raises(DimensionMismatchError):
            brier_score([1], [0.5, 0.5])
        with pytest.raises(DimensionMismatchError):
            brier_score([2], [0.5])
        with pytest.raises(DimensionMismatchError):
            brier_score([1], [1.5])
        with pytest.raises(ConfigurationError):
            reliability_curve([1], [0.5], n_bins=0)


@pytest.fixture(scope="module")
def trained_world():
    generator = SitasysGenerator(num_devices=100, seed=11)
    alarms = generator.generate(1500)
    history = AlarmHistory()
    history.record_batch(alarms[:800])

    def factory():
        return FeaturePipeline(LogisticRegression(max_iter=60), CATS)

    service = VerificationService(factory().fit(
        [a.to_document() and _features(a) for a in alarms[:200]],
        [a.duration_seconds < 60.0 for a in alarms[:200]],
    ))
    return generator, alarms, history, factory, service


def _features(alarm: Alarm) -> dict:
    return {
        "location": alarm.zip_code, "property_type": alarm.property_type,
        "alarm_type": alarm.alarm_type, "hour_of_day": alarm.hour_of_day,
        "day_of_week": alarm.day_of_week, "sensor_type": alarm.sensor_type,
        "software_version": alarm.software_version,
    }


class TestRetrainingManager:
    def test_not_due_without_new_alarms(self, trained_world):
        _, _, history, factory, service = trained_world
        manager = RetrainingManager(history, factory, service, min_new_alarms=100)
        assert not manager.is_due()
        assert manager.maybe_retrain() is None

    def test_due_after_enough_new_alarms(self, trained_world):
        generator, alarms, _, factory, _ = trained_world
        history = AlarmHistory()
        history.record_batch(alarms[:300])
        service = VerificationService(factory().fit(
            [_features(a) for a in alarms[:100]],
            [a.duration_seconds < 60.0 for a in alarms[:100]],
        ))
        manager = RetrainingManager(history, factory, service, min_new_alarms=100)
        history.record_batch(alarms[300:500])
        assert manager.new_alarms_since_last_build() == 200
        record = manager.maybe_retrain()
        assert record is not None
        assert record.version == 1
        assert record.training_alarms == 500
        assert record.training_accuracy > 0.7
        assert manager.new_alarms_since_last_build() == 0

    def test_swaps_serving_pipeline(self, trained_world):
        _, alarms, _, factory, _ = trained_world
        history = AlarmHistory()
        history.record_batch(alarms[:400])
        service = VerificationService(factory().fit(
            [_features(a) for a in alarms[:50]],
            [a.duration_seconds < 60.0 for a in alarms[:50]],
        ))
        before = service.pipeline
        manager = RetrainingManager(history, factory, service, min_new_alarms=1)
        manager.retrain()
        assert service.pipeline is not before
        assert service.verify(alarms[0]).probability_false >= 0.0

    def test_interval_gate(self, trained_world):
        _, alarms, _, factory, _ = trained_world
        history = AlarmHistory()
        history.record_batch(alarms[:400])
        service = VerificationService(factory().fit(
            [_features(a) for a in alarms[:50]],
            [a.duration_seconds < 60.0 for a in alarms[:50]],
        ))
        manager = RetrainingManager(
            history, factory, service,
            min_new_alarms=1, min_interval_seconds=3600.0,
        )
        manager.retrain(now=1000.0)
        history.record_batch(alarms[400:500])
        assert not manager.is_due(now=2000.0)   # inside the interval
        assert manager.is_due(now=1000.0 + 3601.0)

    def test_max_training_alarms_cap(self, trained_world):
        _, alarms, _, factory, _ = trained_world
        history = AlarmHistory()
        history.record_batch(alarms[:600])
        service = VerificationService(factory().fit(
            [_features(a) for a in alarms[:50]],
            [a.duration_seconds < 60.0 for a in alarms[:50]],
        ))
        manager = RetrainingManager(
            history, factory, service, min_new_alarms=1, max_training_alarms=250,
        )
        record = manager.retrain()
        assert record.training_alarms == 250

    def test_empty_history_raises(self, trained_world):
        _, _, _, factory, service = trained_world
        manager = RetrainingManager(AlarmHistory(), factory, service)
        with pytest.raises(ConfigurationError):
            manager.retrain()

    def test_validation(self, trained_world):
        _, _, history, factory, service = trained_world
        with pytest.raises(ConfigurationError):
            RetrainingManager(history, factory, service, min_new_alarms=0)
        with pytest.raises(ConfigurationError):
            RetrainingManager(history, factory, service, min_interval_seconds=-1)


def make_verification(p_false, alarm_type="intrusion"):
    alarm = Alarm(
        device_address="d", zip_code="8001", timestamp=0.0,
        alarm_type=alarm_type, property_type="residential",
        duration_seconds=10.0,
    )
    return Verification(alarm=alarm, is_false=p_false >= 0.5,
                        probability_false=p_false)


class TestCostModel:
    def test_perfect_classifier_costs_less_than_inverted(self):
        model = CostModel()
        verifications = [make_verification(0.95), make_verification(0.05)]
        aligned = model.evaluate(verifications, [True, False], threshold=0.5)
        inverted = model.evaluate(verifications, [False, True], threshold=0.5)
        assert aligned.total_cost < inverted.total_cost

    def test_suppressing_true_alarm_incurs_missed_cost(self):
        model = CostModel(missed_true_cost=9999.0)
        verification = make_verification(0.2, alarm_type="technical")
        point = model.evaluate([verification], [False], threshold=0.5,
                               suppress_alarm_types=frozenset({"technical"}))
        assert point.missed_true == 1
        assert point.total_cost >= 9999.0

    def test_dispatch_to_false_counted_at_arc(self):
        model = CostModel(false_dispatch_cost=100.0, arc_handling_cost=1.0)
        # Confidently "true" but actually false -> ARC dispatch wasted.
        point = model.evaluate([make_verification(0.1)], [True], threshold=0.5)
        assert point.arc_handled == 1
        assert point.dispatches_to_false == 1
        assert point.total_cost == pytest.approx(101.0)

    def test_customer_route_is_cheap(self):
        model = CostModel(customer_ping_cost=0.5, arc_handling_cost=10.0,
                          customer_answer_rate=1.0)
        point = model.evaluate([make_verification(0.9)], [True], threshold=0.5)
        assert point.customer_handled == 1
        assert point.total_cost == pytest.approx(0.5)

    def test_sweep_produces_one_point_per_threshold(self):
        model = CostModel()
        verifications = [make_verification(p) for p in (0.1, 0.4, 0.6, 0.9)]
        truths = [False, False, True, True]
        points = model.sweep(verifications, truths, thresholds=(0.2, 0.5, 0.8))
        assert [p.threshold for p in points] == [0.2, 0.5, 0.8]

    def test_best_threshold_prefers_cheaper_operation(self):
        model = CostModel(false_dispatch_cost=1000.0, customer_ping_cost=0.1,
                          arc_handling_cost=1.0, customer_answer_rate=1.0)
        # All alarms false and correctly scored: high thresholds (send to
        # customer) must win because ARC dispatches are expensive.
        verifications = [make_verification(0.95) for _ in range(20)]
        truths = [True] * 20
        best = model.best_threshold(verifications, truths,
                                    thresholds=(0.05, 0.5, 0.95))
        assert best >= 0.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CostModel(false_dispatch_cost=-1.0)
        with pytest.raises(ConfigurationError):
            CostModel(customer_answer_rate=1.5)
        with pytest.raises(ConfigurationError):
            CostModel().evaluate([make_verification(0.5)], [], threshold=0.5)
