"""Integration tests across the whole system.

These wire real components together the way the paper's deployment does:
train offline -> produce alarms into the broker -> consume, verify and
archive -> inspect histograms, routing and timing breakdowns; plus the
hybrid path incidents -> risk model -> enriched verification.
"""

import pytest

from repro.core import (
    AlarmHistory,
    ConsumerApplication,
    MySecurityCenter,
    ProducerApplication,
    RoutingPolicy,
    VerificationService,
    label_alarms,
)
from repro.datasets import (
    Gazetteer,
    IncidentReportGenerator,
    SitasysGenerator,
)
from repro.ml import FeaturePipeline, LogisticRegression, RandomForestClassifier
from repro.risk import RiskModel, incident_counts
from repro.storage import DocumentStore
from repro.streaming import Broker, ReflectiveJsonSerializer
from repro.text import IncidentPipeline

CATS = ["location", "property_type", "alarm_type", "hour_of_day",
        "day_of_week", "sensor_type", "software_version"]


@pytest.fixture(scope="module")
def world():
    gazetteer = Gazetteer(num_localities=300, seed=7)
    generator = SitasysGenerator(gazetteer=gazetteer, num_devices=300, seed=11)
    alarms = generator.generate(3000)
    train, test = alarms[:1500], alarms[1500:]
    labeled = label_alarms(train, 60.0)
    pipeline = FeaturePipeline(LogisticRegression(max_iter=120), CATS)
    pipeline.fit([l.features() for l in labeled], [l.is_false for l in labeled])
    return gazetteer, generator, train, test, pipeline


class TestStreamingEndToEnd:
    def test_produce_consume_verify_archive(self, world):
        _, _, _, test, pipeline = world
        broker = Broker()
        broker.create_topic("alarms", num_partitions=4)
        producer = ProducerApplication(broker, "alarms", test, seed=1)
        report = producer.run(600, num_threads=2)
        assert report.records_sent == 600

        history = AlarmHistory()
        consumer = ConsumerApplication(
            broker, "alarms", "verify", VerificationService(pipeline),
            history=history, keep_verifications=True,
        )
        run = consumer.process_available(max_records=250)
        assert run.alarms_processed == 600
        assert len(history) == 600
        assert len(run.verifications) == 600
        assert run.windows >= 2  # multiple micro-batches

    def test_breakdown_is_ml_dominated(self, world):
        _, _, train, test, _ = world
        # The Figure 12 shape (ml dominates the window time) holds for the
        # paper's production classifier, a random forest.  The shared LR
        # fixture pipeline is too cheap at inference time: its ml share
        # ties with the history write and the assertion flips on scheduler
        # noise, so this test trains the forest it actually measures.
        labeled = label_alarms(train, 60.0)
        forest = FeaturePipeline(
            RandomForestClassifier(n_estimators=12, max_depth=20, random_state=0),
            CATS, encoding="ordinal",
        )
        forest.fit([l.features() for l in labeled], [l.is_false for l in labeled])
        broker = Broker()
        broker.create_topic("alarms", num_partitions=2)
        ProducerApplication(broker, "alarms", test, seed=2).run(400)
        consumer = ConsumerApplication(
            broker, "alarms", "verify", VerificationService(forest)
        )
        run = consumer.process_available()
        breakdown = run.breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)
        assert breakdown["ml"] == max(breakdown.values())  # Figure 12 shape

    def test_exactly_once_across_consumer_restart(self, world):
        _, _, _, test, pipeline = world
        broker = Broker()
        broker.create_topic("alarms", num_partitions=2)
        ProducerApplication(broker, "alarms", test, seed=3).run(300)
        history = AlarmHistory()

        first = ConsumerApplication(
            broker, "alarms", "grp", VerificationService(pipeline), history=history
        )
        first.process_available(max_records=120)

        second = ConsumerApplication(
            broker, "alarms", "grp", VerificationService(pipeline), history=history
        )
        second.process_available(max_records=120)
        assert len(history) == 300  # every alarm archived exactly once

    def test_reflective_serializer_end_to_end(self, world):
        _, _, _, test, pipeline = world
        broker = Broker()
        broker.create_topic("alarms", num_partitions=1)
        ProducerApplication(
            broker, "alarms", test, serializer=ReflectiveJsonSerializer(), seed=4
        ).run(100)
        consumer = ConsumerApplication(
            broker, "alarms", "verify", VerificationService(pipeline),
            serializer=ReflectiveJsonSerializer(),
        )
        assert consumer.process_available().alarms_processed == 100

    def test_repartition_processes_everything(self, world):
        _, _, _, test, pipeline = world
        broker = Broker()
        broker.create_topic("alarms", num_partitions=1)
        ProducerApplication(broker, "alarms", test, seed=5).run(200)
        consumer = ConsumerApplication(
            broker, "alarms", "verify", VerificationService(pipeline),
            repartition=4,
        )
        assert consumer.process_available().alarms_processed == 200

    def test_histogram_reflects_device_history(self, world):
        _, _, _, test, pipeline = world
        broker = Broker()
        broker.create_topic("alarms", num_partitions=2)
        ProducerApplication(broker, "alarms", test, seed=6).run(150)
        consumer = ConsumerApplication(
            broker, "alarms", "verify", VerificationService(pipeline)
        )
        consumer.process_available()
        assert sum(consumer.last_histogram.values()) >= 0
        assert len(consumer.history) == 150

    def test_routing_after_verification(self, world):
        _, _, _, test, pipeline = world
        broker = Broker()
        broker.create_topic("alarms", num_partitions=2)
        ProducerApplication(broker, "alarms", test, seed=7).run(200)
        consumer = ConsumerApplication(
            broker, "alarms", "verify", VerificationService(pipeline),
            keep_verifications=True,
        )
        run = consumer.process_available()
        center = MySecurityCenter(RoutingPolicy(
            true_threshold=0.6, suppress_alarm_types=frozenset({"technical"})
        ))
        counts = center.route_batch(run.verifications)
        assert sum(counts.values()) == 200
        assert counts["suppressed"] > 0  # technical alarms exist in the mix


class TestHybridEndToEnd:
    def test_incidents_to_risk_to_enriched_model(self, world):
        gazetteer, generator, train, test, _ = world
        reports = IncidentReportGenerator(
            gazetteer, generator.locality_risk, coverage=0.3, seed=17
        ).generate(600)
        store = DocumentStore()
        incidents = store.collection("incidents")
        stats = IncidentPipeline(gazetteer.names()).run(reports, incidents)
        assert stats.stored > 0

        risk = RiskModel(
            incident_counts(incidents.all_documents()), gazetteer.populations()
        )
        assert len(risk) > 0

        labeled = label_alarms(train, 60.0)
        enriched_pipeline = FeaturePipeline(
            RandomForestClassifier(n_estimators=5, max_depth=10, random_state=0),
            CATS, numeric_features=["risk"], encoding="ordinal",
        )
        records = [
            l.features(risk=risk.absolute(a.locality))
            for l, a in zip(labeled, train)
        ]
        enriched_pipeline.fit(records, [l.is_false for l in labeled])
        service = VerificationService(
            enriched_pipeline, risk_model=risk, risk_kind="absolute"
        )
        verifications = service.verify_batch(test[:50])
        assert len(verifications) == 50
        assert all(0.0 <= v.probability_false <= 1.0 for v in verifications)

    def test_store_persistence_of_full_state(self, world, tmp_path):
        gazetteer, generator, train, _, _ = world
        store = DocumentStore()
        history = AlarmHistory(store=store)
        history.record_batch(train[:50])
        reports = IncidentReportGenerator(
            gazetteer, generator.locality_risk, coverage=0.3, seed=18
        ).generate(100)
        IncidentPipeline(gazetteer.names()).run(reports, store.collection("incidents"))
        store.save(tmp_path / "db")

        loaded = DocumentStore.load(tmp_path / "db")
        assert len(loaded.collection("alarms")) == 50
        assert len(loaded.collection("incidents")) > 0
        # Rebuild a history over the loaded store and query it.
        loaded_history = AlarmHistory(store=loaded)
        assert sum(loaded_history.alarms_by_zip().values()) == 50
