"""Integration: the nightly-retrain loop inside the streaming deployment,
plus broker thread-safety under concurrent producers."""

import threading

import pytest

from repro.core import (
    AlarmHistory,
    ConsumerApplication,
    ProducerApplication,
    RetrainingManager,
    VerificationService,
    label_alarms,
)
from repro.datasets import SitasysGenerator
from repro.ml import FeaturePipeline, LogisticRegression
from repro.streaming import Broker, Consumer, Producer

CATS = ["location", "property_type", "alarm_type", "hour_of_day",
        "day_of_week", "sensor_type", "software_version"]


def pipeline_factory():
    return FeaturePipeline(LogisticRegression(max_iter=80), CATS)


class TestRetrainInsideStreamingLoop:
    def test_consumer_traffic_triggers_retrain_and_service_improves(self):
        generator = SitasysGenerator(num_devices=150, seed=11)
        alarms = generator.generate(3000)
        seed_alarms, live_traffic, evaluation = (
            alarms[:300], alarms[300:2300], alarms[2300:]
        )

        # Day 0: a weak model trained on very little history.
        history = AlarmHistory()
        history.record_batch(seed_alarms)
        labeled_seed = label_alarms(seed_alarms[:100], 60.0)
        weak = pipeline_factory()
        weak.fit([l.features() for l in labeled_seed],
                 [l.is_false for l in labeled_seed])
        service = VerificationService(weak)
        manager = RetrainingManager(
            history, pipeline_factory, service, min_new_alarms=1500,
        )

        labeled_eval = label_alarms(evaluation, 60.0)
        def service_accuracy() -> float:
            verifications = service.verify_batch(evaluation)
            return sum(
                v.is_false == l.is_false
                for v, l in zip(verifications, labeled_eval)
            ) / len(evaluation)

        accuracy_before = service_accuracy()
        assert manager.maybe_retrain() is None  # not enough new data yet

        # A day of live traffic flows through the streaming deployment and
        # lands in the history via the consumer.
        broker = Broker()
        broker.create_topic("alarms", num_partitions=3)
        ProducerApplication(broker, "alarms", live_traffic, seed=1).run(2000)
        consumer = ConsumerApplication(
            broker, "alarms", "verify", service, history=history,
        )
        consumer.process_available(max_records=500)
        assert manager.new_alarms_since_last_build() >= 1500

        # Midnight: the retrain fires and swaps the model atomically.
        record = manager.maybe_retrain()
        assert record is not None and record.version == 1
        accuracy_after = service_accuracy()
        assert accuracy_after >= accuracy_before - 0.02
        assert record.training_alarms == len(history)

    def test_repeated_cycles_bump_versions(self):
        generator = SitasysGenerator(num_devices=80, seed=3)
        alarms = generator.generate(1200)
        history = AlarmHistory()
        history.record_batch(alarms[:400])
        labeled = label_alarms(alarms[:100], 60.0)
        pipe = pipeline_factory()
        pipe.fit([l.features() for l in labeled], [l.is_false for l in labeled])
        service = VerificationService(pipe)
        manager = RetrainingManager(
            history, pipeline_factory, service, min_new_alarms=300,
        )
        for cycle, start in enumerate((400, 700), start=1):
            history.record_batch(alarms[start : start + 300])
            record = manager.maybe_retrain()
            assert record is not None
            assert record.version == cycle
        assert len(manager.log) == 2


class TestBrokerThreadSafety:
    def test_concurrent_producers_conserve_records(self):
        broker = Broker()
        broker.create_topic("alarms", num_partitions=4)

        def produce(offset: int) -> None:
            producer = Producer(broker)
            producer.send_many(
                "alarms",
                [{"i": offset + i} for i in range(500)],
                key_fn=lambda v: str(v["i"] % 7),
            )

        threads = [
            threading.Thread(target=produce, args=(t * 500,)) for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        consumer = Consumer(broker, "check")
        consumer.subscribe("alarms")
        seen = sorted(v["i"] for v in consumer.stream_values(max_records=97))
        assert seen == list(range(2000))

    def test_concurrent_producer_and_consumer(self):
        broker = Broker()
        broker.create_topic("alarms", num_partitions=2)
        received: list[int] = []
        done = threading.Event()

        def produce() -> None:
            producer = Producer(broker)
            producer.send_many("alarms", [{"i": i} for i in range(800)])
            done.set()

        def consume() -> None:
            consumer = Consumer(broker, "g")
            consumer.subscribe("alarms")
            while not done.is_set() or sum(consumer.lag().values()) > 0:
                received.extend(v["i"] for v in consumer.poll_values(50))
                consumer.commit()

        producer_thread = threading.Thread(target=produce)
        consumer_thread = threading.Thread(target=consume)
        consumer_thread.start()
        producer_thread.start()
        producer_thread.join()
        consumer_thread.join(timeout=10)
        assert sorted(received) == list(range(800))
