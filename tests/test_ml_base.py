"""Tests for the shared classifier contract helpers."""

import numpy as np
import pytest

from repro.errors import DimensionMismatchError, NotFittedError
from repro.ml import FeaturePipeline, RandomForestClassifier, check_X, check_Xy
from repro.ml.base import BaseClassifier, check_fitted


class TestCheckX:
    def test_coerces_lists(self):
        out = check_X([[1, 2], [3, 4]])
        assert out.dtype == np.float64
        assert out.shape == (2, 2)

    def test_promotes_1d_to_column(self):
        assert check_X([1.0, 2.0, 3.0]).shape == (3, 1)

    def test_rejects_3d(self):
        with pytest.raises(DimensionMismatchError):
            check_X(np.zeros((2, 2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(DimensionMismatchError):
            check_X(np.zeros((0, 3)))

    def test_rejects_nan_and_inf(self):
        with pytest.raises(DimensionMismatchError):
            check_X([[np.nan]])
        with pytest.raises(DimensionMismatchError):
            check_X([[np.inf]])


class TestCheckXy:
    def test_accepts_float_integer_labels(self):
        _, y = check_Xy([[1.0], [2.0]], [0.0, 1.0])
        assert y.dtype == np.int64

    def test_rejects_fractional_labels(self):
        with pytest.raises(DimensionMismatchError):
            check_Xy([[1.0]], [0.5])

    def test_rejects_negative_labels(self):
        with pytest.raises(DimensionMismatchError):
            check_Xy([[1.0]], [-1])

    def test_rejects_length_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            check_Xy([[1.0], [2.0]], [0])

    def test_rejects_2d_labels(self):
        with pytest.raises(DimensionMismatchError):
            check_Xy([[1.0]], [[0]])


class TestCheckFitted:
    def test_raises_before_fit(self):
        class Stub(BaseClassifier):
            pass

        with pytest.raises(NotFittedError):
            check_fitted(Stub())

    def test_passes_after_attribute_set(self):
        class Stub(BaseClassifier):
            pass

        model = Stub()
        model.n_classes_ = 2
        check_fitted(model)

    def test_get_params_excludes_fitted_state(self):
        model = RandomForestClassifier(n_estimators=3, max_depth=2)
        params = model.get_params()
        assert params["n_estimators"] == 3
        assert "trees_" not in params
        assert "n_classes_" not in params


class TestArityCappedMarking:
    """FeaturePipeline's Spark-maxBins-style categorical marking."""

    def test_high_arity_column_stays_continuous(self):
        records = (
            [{"wide": str(i), "narrow": i % 3} for i in range(100)]
        )
        labels = [i % 2 == 0 for i in range(100)]
        model = RandomForestClassifier(n_estimators=2, max_depth=3, random_state=0)
        FeaturePipeline(
            model, ["wide", "narrow"], encoding="ordinal",
            max_categorical_arity=32,
        ).fit(records, labels)
        # "wide" has 100 categories -> continuous; "narrow" has 3 -> marked.
        assert model.categorical_features == frozenset({1})

    def test_cap_is_configurable(self):
        records = [{"wide": str(i)} for i in range(50)]
        labels = [i % 2 == 0 for i in range(50)]
        model = RandomForestClassifier(n_estimators=2, max_depth=3, random_state=0)
        FeaturePipeline(
            model, ["wide"], encoding="ordinal", max_categorical_arity=100,
        ).fit(records, labels)
        assert model.categorical_features == frozenset({0})
