"""Tests for the Section 2.4 extensions: majority vote + adaptive selection."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ml import (
    AdaptiveModelSelector,
    DecisionTreeClassifier,
    LogisticRegression,
    MajorityVoteClassifier,
    NeuralNetworkClassifier,
)


def make_linear(n=400, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 3))
    y = ((X[:, 0] - X[:, 1]) > 0).astype(int)
    return X, y


def make_members():
    return [
        DecisionTreeClassifier(max_depth=6, random_state=0),
        LogisticRegression(max_iter=150),
        NeuralNetworkClassifier(hidden_layers=(8,), max_epochs=25,
                                batch_size=64, random_state=0),
    ]


class TestMajorityVote:
    def test_soft_vote_learns(self):
        X, y = make_linear()
        ensemble = MajorityVoteClassifier(make_members()).fit(X, y)
        assert ensemble.score(X, y) >= 0.93

    def test_soft_proba_is_mean_of_members(self):
        X, y = make_linear(200)
        ensemble = MajorityVoteClassifier(make_members()).fit(X, y)
        manual = np.mean([m.predict_proba(X) for m in ensemble.members], axis=0)
        assert np.allclose(ensemble.predict_proba(X), manual)

    def test_hard_vote_probability_is_vote_share(self):
        X, y = make_linear(200)
        ensemble = MajorityVoteClassifier(make_members(), voting="hard").fit(X, y)
        proba = ensemble.predict_proba(X)
        share = 1.0 / len(ensemble.members)
        # Every entry is a multiple of one vote share.
        assert np.allclose(np.mod(proba / share, 1.0), 0.0, atol=1e-9)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_weights_bias_the_vote(self):
        X, y = make_linear(200)
        members = make_members()
        heavy_first = MajorityVoteClassifier(members, weights=[10.0, 0.1, 0.1]).fit(X, y)
        first_only = members[0]
        agreement = np.mean(heavy_first.predict(X) == first_only.predict(X))
        assert agreement > 0.95

    def test_member_agreement_bounds(self):
        X, y = make_linear(200)
        ensemble = MajorityVoteClassifier(make_members()).fit(X, y)
        agreement = ensemble.member_agreement(X)
        assert ((agreement >= 0) & (agreement <= 1)).all()
        assert agreement.mean() > 0.6

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MajorityVoteClassifier([])
        with pytest.raises(ConfigurationError):
            MajorityVoteClassifier(make_members(), voting="ranked")
        with pytest.raises(ConfigurationError):
            MajorityVoteClassifier(make_members(), weights=[1.0])
        with pytest.raises(ConfigurationError):
            MajorityVoteClassifier(make_members(), weights=[0.0, 0.0, 0.0])


class _FixedAccuracyModel:
    """Stub model whose predictions are correct with a fixed probability."""

    def __init__(self, accuracy, seed=0):
        self.accuracy = accuracy
        self._rng = np.random.default_rng(seed)

    def predict(self, X):
        # "Truth" is all-ones; be right with probability `accuracy`.
        correct = self._rng.uniform(size=len(X)) < self.accuracy
        return np.where(correct, 1, 0)

    def predict_proba(self, X):
        predictions = self.predict(X)
        return np.column_stack([1 - predictions, predictions]).astype(float)


class TestAdaptiveSelector:
    def make_selector(self, good=0.95, bad=0.6, **kwargs):
        return AdaptiveModelSelector(
            {"bad": _FixedAccuracyModel(bad, seed=1),
             "good": _FixedAccuracyModel(good, seed=2)},
            **kwargs,
        )

    def test_starts_with_first_model(self):
        selector = self.make_selector()
        assert selector.active == "bad"

    def test_switches_to_better_model(self):
        selector = self.make_selector(window=100, min_observations=20)
        X = np.zeros((50, 1))
        y = np.ones(50, dtype=int)
        for _ in range(4):
            selector.record_feedback(X, y)
        assert selector.active == "good"
        assert selector.switches and selector.switches[0] == ("bad", "good")

    def test_no_switch_without_margin(self):
        selector = AdaptiveModelSelector(
            {"a": _FixedAccuracyModel(0.90, seed=1),
             "b": _FixedAccuracyModel(0.905, seed=2)},
            window=400, switch_margin=0.05, min_observations=20,
        )
        X = np.zeros((100, 1))
        y = np.ones(100, dtype=int)
        for _ in range(4):
            selector.record_feedback(X, y)
        assert selector.active == "a"  # margin not cleared

    def test_rolling_accuracy_tracks_observations(self):
        selector = self.make_selector()
        assert selector.rolling_accuracy("good") is None
        X = np.zeros((200, 1))
        y = np.ones(200, dtype=int)
        selector.record_feedback(X, y)
        accuracy = selector.rolling_accuracy("good")
        assert accuracy is not None and 0.85 <= accuracy <= 1.0

    def test_min_observations_gate(self):
        selector = self.make_selector(min_observations=500, window=600)
        X = np.zeros((50, 1))
        y = np.ones(50, dtype=int)
        selector.record_feedback(X, y)
        assert selector.active == "bad"  # alternative lacks observations

    def test_predict_uses_active_model(self):
        selector = self.make_selector()
        X = np.zeros((30, 1))
        selector.predict(X)
        selector.predict_proba(X)  # smoke: routed to active model

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptiveModelSelector({})
        with pytest.raises(ConfigurationError):
            self.make_selector(window=0)
        with pytest.raises(ConfigurationError):
            self.make_selector(switch_margin=-0.1)

    def test_accuracies_snapshot(self):
        selector = self.make_selector()
        snapshot = selector.accuracies()
        assert set(snapshot) == {"bad", "good"}
