"""HashingEncoder tests (the paper's hashed-location privacy scheme)."""

import numpy as np
import pytest

from repro.errors import DimensionMismatchError
from repro.ml import HashingEncoder


class TestHashingEncoder:
    def test_stable_buckets(self):
        encoder = HashingEncoder(n_buckets=64)
        assert encoder.bucket(0, "8001") == encoder.bucket(0, "8001")

    def test_column_salting_differs(self):
        encoder = HashingEncoder(n_buckets=64)
        # Same value in different columns should (almost surely) hash apart.
        buckets = {encoder.bucket(col, "8001") for col in range(8)}
        assert len(buckets) > 1

    def test_transform_shape_and_one_bit_per_column(self):
        encoder = HashingEncoder(n_buckets=16)
        out = encoder.transform([("8001", "fire"), ("4001", "intrusion")])
        assert out.shape == (2, 32)
        assert (out.sum(axis=1) == 2.0).all()

    def test_no_vocabulary_state(self):
        """Stateless: transforming unseen values needs no fit."""
        encoder = HashingEncoder(n_buckets=16)
        out = encoder.transform([("never-seen-before",)])
        assert out.sum() == 1.0

    def test_equal_values_equal_vectors(self):
        encoder = HashingEncoder(n_buckets=32)
        a = encoder.transform([("8001",)])
        b = encoder.transform([("8001",)])
        assert np.array_equal(a, b)

    def test_collision_rate_is_low_with_many_buckets(self):
        encoder = HashingEncoder(n_buckets=4096)
        values = [str(1000 + i) for i in range(400)]
        buckets = {encoder.bucket(0, v) for v in values}
        assert len(buckets) > 380  # few collisions

    def test_inconsistent_width_raises(self):
        encoder = HashingEncoder(n_buckets=8)
        with pytest.raises(DimensionMismatchError):
            encoder.transform([("a", "b"), ("c",)])

    def test_invalid_buckets_raises(self):
        with pytest.raises(DimensionMismatchError):
            HashingEncoder(n_buckets=1)

    def test_hash_value_anonymizes(self):
        encoder = HashingEncoder(n_buckets=256)
        anonymized = encoder.hash_value("8001")
        assert anonymized.startswith("h")
        assert "8001" not in anonymized
        assert encoder.hash_value("8001") == anonymized  # stable

    def test_empty_rows(self):
        assert HashingEncoder(n_buckets=8).transform([]).shape == (0, 0)

    def test_hashed_features_remain_learnable(self):
        """A model trained on hashed locations still learns location effects
        — the property that made the paper's hashed data usable at all."""
        from repro.ml import LogisticRegression, accuracy_score
        rng = np.random.default_rng(0)
        locations = [f"{z}" for z in rng.integers(1000, 1050, size=2000)]
        # sorted(): set iteration order is hash-salted per process and would
        # make the latent effects (and thus the achievable accuracy) flaky.
        effect = {loc: rng.normal() for loc in sorted(set(locations))}
        y = np.array([
            1 if effect[loc] + rng.normal(scale=0.4) > 0 else 0
            for loc in locations
        ])
        X = HashingEncoder(n_buckets=512).transform([(loc,) for loc in locations])
        model = LogisticRegression(max_iter=300, learning_rate=1.0)
        model.fit(X[:1000], y[:1000])
        # Well above the ~50% base rate: the hashed representation keeps
        # the location signal (measured ~0.79 on this configuration).
        assert accuracy_score(y[1000:], model.predict(X[1000:])) > 0.72
