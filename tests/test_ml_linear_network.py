"""Linear-model and neural-network tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, NotFittedError
from repro.ml import LinearSVC, LogisticRegression, NeuralNetworkClassifier, softmax


def make_linear(n=500, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 3))
    y = ((1.5 * X[:, 0] - 2.0 * X[:, 1] + 0.5) > 0).astype(int)
    return X, y


def make_xor(n=600, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    return X, y


class TestSoftmax:
    def test_rows_sum_to_one(self):
        logits = np.array([[1.0, 2.0, 3.0], [-5.0, 0.0, 5.0]])
        proba = softmax(logits)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_shift_invariance(self):
        logits = np.array([[1.0, 2.0]])
        assert np.allclose(softmax(logits), softmax(logits + 100.0))

    def test_extreme_values_are_stable(self):
        proba = softmax(np.array([[1000.0, -1000.0]]))
        assert np.isfinite(proba).all()
        assert proba[0, 0] == pytest.approx(1.0)


class TestLogisticRegression:
    def test_linear_data_is_learned(self):
        X, y = make_linear()
        model = LogisticRegression(max_iter=300).fit(X, y)
        assert model.score(X, y) >= 0.95

    def test_cannot_learn_xor(self):
        X, y = make_xor()
        model = LogisticRegression(max_iter=300).fit(X, y)
        assert model.score(X, y) <= 0.65  # chance-ish: XOR is not linear

    def test_proba_rows_sum_to_one(self):
        X, y = make_linear()
        proba = LogisticRegression(max_iter=100).fit(X, y).predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_convergence_tolerance_stops_early(self):
        X, y = make_linear(100)
        model = LogisticRegression(max_iter=100_000, tol=1e-2).fit(X, y)
        assert model.n_iter_ < 100_000

    def test_multiclass_softmax(self):
        rng = np.random.default_rng(0)
        centers = np.array([[-3, 0], [3, 0], [0, 4]])
        X = np.vstack([rng.normal(c, 0.5, size=(50, 2)) for c in centers])
        y = np.repeat([0, 1, 2], 50)
        model = LogisticRegression(max_iter=500).fit(X, y)
        assert model.score(X, y) >= 0.95
        assert model.predict_proba(X).shape == (150, 3)

    def test_regularization_shrinks_weights(self):
        X, y = make_linear()
        free = LogisticRegression(max_iter=200).fit(X, y)
        ridge = LogisticRegression(max_iter=200, reg_param=1.0).fit(X, y)
        assert np.abs(ridge.coef_).sum() < np.abs(free.coef_).sum()

    def test_unfitted_predict_raises(self):
        with pytest.raises(NotFittedError):
            LogisticRegression().predict(np.zeros((1, 2)))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ConfigurationError):
            LogisticRegression(max_iter=0)
        with pytest.raises(ConfigurationError):
            LogisticRegression(learning_rate=-1.0)


class TestLinearSVC:
    def test_linear_data_is_learned(self):
        X, y = make_linear()
        model = LinearSVC(max_iter=800, random_state=0).fit(X, y)
        assert model.score(X, y) >= 0.93

    def test_decision_function_sign_matches_predict(self):
        X, y = make_linear()
        model = LinearSVC(max_iter=500, random_state=0).fit(X, y)
        margins = model.decision_function(X)
        assert np.array_equal(model.predict(X), (margins >= 0).astype(int))

    def test_proba_is_calibrated_monotone_in_margin(self):
        X, y = make_linear()
        model = LinearSVC(max_iter=500, random_state=0).fit(X, y)
        margins = model.decision_function(X)
        proba = model.predict_proba(X)[:, 1]
        order = np.argsort(margins)
        assert (np.diff(proba[order]) >= -1e-12).all()
        assert np.allclose(model.predict_proba(X).sum(axis=1), 1.0)

    def test_multiclass_rejected(self):
        X = np.zeros((3, 2))
        y = np.array([0, 1, 2])
        with pytest.raises(ConfigurationError):
            LinearSVC().fit(X, y)

    def test_paper_table4_configuration_runs(self):
        """Table 4: 2000 iterations, step 1.0, batch fraction 0.2, reg 1e-2."""
        X, y = make_linear(300)
        model = LinearSVC(
            max_iter=2000, step_size=1.0, mini_batch_fraction=0.2,
            reg_param=1e-2, random_state=0,
        ).fit(X, y)
        assert model.score(X, y) >= 0.9

    def test_invalid_hyperparameters(self):
        with pytest.raises(ConfigurationError):
            LinearSVC(mini_batch_fraction=0.0)
        with pytest.raises(ConfigurationError):
            LinearSVC(step_size=-1.0)

    def test_deterministic_given_seed(self):
        X, y = make_linear()
        a = LinearSVC(max_iter=300, random_state=3).fit(X, y)
        b = LinearSVC(max_iter=300, random_state=3).fit(X, y)
        assert np.allclose(a.coef_, b.coef_)


class TestNeuralNetwork:
    def test_linear_data_is_learned(self):
        X, y = make_linear()
        model = NeuralNetworkClassifier(
            hidden_layers=(16,), max_epochs=60, batch_size=64, random_state=0
        ).fit(X, y)
        assert model.score(X, y) >= 0.95

    def test_xor_is_learned(self):
        """The non-linear benchmark the linear models fail."""
        X, y = make_xor()
        model = NeuralNetworkClassifier(
            hidden_layers=(24, 8), max_epochs=150, batch_size=64,
            learning_rate=0.2, random_state=0,
        ).fit(X, y)
        assert model.score(X, y) >= 0.9

    def test_paper_table7_architecture(self):
        """Input -> 50 -> 2 -> softmax(2), as published."""
        X, y = make_linear(200)
        model = NeuralNetworkClassifier(
            hidden_layers=(50, 2), max_epochs=30, batch_size=200, random_state=0
        ).fit(X, y)
        assert model.architecture() == [3, 50, 2, 2]

    def test_loss_decreases(self):
        X, y = make_linear()
        model = NeuralNetworkClassifier(
            hidden_layers=(16,), max_epochs=40, batch_size=64, tol=0.0,
            random_state=0,
        ).fit(X, y)
        losses = model.loss_curve_
        assert losses[-1] < losses[0]

    def test_early_stopping_respects_patience(self):
        X, y = make_linear(150)
        model = NeuralNetworkClassifier(
            hidden_layers=(8,), max_epochs=10_000, tol=1e-3, patience=3,
            batch_size=64, random_state=0,
        ).fit(X, y)
        assert model.n_epochs_ < 10_000

    def test_proba_rows_sum_to_one(self):
        X, y = make_linear()
        model = NeuralNetworkClassifier(
            hidden_layers=(8,), max_epochs=20, batch_size=64, random_state=0
        ).fit(X, y)
        proba = model.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert (proba >= 0).all()

    def test_deterministic_given_seed(self):
        X, y = make_linear(200)
        kwargs = dict(hidden_layers=(8,), max_epochs=15, batch_size=64, random_state=9)
        a = NeuralNetworkClassifier(**kwargs).fit(X, y)
        b = NeuralNetworkClassifier(**kwargs).fit(X, y)
        assert np.allclose(a.weights_[0], b.weights_[0])

    def test_invalid_hyperparameters(self):
        with pytest.raises(ConfigurationError):
            NeuralNetworkClassifier(hidden_layers=())
        with pytest.raises(ConfigurationError):
            NeuralNetworkClassifier(momentum=1.5)
        with pytest.raises(ConfigurationError):
            NeuralNetworkClassifier(learning_rate=0.0)
