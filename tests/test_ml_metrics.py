"""Metric tests against hand-computed values."""

import numpy as np
import pytest

from repro.errors import DimensionMismatchError
from repro.ml import (
    accuracy_score,
    classification_report,
    confusion_matrix,
    error_rate_reduction,
    log_loss,
    precision_recall_f1,
    roc_auc_score,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score([0, 1, 1], [0, 1, 1]) == 1.0

    def test_partial(self):
        assert accuracy_score([0, 1, 1, 0], [0, 1, 0, 1]) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            accuracy_score([0, 1], [0])

    def test_empty_raises(self):
        with pytest.raises(DimensionMismatchError):
            accuracy_score([], [])


class TestConfusionMatrix:
    def test_binary_counts(self):
        m = confusion_matrix([0, 0, 1, 1, 1], [0, 1, 1, 1, 0])
        assert m.tolist() == [[1, 1], [1, 2]]

    def test_explicit_n_classes(self):
        m = confusion_matrix([0, 0], [0, 0], n_classes=3)
        assert m.shape == (3, 3)
        assert m[0, 0] == 2

    def test_diagonal_sum_equals_correct_predictions(self):
        y_true = [0, 1, 2, 2, 1, 0]
        y_pred = [0, 2, 2, 1, 1, 0]
        m = confusion_matrix(y_true, y_pred)
        assert np.trace(m) == sum(t == p for t, p in zip(y_true, y_pred))

    def test_negative_labels_raise(self):
        with pytest.raises(DimensionMismatchError):
            confusion_matrix([-1, 0], [0, 0])


class TestPrecisionRecallF1:
    def test_hand_computed_binary(self):
        # TP=2, FP=1, FN=1 for class 1.
        y_true = [1, 1, 1, 0, 0]
        y_pred = [1, 1, 0, 1, 0]
        precision, recall, f1 = precision_recall_f1(y_true, y_pred, average="binary")
        assert precision == pytest.approx(2 / 3)
        assert recall == pytest.approx(2 / 3)
        assert f1 == pytest.approx(2 / 3)

    def test_macro_averages_classes(self):
        y_true = [0, 0, 1, 1]
        y_pred = [0, 0, 0, 1]
        precision, recall, f1 = precision_recall_f1(y_true, y_pred, average="macro")
        # class0: p=2/3 r=1; class1: p=1 r=1/2
        assert precision == pytest.approx((2 / 3 + 1) / 2)
        assert recall == pytest.approx((1 + 0.5) / 2)
        assert 0 < f1 < 1

    def test_unknown_average_raises(self):
        with pytest.raises(ValueError):
            precision_recall_f1([0, 1], [0, 1], average="weighted")

    def test_perfect_prediction_scores_one(self):
        p, r, f1 = precision_recall_f1([0, 1, 0, 1], [0, 1, 0, 1], average="macro")
        assert (p, r, f1) == (1.0, 1.0, 1.0)


class TestClassificationReport:
    def test_contains_classes_and_accuracy(self):
        report = classification_report([0, 1, 1], [0, 1, 0], class_names=["true", "false"])
        assert "true" in report and "false" in report
        assert "accuracy" in report

    def test_wrong_name_count_raises(self):
        with pytest.raises(DimensionMismatchError):
            classification_report([0, 1], [0, 1], class_names=["only-one"])


class TestLogLoss:
    def test_confident_correct_is_small(self):
        small = log_loss([0, 1], np.array([[0.99, 0.01], [0.01, 0.99]]))
        big = log_loss([0, 1], np.array([[0.6, 0.4], [0.4, 0.6]]))
        assert small < big

    def test_hand_computed(self):
        value = log_loss([0], np.array([[0.5, 0.5]]))
        assert value == pytest.approx(np.log(2))

    def test_clipping_avoids_infinity(self):
        assert np.isfinite(log_loss([0], np.array([[0.0, 1.0]])))

    def test_label_outside_columns_raises(self):
        with pytest.raises(DimensionMismatchError):
            log_loss([5], np.array([[0.5, 0.5]]))


class TestRocAuc:
    def test_perfect_separation(self):
        assert roc_auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_inverted_scores(self):
        assert roc_auc_score([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_random_ties_give_half(self):
        assert roc_auc_score([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5]) == pytest.approx(0.5)

    def test_hand_computed(self):
        # pairs: (0.3 vs 0.6)=win, (0.3 vs 0.2)=loss ... compute directly
        auc = roc_auc_score([0, 0, 1, 1], [0.3, 0.7, 0.6, 0.2])
        # positive scores 0.6,0.2 vs negatives 0.3,0.7:
        # (0.6>0.3)=1, (0.6<0.7)=0, (0.2<0.3)=0, (0.2<0.7)=0 -> 1/4
        assert auc == pytest.approx(0.25)

    def test_single_class_raises(self):
        with pytest.raises(DimensionMismatchError):
            roc_auc_score([1, 1], [0.5, 0.6])


class TestErrorRateReduction:
    def test_paper_example(self):
        # 85% -> 90% halves... actually cuts the error by 1/3.
        assert error_rate_reduction(0.85, 0.90) == pytest.approx(1 / 3)

    def test_no_improvement(self):
        assert error_rate_reduction(0.9, 0.9) == 0.0

    def test_perfect_baseline(self):
        assert error_rate_reduction(1.0, 1.0) == 0.0

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            error_rate_reduction(1.2, 0.9)
