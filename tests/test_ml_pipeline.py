"""FeaturePipeline tests: encodings, label mapping, persistence."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, NotFittedError
from repro.ml import (
    DecisionTreeClassifier,
    FeaturePipeline,
    LogisticRegression,
    RandomForestClassifier,
)

RECORDS = [
    {"zip": "8001", "type": "fire", "hour": 3, "duration": 20.0},
    {"zip": "8001", "type": "intrusion", "hour": 14, "duration": 300.0},
    {"zip": "4001", "type": "fire", "hour": 9, "duration": 15.0},
    {"zip": "4001", "type": "technical", "hour": 22, "duration": 2.0},
] * 10
LABELS = ([True, False, True, True] * 10)


@pytest.fixture
def fitted():
    pipe = FeaturePipeline(
        LogisticRegression(max_iter=100),
        categorical_features=["zip", "type", "hour"],
        numeric_features=["duration"],
    )
    return pipe.fit(RECORDS, LABELS)


class TestFitPredict:
    def test_predict_returns_original_label_type(self, fitted):
        predictions = fitted.predict(RECORDS[:4])
        assert all(isinstance(p, bool) for p in predictions)

    def test_score_on_training_data(self, fitted):
        assert fitted.score(RECORDS, LABELS) >= 0.9

    def test_proba_shape_and_columns(self, fitted):
        proba = fitted.predict_proba(RECORDS[:4])
        assert proba.shape == (4, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert set(fitted.classes_) == {True, False}

    def test_unseen_category_is_handled(self, fitted):
        prediction = fitted.predict([
            {"zip": "9999", "type": "flood", "hour": 99, "duration": 1.0}
        ])
        assert prediction[0] in (True, False)

    def test_missing_numeric_defaults_to_zero(self, fitted):
        prediction = fitted.predict([{"zip": "8001", "type": "fire", "hour": 3}])
        assert prediction[0] in (True, False)

    def test_n_input_features_counts_onehot_width(self, fitted):
        # zips(2) + types(3) + hours(4) + duration(1)
        assert fitted.n_input_features_ == 2 + 3 + 4 + 1


class TestEncodingModes:
    def test_ordinal_encoding_width(self):
        pipe = FeaturePipeline(
            DecisionTreeClassifier(max_depth=5, random_state=0),
            categorical_features=["zip", "type", "hour"],
            encoding="ordinal",
        ).fit(RECORDS, LABELS)
        assert pipe.n_input_features_ == 3

    def test_ordinal_marks_tree_categoricals(self):
        model = RandomForestClassifier(n_estimators=3, max_depth=5, random_state=0)
        FeaturePipeline(
            model, categorical_features=["zip", "type"], encoding="ordinal"
        ).fit(RECORDS, LABELS)
        assert model.categorical_features == frozenset({0, 1})

    def test_onehot_does_not_mark_categoricals(self):
        model = RandomForestClassifier(n_estimators=3, max_depth=5, random_state=0)
        FeaturePipeline(
            model, categorical_features=["zip", "type"], encoding="onehot"
        ).fit(RECORDS, LABELS)
        assert model.categorical_features == frozenset()

    def test_invalid_encoding_raises(self):
        with pytest.raises(ConfigurationError):
            FeaturePipeline(LogisticRegression(), ["a"], encoding="hash")

    def test_numeric_only_pipeline(self):
        pipe = FeaturePipeline(
            LogisticRegression(max_iter=100),
            categorical_features=[],
            numeric_features=["duration"],
        ).fit(RECORDS, LABELS)
        assert pipe.n_input_features_ == 1

    def test_no_features_raises(self):
        with pytest.raises(ConfigurationError):
            FeaturePipeline(LogisticRegression(), [], numeric_features=[])


class TestValidation:
    def test_mismatched_lengths_raise(self):
        pipe = FeaturePipeline(LogisticRegression(), ["zip"])
        with pytest.raises(ConfigurationError):
            pipe.fit(RECORDS, LABELS[:-1])

    def test_empty_fit_raises(self):
        pipe = FeaturePipeline(LogisticRegression(), ["zip"])
        with pytest.raises(ConfigurationError):
            pipe.fit([], [])

    def test_encode_before_fit_raises(self):
        pipe = FeaturePipeline(LogisticRegression(), ["zip"])
        with pytest.raises(NotFittedError):
            pipe.encode(RECORDS[:1])

    def test_classes_before_fit_raises(self):
        pipe = FeaturePipeline(LogisticRegression(), ["zip"])
        with pytest.raises(NotFittedError):
            pipe.classes_


class TestPersistence:
    def test_save_load_round_trip(self, fitted, tmp_path):
        path = tmp_path / "model.pkl"
        fitted.save(path)
        loaded = FeaturePipeline.load(path)
        assert loaded.predict(RECORDS[:8]) == fitted.predict(RECORDS[:8])
        assert np.allclose(
            loaded.predict_proba(RECORDS[:8]), fitted.predict_proba(RECORDS[:8])
        )

    def test_load_rejects_wrong_type(self, tmp_path):
        import pickle
        path = tmp_path / "junk.pkl"
        with path.open("wb") as handle:
            pickle.dump({"not": "a pipeline"}, handle)
        with pytest.raises(ConfigurationError):
            FeaturePipeline.load(path)
