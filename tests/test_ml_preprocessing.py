"""Encoder tests: one-hot, ordinal, scaling, label indexing."""

import numpy as np
import pytest

from repro.errors import DimensionMismatchError, NotFittedError
from repro.ml import LabelIndexer, OneHotEncoder, StandardScaler


class TestOneHotEncoder:
    @pytest.fixture
    def encoder(self):
        return OneHotEncoder().fit([
            ("8001", "fire"), ("4001", "intrusion"), ("8001", "technical"),
        ])

    def test_output_width_is_total_vocabulary(self, encoder):
        assert encoder.n_output_features_ == 2 + 3

    def test_rows_are_one_hot_per_column(self, encoder):
        out = encoder.transform([("8001", "fire")])
        assert out.shape == (1, 5)
        assert out.sum() == 2.0  # one hot bit per column

    def test_round_trip_identity_of_distinct_rows(self, encoder):
        a = encoder.transform([("8001", "fire")])
        b = encoder.transform([("4001", "fire")])
        assert not np.array_equal(a, b)

    def test_unknown_category_encodes_as_zeros(self, encoder):
        out = encoder.transform([("9999", "flood")])
        assert out.sum() == 0.0

    def test_inconsistent_width_raises(self, encoder):
        with pytest.raises(DimensionMismatchError):
            encoder.transform([("8001",)])

    def test_fit_empty_raises(self):
        with pytest.raises(DimensionMismatchError):
            OneHotEncoder().fit([])

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            OneHotEncoder().transform([("a",)])

    def test_ordinal_transform_maps_to_indexes(self, encoder):
        out = encoder.ordinal_transform([("8001", "technical"), ("4001", "fire")])
        assert out.tolist() == [[0.0, 2.0], [1.0, 0.0]]

    def test_ordinal_unknown_is_minus_one(self, encoder):
        assert encoder.ordinal_transform([("zzz", "fire")])[0, 0] == -1.0

    def test_fit_transform_equals_fit_then_transform(self):
        rows = [("a", "x"), ("b", "y")]
        direct = OneHotEncoder().fit_transform(rows)
        two_step = OneHotEncoder().fit(rows).transform(rows)
        assert np.array_equal(direct, two_step)

    def test_numeric_categories_supported(self):
        enc = OneHotEncoder().fit([(0,), (5,), (23,)])
        assert enc.transform([(5,)])[0].tolist() == [0.0, 1.0, 0.0]


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        X = np.array([[1.0, 10.0], [3.0, 30.0], [5.0, 50.0]])
        scaled = StandardScaler().fit_transform(X)
        assert np.allclose(scaled.mean(axis=0), 0.0)
        assert np.allclose(scaled.std(axis=0), 1.0)

    def test_constant_feature_passes_through(self):
        X = np.array([[1.0, 7.0], [2.0, 7.0]])
        scaled = StandardScaler().fit_transform(X)
        assert np.allclose(scaled[:, 1], 0.0)
        assert np.isfinite(scaled).all()

    def test_transform_uses_training_statistics(self):
        scaler = StandardScaler().fit(np.array([[0.0], [10.0]]))
        assert scaler.transform(np.array([[5.0]]))[0, 0] == pytest.approx(0.0)

    def test_wrong_width_raises(self):
        scaler = StandardScaler().fit(np.array([[1.0, 2.0]]))
        with pytest.raises(DimensionMismatchError):
            scaler.transform(np.array([[1.0]]))

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.array([[1.0]]))


class TestLabelIndexer:
    def test_first_seen_order(self):
        indexer = LabelIndexer().fit(["true", "false", "true"])
        assert indexer.classes_ == ["true", "false"]
        assert indexer.transform(["false", "true"]).tolist() == [1, 0]

    def test_inverse_transform(self):
        indexer = LabelIndexer().fit([False, True])
        assert indexer.inverse_transform([1, 0, 1]) == [True, False, True]

    def test_round_trip(self):
        labels = ["a", "b", "c", "a", "b"]
        indexer = LabelIndexer().fit(labels)
        assert indexer.inverse_transform(indexer.transform(labels)) == labels

    def test_unseen_label_raises(self):
        indexer = LabelIndexer().fit(["a"])
        with pytest.raises(KeyError):
            indexer.transform(["b"])

    def test_empty_fit_raises(self):
        with pytest.raises(DimensionMismatchError):
            LabelIndexer().fit([])

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            LabelIndexer().transform(["a"])
