"""Model-selection and correlation-analysis tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ml import (
    DecisionTreeClassifier,
    GridSearch,
    KFold,
    LogisticRegression,
    correlation_matrix,
    feature_label_correlations,
    pearson_correlation,
    select_features_by_correlation,
    train_test_split,
)


class TestTrainTestSplit:
    def test_partition_is_complete_and_disjoint(self):
        X = np.arange(100).reshape(-1, 1)
        y = np.arange(100) % 2
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, 0.3, random_state=0)
        assert len(X_tr) == 70 and len(X_te) == 30
        together = sorted(np.concatenate([X_tr, X_te]).ravel().tolist())
        assert together == list(range(100))

    def test_fifty_fifty_paper_split(self):
        X = np.zeros((100, 1))
        y = np.zeros(100, dtype=int)
        X_tr, X_te, _, _ = train_test_split(X, y, 0.5, random_state=0)
        assert len(X_tr) == len(X_te) == 50

    def test_stratified_preserves_class_balance(self):
        y = np.array([0] * 80 + [1] * 20)
        X = np.zeros((100, 1))
        _, _, y_tr, y_te = train_test_split(X, y, 0.5, random_state=0, stratify=True)
        assert y_tr.sum() == 10 and y_te.sum() == 10

    def test_deterministic_given_seed(self):
        X = np.arange(50).reshape(-1, 1)
        y = np.arange(50) % 2
        a = train_test_split(X, y, 0.4, random_state=7)
        b = train_test_split(X, y, 0.4, random_state=7)
        assert np.array_equal(a[0], b[0])

    def test_invalid_fraction_raises(self):
        with pytest.raises(ConfigurationError):
            train_test_split(np.zeros((2, 1)), np.zeros(2), 1.5)

    def test_length_mismatch_raises(self):
        from repro.errors import DimensionMismatchError
        with pytest.raises(DimensionMismatchError):
            train_test_split(np.zeros((3, 1)), np.zeros(2), 0.5)


class TestKFold:
    def test_folds_cover_everything_once(self):
        kf = KFold(n_splits=4, random_state=0)
        seen = []
        for train, test in kf.split(20):
            seen.extend(test.tolist())
            assert set(train) & set(test) == set()
            assert len(train) + len(test) == 20
        assert sorted(seen) == list(range(20))

    def test_too_few_samples_raises(self):
        with pytest.raises(ConfigurationError):
            list(KFold(n_splits=5).split(3))

    def test_invalid_splits_raises(self):
        with pytest.raises(ConfigurationError):
            KFold(n_splits=1)


class TestGridSearch:
    def test_finds_better_depth(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, size=(300, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)  # needs depth >= 2
        search = GridSearch(
            lambda **kw: DecisionTreeClassifier(random_state=0, **kw),
            {"max_depth": [1, 5]},
            cv=3, random_state=0,
        )
        result = search.run(X, y)
        assert result.best_params == {"max_depth": 5}
        assert result.best_score > 0.8

    def test_all_combinations_evaluated(self):
        search = GridSearch(
            lambda **kw: DecisionTreeClassifier(random_state=0, **kw),
            {"max_depth": [1, 2, 3], "criterion": ["gini", "entropy"]},
            cv=2,
        )
        assert len(list(search.combinations())) == 6

    def test_holdout_mode(self):
        X = np.random.default_rng(0).normal(size=(80, 2))
        y = (X[:, 0] > 0).astype(int)
        search = GridSearch(
            lambda **kw: LogisticRegression(max_iter=50, **kw),
            {"learning_rate": [0.1, 0.5]},
            cv=1, random_state=0,
        )
        result = search.run(X, y)
        assert len(result.results) == 2
        assert all(len(r["scores"]) == 1 for r in result.results)

    def test_top_ranks_by_score(self):
        X = np.random.default_rng(0).normal(size=(60, 2))
        y = (X[:, 0] > 0).astype(int)
        search = GridSearch(
            lambda **kw: DecisionTreeClassifier(random_state=0, **kw),
            {"max_depth": [1, 3, 6]},
            cv=2, random_state=0,
        )
        result = search.run(X, y)
        tops = result.top(3)
        assert tops[0]["score"] >= tops[-1]["score"]

    def test_empty_grid_raises(self):
        with pytest.raises(ConfigurationError):
            GridSearch(lambda: None, {})

    def test_records_fit_seconds(self):
        X = np.random.default_rng(0).normal(size=(40, 2))
        y = (X[:, 0] > 0).astype(int)
        search = GridSearch(
            lambda **kw: DecisionTreeClassifier(random_state=0, **kw),
            {"max_depth": [2]}, cv=2,
        )
        result = search.run(X, y)
        assert result.results[0]["fit_seconds"] > 0


class TestCorrelation:
    def test_perfect_positive(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, 2 * x + 1) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_constant_vector_is_zero(self):
        assert pearson_correlation(np.ones(5), np.arange(5.0)) == 0.0

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        x, y = rng.normal(size=50), rng.normal(size=50)
        assert pearson_correlation(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])

    def test_feature_label_ranking(self):
        rng = np.random.default_rng(0)
        n = 400
        signal = rng.normal(size=n)
        noise = rng.normal(size=n)
        y = (signal > 0).astype(int)
        X = np.column_stack([signal, noise])
        corr = feature_label_correlations(X, y)
        assert corr[0] > corr[1]

    def test_correlation_matrix_properties(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 4))
        m = correlation_matrix(X)
        assert np.allclose(np.diag(m), 1.0)
        assert np.allclose(m, m.T)
        assert (np.abs(m) <= 1.0 + 1e-12).all()

    def test_select_features_drops_redundant(self):
        rng = np.random.default_rng(0)
        base = rng.normal(size=300)
        y = (base > 0).astype(int)
        X = np.column_stack([
            base,                     # informative
            base + rng.normal(scale=1e-6, size=300),  # duplicate of it
            rng.normal(size=300),     # noise
        ])
        selected = select_features_by_correlation(
            X, y, min_label_correlation=0.05, max_feature_correlation=0.9
        )
        assert 0 in selected or 1 in selected
        assert not (0 in selected and 1 in selected)  # redundancy pruned
