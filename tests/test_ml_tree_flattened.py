"""Equivalence of the vectorized flattened-tree predictor with a reference
node-by-node traversal (including categorical splits and unseen codes)."""

import numpy as np
import pytest

from repro.ml.tree import DecisionTreeClassifier, TreeNode


def reference_predict(node: TreeNode, x: np.ndarray) -> np.ndarray:
    """Slow, obviously-correct traversal of one sample."""
    while not node.is_leaf:
        if node.categories_left is not None:
            go_left = float(x[node.feature]) in node.categories_left
        else:
            go_left = x[node.feature] <= node.threshold
        node = node.left if go_left else node.right
    return node.proba


def make_mixed_data(rng, n=300):
    X = np.column_stack([
        rng.integers(0, 12, size=n).astype(float),   # categorical col 0
        rng.integers(0, 30, size=n).astype(float),   # categorical col 1
        rng.normal(size=n), rng.normal(size=n), rng.normal(size=n),
    ])
    y = ((X[:, 0] % 3 == 0) ^ (X[:, 2] > 0)).astype(int)
    return X, y


@pytest.mark.parametrize("trial", range(8))
def test_flattened_matches_reference_traversal(trial):
    rng = np.random.default_rng(trial)
    X, y = make_mixed_data(rng)
    tree = DecisionTreeClassifier(
        max_depth=8, random_state=trial, categorical_features={0, 1}
    ).fit(X, y)
    X_test = np.column_stack([
        rng.integers(-2, 15, size=60).astype(float),  # incl. unseen/negative
        rng.integers(0, 35, size=60).astype(float),
        rng.normal(size=60), rng.normal(size=60), rng.normal(size=60),
    ])
    fast = tree.predict_proba(X_test)
    slow = np.array([reference_predict(tree.root_, x) for x in X_test])
    assert np.allclose(fast, slow)


def test_flattened_rebuilds_after_pickle_round_trip():
    import pickle
    rng = np.random.default_rng(42)
    X, y = make_mixed_data(rng)
    tree = DecisionTreeClassifier(
        max_depth=6, random_state=0, categorical_features={0, 1}
    ).fit(X, y)
    expected = tree.predict_proba(X[:30])
    restored = pickle.loads(pickle.dumps(tree))
    assert restored._flat is None  # dropped on pickling, rebuilt lazily
    assert np.allclose(restored.predict_proba(X[:30]), expected)


def test_flattened_handles_non_integer_category_codes():
    """Non-integer categorical values route through the fallback path."""
    rng = np.random.default_rng(1)
    codes = np.array([0.5, 1.5, 2.5, 3.5])
    X = rng.choice(codes, size=(200, 1))
    y = (np.isin(X[:, 0], [0.5, 2.5])).astype(int)
    tree = DecisionTreeClassifier(
        max_depth=3, random_state=0, categorical_features={0}
    ).fit(X, y)
    assert tree.score(X, y) == 1.0
    slow = np.array([reference_predict(tree.root_, x) for x in X[:50]])
    assert np.allclose(tree.predict_proba(X[:50]), slow)
