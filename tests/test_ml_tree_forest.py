"""Decision-tree and random-forest tests."""

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    DimensionMismatchError,
    NotFittedError,
)
from repro.ml import DecisionTreeClassifier, RandomForestClassifier


def make_blobs(n=300, seed=0):
    """Two well-separated Gaussian blobs."""
    rng = np.random.default_rng(seed)
    X0 = rng.normal(loc=-2.0, scale=0.7, size=(n // 2, 2))
    X1 = rng.normal(loc=+2.0, scale=0.7, size=(n - n // 2, 2))
    X = np.vstack([X0, X1])
    y = np.array([0] * (n // 2) + [1] * (n - n // 2))
    return X, y


def make_xor(n=400, seed=0):
    """The XOR pattern no linear model can solve."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    return X, y


class TestDecisionTree:
    def test_separable_data_is_learned(self):
        X, y = make_blobs()
        tree = DecisionTreeClassifier(max_depth=5, random_state=0).fit(X, y)
        assert tree.score(X, y) >= 0.98

    def test_xor_is_learned(self):
        X, y = make_xor()
        tree = DecisionTreeClassifier(max_depth=6, random_state=0).fit(X, y)
        assert tree.score(X, y) >= 0.95

    def test_max_depth_one_is_a_stump(self):
        X, y = make_blobs()
        tree = DecisionTreeClassifier(max_depth=1, random_state=0).fit(X, y)
        assert tree.depth() == 1

    def test_depth_respects_limit(self):
        X, y = make_xor()
        tree = DecisionTreeClassifier(max_depth=3, random_state=0).fit(X, y)
        assert tree.depth() <= 3

    def test_pure_node_stops_growing(self):
        X = np.array([[1.0], [2.0], [3.0]])
        y = np.array([1, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.root_.is_leaf

    def test_min_samples_leaf_enforced(self):
        X, y = make_blobs(100)
        tree = DecisionTreeClassifier(min_samples_leaf=20, random_state=0).fit(X, y)

        def check(node, X_mask_size):
            if node.is_leaf:
                return
            check(node.left, None)
            check(node.right, None)
        check(tree.root_, len(X))  # structural walk only; key assertion below
        # With 100 points and 20-per-leaf there can be at most 5 leaves.
        def leaves(node):
            if node.is_leaf:
                return 1
            return leaves(node.left) + leaves(node.right)
        assert leaves(tree.root_) <= 5

    def test_proba_rows_sum_to_one(self):
        X, y = make_blobs()
        tree = DecisionTreeClassifier(max_depth=4, random_state=0).fit(X, y)
        proba = tree.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert (proba >= 0).all()

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict(np.zeros((2, 2)))

    def test_feature_count_mismatch_raises(self):
        X, y = make_blobs()
        tree = DecisionTreeClassifier(max_depth=2, random_state=0).fit(X, y)
        with pytest.raises(DimensionMismatchError):
            tree.predict(np.zeros((2, 5)))

    def test_nan_input_rejected(self):
        with pytest.raises(DimensionMismatchError):
            DecisionTreeClassifier().fit(np.array([[np.nan]]), np.array([0]))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ConfigurationError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ConfigurationError):
            DecisionTreeClassifier(min_samples_split=1)
        with pytest.raises(ConfigurationError):
            DecisionTreeClassifier(criterion="mse")

    def test_entropy_criterion_works(self):
        X, y = make_blobs()
        tree = DecisionTreeClassifier(criterion="entropy", max_depth=4,
                                      random_state=0).fit(X, y)
        assert tree.score(X, y) >= 0.98

    def test_feature_importances_sum_to_one(self):
        X, y = make_blobs()
        tree = DecisionTreeClassifier(max_depth=4, random_state=0).fit(X, y)
        assert tree.feature_importances_.sum() == pytest.approx(1.0)

    def test_deterministic_given_seed(self):
        X, y = make_xor()
        a = DecisionTreeClassifier(max_depth=5, max_features=1, random_state=7).fit(X, y)
        b = DecisionTreeClassifier(max_depth=5, max_features=1, random_state=7).fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))

    def test_n_classes_widening_for_forest_use(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0, 0])
        tree = DecisionTreeClassifier().fit(X, y, n_classes=3)
        assert tree.predict_proba(X).shape == (2, 3)


class TestCategoricalSplits:
    def test_categorical_feature_with_arbitrary_codes(self):
        """Category codes carry no ordinal meaning; the exact categorical
        split must still separate them."""
        rng = np.random.default_rng(0)
        codes = rng.permutation(20)  # class of code c determined by lookup
        is_positive = {float(c): i % 2 == 0 for i, c in enumerate(codes)}
        X = rng.choice(codes, size=(500, 1)).astype(float)
        y = np.array([1 if is_positive[float(v)] else 0 for v in X[:, 0]])
        plain = DecisionTreeClassifier(max_depth=3, random_state=0).fit(X, y)
        categorical = DecisionTreeClassifier(
            max_depth=3, random_state=0, categorical_features={0}
        ).fit(X, y)
        # One categorical split nails it; threshold splits at depth 3 cannot.
        assert categorical.score(X, y) == 1.0
        assert plain.score(X, y) < 1.0

    def test_unseen_category_routes_without_error(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]] * 10)
        y = np.array([0, 0, 1, 1] * 10)
        tree = DecisionTreeClassifier(
            max_depth=2, random_state=0, categorical_features={0}
        ).fit(X, y)
        proba = tree.predict_proba(np.array([[99.0]]))
        assert proba.shape == (1, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_multiclass_falls_back_to_threshold(self):
        X = np.array([[0.0], [1.0], [2.0]] * 20)
        y = np.array([0, 1, 2] * 20)
        tree = DecisionTreeClassifier(
            max_depth=4, random_state=0, categorical_features={0}
        ).fit(X, y)
        assert tree.score(X, y) == 1.0


class TestRandomForest:
    def test_forest_beats_or_matches_single_tree_on_noise(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(400, 6))
        y = ((X[:, 0] + 0.5 * X[:, 1] + rng.normal(scale=0.8, size=400)) > 0).astype(int)
        X_test = rng.normal(size=(400, 6))
        y_test = ((X_test[:, 0] + 0.5 * X_test[:, 1]) > 0).astype(int)
        tree = DecisionTreeClassifier(max_depth=12, random_state=0).fit(X, y)
        forest = RandomForestClassifier(
            n_estimators=25, max_depth=12, random_state=0
        ).fit(X, y)
        assert forest.score(X_test, y_test) >= tree.score(X_test, y_test) - 0.01

    def test_proba_is_mean_of_trees(self):
        X, y = make_blobs(100)
        forest = RandomForestClassifier(n_estimators=5, max_depth=3, random_state=0).fit(X, y)
        manual = np.mean([t.predict_proba(X) for t in forest.trees_], axis=0)
        assert np.allclose(forest.predict_proba(X), manual)

    def test_oob_score_close_to_test_accuracy(self):
        X, y = make_blobs(400)
        forest = RandomForestClassifier(
            n_estimators=20, max_depth=4, oob_score=True, random_state=0
        ).fit(X, y)
        assert forest.oob_score_ is not None
        assert forest.oob_score_ >= 0.9

    def test_oob_requires_bootstrap(self):
        with pytest.raises(ConfigurationError):
            RandomForestClassifier(bootstrap=False, oob_score=True)

    def test_no_bootstrap_uses_full_data(self):
        X, y = make_blobs(100)
        forest = RandomForestClassifier(
            n_estimators=3, max_depth=3, bootstrap=False, random_state=0
        ).fit(X, y)
        assert forest.score(X, y) >= 0.97

    def test_deterministic_given_seed(self):
        X, y = make_xor()
        a = RandomForestClassifier(n_estimators=8, max_depth=6, random_state=5).fit(X, y)
        b = RandomForestClassifier(n_estimators=8, max_depth=6, random_state=5).fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))

    def test_feature_importances_normalized(self):
        X, y = make_blobs()
        forest = RandomForestClassifier(n_estimators=5, max_depth=3, random_state=0).fit(X, y)
        assert forest.feature_importances_.sum() == pytest.approx(1.0)

    def test_invalid_n_estimators(self):
        with pytest.raises(ConfigurationError):
            RandomForestClassifier(n_estimators=0)

    def test_paper_table3_configuration_runs(self):
        """Table 3: 50 trees, depth 30 — must train on a small sample."""
        X, y = make_blobs(200)
        forest = RandomForestClassifier(
            n_estimators=50, max_depth=30, random_state=0
        ).fit(X, y)
        assert len(forest.trees_) == 50
        assert forest.score(X, y) >= 0.98
