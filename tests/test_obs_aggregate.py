"""Tests for cross-process snapshot merging (:mod:`repro.obs.aggregate`).

The merge invariants that make cluster-wide telemetry trustworthy:

* merging per-process histogram snapshots is *exactly* equivalent to
  having observed the union of samples in one registry — counts, sums,
  extrema, percentiles and jitter all match, because the merge works
  bucket-by-bucket and pools sum-of-squares rather than approximating;
* counters sum by series key; gauges take a ``process``-labeled
  last-writer; merging is associative and commutative;
* tombstones (dead workers) contribute no series but stay visible in
  the merged ``meta.processes`` audit trail.
"""

import math

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.obs.aggregate import (
    collect_cluster_snapshot,
    relabel_snapshot,
    snapshot_merge,
    tombstone_snapshot,
)
from repro.obs.export import build_snapshot
from repro.obs.registry import MetricsRegistry


def _snap(role="worker", **series):
    """Build a snapshot from ``name -> value`` counter shorthand."""
    registry = MetricsRegistry()
    for name, value in series.items():
        registry.counter(name).inc(value)
    return build_snapshot(registry, role=role)


# -- histograms ---------------------------------------------------------------------


samples_strategy = st.lists(
    st.floats(min_value=1e-6, max_value=30.0,
              allow_nan=False, allow_infinity=False),
    min_size=0, max_size=60,
)


@given(samples_strategy, samples_strategy, samples_strategy)
@settings(max_examples=80, deadline=None)
def test_histogram_merge_equals_union_of_samples(a, b, c):
    parts = []
    for chunk in (a, b, c):
        registry = MetricsRegistry()
        if chunk:
            registry.histogram("repro_lat_seconds").observe_many(chunk)
        parts.append(build_snapshot(registry, role="worker"))
    union_registry = MetricsRegistry()
    union = a + b + c
    if union:
        union_registry.histogram("repro_lat_seconds").observe_many(union)
    expected = build_snapshot(union_registry)["histograms"].get(
        "repro_lat_seconds"
    )

    merged = snapshot_merge(parts)["histograms"].get("repro_lat_seconds")
    if not union:
        assert merged is None or merged["count"] == 0
        return
    assert merged["count"] == expected["count"] == len(union)
    for field in ("sum", "min", "max", "mean", "jitter",
                  "p50", "p95", "p99", "p999"):
        assert merged[field] == pytest.approx(expected[field], abs=1e-9), (
            f"{field}: merged {merged[field]} != union {expected[field]}"
        )
    assert [b[1] for b in merged["buckets"]] == \
        [b[1] for b in expected["buckets"]]


def test_histogram_merge_ignores_empty_side_extrema():
    # An empty histogram summary reports 0.0 min/max placeholders; they
    # must not pollute the pooled extrema of the non-empty side.
    empty = MetricsRegistry()
    empty.histogram("repro_lat_seconds")  # registered, never observed
    full = MetricsRegistry()
    full.histogram("repro_lat_seconds").observe_many([3.0, 5.0])
    merged = snapshot_merge([
        build_snapshot(empty), build_snapshot(full),
    ])["histograms"]["repro_lat_seconds"]
    assert merged["count"] == 2
    assert merged["min"] == pytest.approx(3.0)
    assert merged["max"] == pytest.approx(5.0)


def test_histogram_merge_rejects_mismatched_bucket_layouts():
    one = MetricsRegistry()
    one.histogram("repro_h", buckets=(1.0, 2.0)).observe(0.5)
    other = MetricsRegistry()
    other.histogram("repro_h", buckets=(1.0, 4.0)).observe(0.5)
    with pytest.raises(ValueError, match="mismatched bucket layouts"):
        snapshot_merge([build_snapshot(one), build_snapshot(other)])


# -- counters and gauges ------------------------------------------------------------


def test_counters_sum_by_series_key():
    merged = snapshot_merge([
        _snap(repro_a_total=3, repro_b_total=10),
        _snap(repro_a_total=4),
    ])
    assert merged["counters"]["repro_a_total"]["value"] == 7
    assert merged["counters"]["repro_b_total"]["value"] == 10


def test_counters_with_labels_keep_distinct_series():
    one = MetricsRegistry()
    one.counter("repro_ops_total", labels={"shard": "0"}).inc(2)
    two = MetricsRegistry()
    two.counter("repro_ops_total", labels={"shard": "1"}).inc(5)
    merged = snapshot_merge([build_snapshot(one), build_snapshot(two)])
    assert merged["counters"]['repro_ops_total{shard="0"}']["value"] == 2
    assert merged["counters"]['repro_ops_total{shard="1"}']["value"] == 5


def test_gauges_take_process_labeled_last_writer():
    old = MetricsRegistry()
    old.gauge("repro_depth").set(4.0)
    new = MetricsRegistry()
    new.gauge("repro_depth").set(9.0)
    snaps = [build_snapshot(old), build_snapshot(new)]
    # Force a deterministic recency order regardless of wall clock.
    snaps[0]["meta"].update(collected_at=100.0, sequence=1, pid=111)
    snaps[1]["meta"].update(collected_at=200.0, sequence=2, pid=222)
    merged = snapshot_merge(snaps)
    assert 'repro_depth{process="111"}' in merged["gauges"]
    assert merged["gauges"]['repro_depth{process="222"}']["value"] == 9.0


def test_gauge_winner_is_order_independent():
    snaps = []
    for pid, value in ((10, 1.0), (20, 2.0)):
        registry = MetricsRegistry()
        registry.gauge("repro_g").set(value)
        snap = build_snapshot(registry)
        snap["meta"].update(collected_at=50.0, sequence=3, pid=pid)
        snaps.append(snap)
    forward = snapshot_merge(snaps)["gauges"]
    backward = snapshot_merge(list(reversed(snaps)))["gauges"]
    assert forward == backward


# -- algebraic properties -----------------------------------------------------------


def test_merge_is_associative_and_commutative():
    registries = []
    for i in range(3):
        registry = MetricsRegistry()
        registry.counter("repro_total").inc(i + 1)
        registry.histogram("repro_lat_seconds").observe_many(
            [0.001 * (i + 1), 0.1 * (i + 1)]
        )
        registries.append(registry)
    a, b, c = (build_snapshot(r, role="worker") for r in registries)
    left = snapshot_merge([snapshot_merge([a, b]), c])
    right = snapshot_merge([a, snapshot_merge([b, c])])
    flat = snapshot_merge([c, a, b])
    for merged in (right, flat):
        assert merged["counters"] == left["counters"]
        assert merged["histograms"] == left["histograms"]
    # Merge-of-merges flattens, never nests, the process audit trail.
    assert len(left["meta"]["processes"]) == 3


def test_merge_edge_inputs():
    with pytest.raises(ValueError):
        snapshot_merge([])
    single = _snap(repro_total=5)
    merged = snapshot_merge([single])
    assert merged["counters"]["repro_total"]["value"] == 5
    assert merged["meta"]["role"] == "cluster"
    # Disjoint metric sets union cleanly.
    merged = snapshot_merge([_snap(repro_x_total=1), _snap(repro_y_total=2)])
    assert set(merged["counters"]) == {"repro_x_total", "repro_y_total"}


def test_merge_enabled_flag_is_or():
    on = _snap(repro_total=1)
    off = _snap(repro_total=1)
    off["enabled"] = False
    assert snapshot_merge([off, on])["enabled"] is True
    assert snapshot_merge([off, off])["enabled"] is False


def test_merge_collects_traces_sorted():
    a = _snap()
    a["traces"] = [{"trace_id": "t-02", "spans": []}]
    b = _snap()
    b["traces"] = [{"trace_id": "t-01", "spans": []}]
    merged = snapshot_merge([a, b])
    assert [t["trace_id"] for t in merged["traces"]] == ["t-01", "t-02"]


# -- tombstones and relabeling ------------------------------------------------------


def test_tombstones_carry_no_series_but_stay_auditable():
    live = _snap(repro_total=4)
    dead = tombstone_snapshot(shard=3, error="no running worker")
    merged = snapshot_merge([live, dead])
    assert merged["counters"]["repro_total"]["value"] == 4
    tombstones = [p for p in merged["meta"]["processes"]
                  if p.get("tombstone")]
    assert len(tombstones) == 1
    assert tombstones[0]["shard"] == 3
    assert tombstones[0]["error"] == "no running worker"


def test_relabel_adds_labels_without_clobbering_existing():
    registry = MetricsRegistry()
    registry.counter("repro_total", labels={"shard": "9"}).inc(1)
    registry.counter("repro_plain_total").inc(2)
    registry.histogram("repro_lat_seconds").observe(0.01)
    registry.gauge("repro_depth").set(1.0)
    relabeled = relabel_snapshot(
        build_snapshot(registry), {"shard": 0, "replica": 1}
    )
    # Pre-existing labels win on collision; new ones attach everywhere.
    assert 'repro_total{replica="1",shard="9"}' in relabeled["counters"]
    assert 'repro_plain_total{replica="1",shard="0"}' in relabeled["counters"]
    assert 'repro_lat_seconds{replica="1",shard="0"}' in relabeled["histograms"]
    assert 'repro_depth{replica="1",shard="0"}' in relabeled["gauges"]


def test_collect_cluster_snapshot_without_store_is_parent_passthrough():
    registry = MetricsRegistry()
    registry.counter("repro_total").inc(3)
    snapshot = collect_cluster_snapshot(registry)
    assert snapshot["counters"]["repro_total"]["value"] == 3
    assert snapshot["meta"]["role"] == "parent"


def test_collect_cluster_snapshot_merges_worker_harvest():
    class FakeStore:
        def collect_metrics(self):
            return [relabel_snapshot(_snap(repro_total=2), {"shard": 0})]

    registry = MetricsRegistry()
    registry.counter("repro_total").inc(1)
    snapshot = collect_cluster_snapshot(registry, store=FakeStore())
    assert snapshot["meta"]["role"] == "cluster"
    assert snapshot["counters"]["repro_total"]["value"] == 1
    assert snapshot["counters"]['repro_total{shard="0"}']["value"] == 2
