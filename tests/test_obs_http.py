"""Tests for the live /metrics + /healthz endpoint (:mod:`repro.obs.http`).

Served over an ephemeral port and scraped with urllib, same as an
external Prometheus would: the text route must parse as valid exposition
format, the JSON route must round-trip the merged snapshot schema, and
/healthz must flip between 200 and 503 with shard liveness.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.errors import WorkerCrashedError
from repro.obs.export import build_snapshot
from repro.obs.http import (
    PROMETHEUS_CONTENT_TYPE,
    ClusterTelemetry,
    MetricsHTTPServer,
    StaticTelemetry,
)
from repro.obs.registry import MetricsRegistry


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=5.0) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def _sample_registry():
    registry = MetricsRegistry()
    registry.counter("repro_demo_total", labels={"q": 'a"b\\c'}).inc(5)
    registry.histogram("repro_demo_seconds").observe_many([0.002, 0.2])
    return registry


def _parse_prometheus(text):
    """Minimal exposition-format validation: every non-comment line is
    ``series value`` with a float-parseable value."""
    series = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        key, value = line.rsplit(" ", 1)
        series[key] = float(value)
    return series


class TestRoutes:
    @pytest.fixture()
    def server(self):
        provider = ClusterTelemetry(registry=_sample_registry())
        with MetricsHTTPServer(provider) as running:
            yield running

    def test_metrics_is_valid_prometheus_text(self, server):
        status, headers, body = _get(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        series = _parse_prometheus(body.decode("utf-8"))
        assert series['repro_demo_total{q="a\\"b\\\\c"}'] == 5.0
        assert series["repro_demo_seconds_count"] == 2.0

    def test_metrics_json_round_trips_schema(self, server):
        status, headers, body = _get(server.url + "/metrics.json")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        snapshot = json.loads(body)
        assert snapshot["schema"] == "repro.metrics/v1"
        # JSON keys carry raw label values; only /metrics escapes them.
        assert snapshot["counters"]['repro_demo_total{q="a"b\\c"}'][
            "value"] == 5

    def test_healthz_ok_when_no_cluster_attached(self, server):
        status, _, body = _get(server.url + "/healthz")
        assert status == 200
        assert json.loads(body)["healthy"] is True

    def test_unknown_path_is_404(self, server):
        status, _, _ = _get(server.url + "/nope")
        assert status == 404

    def test_query_strings_are_ignored(self, server):
        status, _, _ = _get(server.url + "/metrics?format=text")
        assert status == 200

    def test_provider_failure_is_500_not_crash(self):
        class Broken:
            def cluster_snapshot(self):
                raise RuntimeError("harvest exploded")

            def health(self):
                return {"healthy": True}

        with MetricsHTTPServer(Broken()) as server:
            status, _, body = _get(server.url + "/metrics")
            assert status == 500
            assert b"harvest exploded" in body
            # The server survives and keeps answering.
            status, _, _ = _get(server.url + "/healthz")
            assert status == 200

    def test_stop_is_idempotent(self):
        server = MetricsHTTPServer(StaticTelemetry({"histograms": {}}))
        server.start()
        server.stop()
        server.stop()


class TestClusterHealth:
    class FakeReplicaSet:
        def __init__(self, shard, alive=True, dead=()):
            self.shard = shard
            self.epoch = 2
            self.leader_index = 0
            self._alive = alive
            self._dead = set(dead)

        def fail_over(self):  # marker attribute for kind detection
            raise NotImplementedError

        def leader_alive(self):
            return self._alive

        def replication_lag(self):
            return {1: 0}

    class FakeWorkerStore:
        def __init__(self, alive=True):
            self.pid = 4321
            self._alive = alive

        def metrics_snapshot(self, timeout=None):  # marker attribute
            return {}

        def ping(self, timeout=None):
            if not self._alive:
                raise WorkerCrashedError("worker is gone")
            return {"pid": self.pid}

    class FakeSharded:
        def __init__(self, shards, supervisor=None):
            self.shards = shards
            if supervisor is not None:
                self.supervisor = supervisor

    class FakeSupervisor:
        def __init__(self, attempts):
            self._attempts = attempts
            self.num_shards = len(attempts)

        def restart_attempts(self, index):
            return self._attempts[index]

    def test_dead_follower_is_degraded_but_healthy(self):
        store = self.FakeSharded([self.FakeReplicaSet(0, dead=(1,))])
        health = ClusterTelemetry(store=store).health()
        assert health["healthy"] is True
        assert health["shards"][0]["dead_replicas"] == [1]

    def test_dead_leader_is_unhealthy(self):
        store = self.FakeSharded([
            self.FakeReplicaSet(0),
            self.FakeReplicaSet(1, alive=False),
        ])
        health = ClusterTelemetry(store=store).health()
        assert health["healthy"] is False
        assert [s["healthy"] for s in health["shards"]] == [True, False]

    def test_unreplicated_worker_health_follows_ping(self):
        alive = self.FakeSharded([self.FakeWorkerStore()])
        assert ClusterTelemetry(store=alive).health()["healthy"] is True
        dead = self.FakeSharded([self.FakeWorkerStore(alive=False)])
        health = ClusterTelemetry(store=dead).health()
        assert health["healthy"] is False
        assert "worker is gone" in health["shards"][0]["error"]

    def test_crash_looping_worker_flips_overall_health(self):
        store = self.FakeSharded(
            [self.FakeWorkerStore()],
            supervisor=self.FakeSupervisor([3]),
        )
        health = ClusterTelemetry(store=store).health()
        assert health["healthy"] is False
        assert health["crash_looping_workers"] == [0]

    def test_single_replica_set_store_is_accepted(self):
        health = ClusterTelemetry(store=self.FakeReplicaSet(2)).health()
        assert health["healthy"] is True
        assert health["shards"][0]["shard"] == 2

    def test_callable_sources_resolve_per_request(self):
        # The driver hands callables because its store is rebuilt across
        # crash phases; each health() call must see the current object.
        stores = [self.FakeSharded([self.FakeReplicaSet(0, alive=False)]),
                  self.FakeSharded([self.FakeReplicaSet(0)])]
        telemetry = ClusterTelemetry(store=lambda: stores[-1])
        assert telemetry.health()["healthy"] is True
        stores.append(self.FakeSharded([self.FakeReplicaSet(0, alive=False)]))
        assert telemetry.health()["healthy"] is False


def test_static_provider_serves_saved_snapshot():
    snapshot = build_snapshot(_sample_registry())
    with MetricsHTTPServer(StaticTelemetry(snapshot)) as server:
        status, _, body = _get(server.url + "/metrics")
        assert status == 200
        assert b"repro_demo_seconds_count" in body
        status, _, body = _get(server.url + "/healthz")
        assert status == 200
        assert json.loads(body)["static"] is True
