"""Instrumentation hooks across broker, WAL, planner, shards, coordinator."""

from __future__ import annotations

import time

import pytest

from repro.cluster.coordinator import GroupCoordinator
from repro.cluster.sharded import ShardedDocumentStore
from repro.errors import FencedGenerationError
from repro.obs.registry import get_registry, scoped_registry
from repro.storage.store import DocumentStore
from repro.streaming.broker import Broker
from repro.streaming.consumer import Consumer
from repro.streaming.message import TopicPartition
from repro.streaming.producer import Producer


def _hist(name: str) -> dict:
    return get_registry().snapshot()["histograms"].get(name, {"count": 0})


def _counter(name: str) -> int:
    entry = get_registry().snapshot()["counters"].get(name)
    return entry["value"] if entry else 0


class TestBrokerInstrumentation:
    def test_append_and_fetch_batch_sizes_observed(self):
        with scoped_registry():
            broker = Broker()
            broker.create_topic("t", num_partitions=1)
            broker.append_batch("t", 0, [(None, b"a"), (None, b"b")])
            records = broker.fetch(TopicPartition("t", 0), 0)
            assert len(records) == 2
            append = _hist("repro_broker_append_batch_records")
            fetch = _hist("repro_broker_fetch_batch_records")
            assert append["count"] == 1 and append["sum"] == 2.0
            assert fetch["count"] == 1 and fetch["sum"] == 2.0

    def test_longpoll_wake_recorded_even_on_empty_timeout(self):
        # Satellite: a fetch(timeout=) that expires with no data must still
        # record its wake latency, not vanish from the metrics.
        with scoped_registry():
            broker = Broker()
            broker.create_topic("t", num_partitions=1)
            records = broker.fetch(TopicPartition("t", 0), 0, timeout=0.02)
            assert records == []
            wake = _hist("repro_broker_longpoll_wake_seconds")
            assert wake["count"] == 1
            assert wake["sum"] >= 0.015
            assert _counter("repro_broker_longpoll_timeouts_total") == 1

    def test_longpoll_wake_recorded_on_satisfied_wait(self):
        import threading

        with scoped_registry():
            broker = Broker()
            broker.create_topic("t", num_partitions=1)
            timer = threading.Timer(
                0.01, lambda: broker.append("t", 0, None, b"x")
            )
            timer.start()
            try:
                records = broker.fetch(TopicPartition("t", 0), 0, timeout=1.0)
            finally:
                timer.join()
            assert len(records) == 1
            assert _hist("repro_broker_longpoll_wake_seconds")["count"] == 1
            assert _counter("repro_broker_longpoll_timeouts_total") == 0

    def test_immediate_fetch_records_no_wake(self):
        with scoped_registry():
            broker = Broker()
            broker.create_topic("t", num_partitions=1)
            broker.append("t", 0, None, b"x")
            broker.fetch(TopicPartition("t", 0), 0)
            assert _hist("repro_broker_longpoll_wake_seconds")["count"] == 0

    def test_fencing_rejections_counted(self):
        with scoped_registry():
            broker = Broker()
            broker.create_topic("t", num_partitions=1)
            broker.fence_group("g", 2)
            with pytest.raises(FencedGenerationError):
                broker.commit("g", {TopicPartition("t", 0): 0}, generation=1)
            assert _counter("repro_broker_fencing_rejections_total") == 1


class TestWalInstrumentation:
    def test_fsync_and_commit_batch_observed(self, tmp_path):
        from repro.durability.wal import WriteAheadLog

        with scoped_registry():
            wal = WriteAheadLog(tmp_path / "wal", sync="always")
            wal.append_many([b"one", b"two", b"three"])
            wal.close()
            assert _hist("repro_wal_fsync_seconds")["count"] >= 1
            commit = _hist("repro_wal_commit_batch_records")
            assert commit["count"] == 1 and commit["sum"] == 3.0


class TestPlannerInstrumentation:
    def test_query_modes_labelled(self):
        with scoped_registry():
            store = DocumentStore()
            coll = store.collection("docs")
            coll.create_index("kind", kind="hash")
            coll.insert_many(
                [{"kind": "a", "rank": i} for i in range(10)]
            )
            coll.find({"kind": "a"})              # covered by the hash index
            coll.find({"rank": {"$gte": 5}})      # full scan
            coll.find({"kind": "a", "rank": 3})   # indexed + verification
            snap = get_registry().snapshot()["histograms"]
            assert snap['repro_storage_query_seconds{mode="covered"}']["count"] == 1
            assert snap['repro_storage_query_seconds{mode="scan"}']["count"] == 1
            assert snap['repro_storage_query_seconds{mode="indexed"}']["count"] == 1

    def test_count_observed_too(self):
        with scoped_registry():
            store = DocumentStore()
            coll = store.collection("docs")
            coll.insert_many([{"n": i} for i in range(5)])
            coll.count({"n": {"$lt": 3}})
            assert _hist(
                'repro_storage_query_seconds{mode="scan"}')["count"] == 1


class TestShardInstrumentation:
    def test_fanout_latency_per_shard(self):
        with scoped_registry():
            store = ShardedDocumentStore(num_shards=2)
            coll = store.collection("docs")
            coll.insert_many([{"k": str(i), "v": i} for i in range(20)])
            coll.find({})
            snap = get_registry().snapshot()["histograms"]
            for shard in ("0", "1"):
                entry = snap[f'repro_shard_fanout_seconds{{shard="{shard}"}}']
                assert entry["count"] >= 1
            store.close()

    def test_merge_cost_observed_on_sorted_find(self):
        with scoped_registry():
            store = ShardedDocumentStore(num_shards=2)
            coll = store.collection("docs")
            coll.insert_many([{"k": str(i), "v": i} for i in range(20)])
            coll.find({}, sort="v")
            assert _hist("repro_shard_merge_seconds")["count"] == 1
            coll.find({})  # unsorted: concatenation, no merge
            assert _hist("repro_shard_merge_seconds")["count"] == 1
            store.close()


class TestCoordinatorInstrumentation:
    def test_rebalance_duration_observed(self):
        with scoped_registry():
            broker = Broker()
            broker.create_topic("t", num_partitions=4)
            coordinator = GroupCoordinator(broker, "t", "g")
            coordinator.join("m0", Consumer(broker, "g"))
            coordinator.join("m1", Consumer(broker, "g"))
            coordinator.leave("m1")
            assert _hist("repro_cluster_rebalance_seconds")["count"] == 3


class TestWallClockSatellites:
    def test_producer_stats_wall_clock_bounds(self):
        with scoped_registry():
            broker = Broker()
            broker.create_topic("t", num_partitions=1)
            producer = Producer(broker)
            assert producer.stats.started_wall is None
            before = time.time()
            producer.send("t", {"n": 1})
            after = time.time()
            assert before <= producer.stats.started_wall <= after
            assert before <= producer.stats.finished_wall <= after
            assert producer.stats.started_wall <= producer.stats.finished_wall

    def test_consumer_report_wall_clock_bounds(self):
        from repro.core.consumer_app import ConsumerApplication
        from repro.core.verification import VerificationService

        class _StubPipeline:
            classes_ = [False, True]

            def predict(self, rows):
                return [True] * len(rows)

            def predict_proba(self, rows):
                return [[0.0, 1.0]] * len(rows)

        with scoped_registry():
            broker = Broker()
            broker.create_topic("alarms", num_partitions=1)
            producer = Producer(broker)
            doc = {
                "device_address": "d1", "alarm_type": "intrusion",
                "zip_code": "10115", "locality": "Mitte",
                "property_type": "residential", "duration_seconds": 4.0,
                "timestamp": 1.0, "uid": "a-1",
            }
            producer.send("alarms", doc, key="d1")
            app = ConsumerApplication(
                broker, "alarms", "g",
                VerificationService(_StubPipeline()),
            )
            before = time.time()
            report = app.process_available()
            after = time.time()
            assert report.alarms_processed == 1
            assert before <= report.started_wall <= report.finished_wall <= after
