"""Metrics registry: counters, gauges, lock-striped histograms, exporters."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.obs.export import (
    build_snapshot,
    render_pretty,
    render_prometheus,
    write_json_snapshot,
)
from repro.obs.registry import (
    DEFAULT_SIZE_BUCKETS,
    Histogram,
    MetricsRegistry,
    get_registry,
    scoped_registry,
    series_key,
)


class TestSeriesKey:
    def test_plain_name(self):
        assert series_key("repro_x_total", None) == "repro_x_total"

    def test_labels_sorted(self):
        key = series_key("repro_q", {"mode": "scan", "a": "b"})
        assert key == 'repro_q{a="b",mode="scan"}'


class TestCounterGauge:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_disabled_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("repro_test_total")
        counter.inc()
        assert counter.value == 0

    def test_gauge_set_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_test_gauge")
        gauge.set(2.5)
        gauge.add(0.5)
        assert gauge.value == 3.0

    def test_same_series_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("repro_a") is registry.counter("repro_a")
        assert registry.histogram("repro_h") is registry.histogram("repro_h")

    def test_type_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_a")
        with pytest.raises(ValueError):
            registry.gauge("repro_a")


class TestHistogramEdgeCases:
    def test_empty_percentiles_are_zero(self):
        hist = MetricsRegistry().histogram("repro_empty")
        assert hist.count == 0
        assert hist.percentile(50) == 0.0
        assert hist.percentile(99.9) == 0.0
        assert hist.jitter() == 0.0
        summary = hist.summary()
        assert summary["count"] == 0
        assert summary["p50"] == 0.0

    def test_single_sample_every_percentile_is_that_sample(self):
        hist = MetricsRegistry().histogram("repro_one")
        hist.observe(0.0123)
        for q in (0.1, 50, 95, 99, 99.9, 100):
            assert hist.percentile(q) == pytest.approx(0.0123)
        assert hist.jitter() == pytest.approx(0.0)

    def test_bucket_boundary_lands_in_le_bucket(self):
        # Prometheus semantics: a sample equal to a bound belongs to the
        # bucket with le == bound, not the next one up.
        hist = MetricsRegistry().histogram("repro_bound", buckets=(1.0, 2.0, 5.0))
        hist.observe(2.0)
        buckets = dict(
            (le, n) for le, n in hist.summary()["buckets"]
        )
        assert buckets[2.0] == 1
        assert buckets[5.0] == 0

    def test_percentiles_clamped_to_observed_range(self):
        hist = MetricsRegistry().histogram("repro_clamp", buckets=(1.0, 10.0, 100.0))
        hist.observe(3.0)
        hist.observe(4.0)
        # Interpolation inside the (1, 10] bucket must never leave [3, 4].
        for q in (1, 50, 99):
            assert 3.0 <= hist.percentile(q) <= 4.0

    def test_observe_many_matches_repeated_observe(self):
        one = MetricsRegistry().histogram("repro_m1", buckets=DEFAULT_SIZE_BUCKETS)
        many = MetricsRegistry().histogram("repro_m2", buckets=DEFAULT_SIZE_BUCKETS)
        values = [1.0, 5.0, 42.0, 900.0]
        for value in values:
            one.observe(value)
        many.observe_many(values)
        assert one.summary() == many.summary()

    def test_jitter_is_stddev(self):
        hist = MetricsRegistry().histogram("repro_j", buckets=DEFAULT_SIZE_BUCKETS)
        hist.observe_many([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert hist.jitter() == pytest.approx(2.0)

    def test_out_of_range_sample_lands_in_inf_bucket(self):
        hist = MetricsRegistry().histogram("repro_inf", buckets=(1.0, 2.0))
        hist.observe(1e9)
        buckets = hist.summary()["buckets"]
        assert buckets[-1][0] == "+Inf"
        assert buckets[-1][1] == 1
        assert hist.percentile(50) == pytest.approx(1e9)

    def test_reset_clears_all_stripes(self):
        hist = MetricsRegistry().histogram("repro_r")
        hist.observe_many([0.1, 0.2, 0.3])
        hist.reset()
        assert hist.count == 0
        assert hist.sum == 0.0


class TestHistogramConcurrency:
    def test_concurrent_writers_lose_nothing(self):
        hist = MetricsRegistry().histogram("repro_conc", buckets=DEFAULT_SIZE_BUCKETS)
        per_thread, threads = 5_000, 8

        def writer(value: float) -> None:
            for _ in range(per_thread):
                hist.observe(value)

        workers = [
            threading.Thread(target=writer, args=(float(i + 1),))
            for i in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert hist.count == per_thread * threads
        assert hist.sum == pytest.approx(
            per_thread * sum(range(1, threads + 1))
        )

    def test_enabled_overhead_within_bound(self):
        # Instrumentation cost on the real hot path: appending batches to
        # a broker partition with metrics enabled must stay within 5% of
        # the same workload against a disabled registry.  Observations are
        # per batch, so the cost amortizes over the batch's records;
        # min-of-N runs shed scheduler noise.
        from repro.streaming.broker import Broker

        entries = [(None, b"x" * 64)] * 200
        batches = 500

        def workload(enabled: bool) -> float:
            import gc

            with scoped_registry() as registry:
                registry.set_enabled(enabled)
                broker = Broker()
                broker.create_topic("bench", num_partitions=1)
                # The previous sweep's 100k-record broker is garbage now;
                # collect it outside the timed section so a GC pause
                # doesn't land on one side of the comparison.
                gc.collect()
                started = time.perf_counter()
                for _ in range(batches):
                    broker.append_batch("bench", 0, entries)
                return time.perf_counter() - started

        workload(True), workload(False)  # warmup
        # Interleave the two configurations so allocator/GC/frequency
        # drift hits both sides equally; min-of-N sheds scheduler noise.
        # A noisy-neighbor spike can still skew one whole attempt, so the
        # 5% bound only has to hold on one of three measurements.
        ratios = []
        for _ in range(3):
            on_runs, off_runs = [], []
            for _ in range(5):
                on_runs.append(workload(True))
                off_runs.append(workload(False))
            ratios.append(min(on_runs) / min(off_runs))
            if ratios[-1] <= 1.05:
                break
        assert min(ratios) <= 1.05, (
            f"instrumentation overhead above 5% in all attempts: {ratios}"
        )


class TestRegistrySnapshot:
    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("repro_c", labels={"x": "1"}).inc(3)
        registry.gauge("repro_g").set(1.5)
        registry.histogram("repro_h").observe(0.01)
        snap = registry.snapshot()
        assert snap["schema"] == "repro.metrics/v1"
        assert snap["enabled"] is True
        assert snap["counters"]['repro_c{x="1"}']["value"] == 3
        assert snap["gauges"]["repro_g"]["value"] == 1.5
        assert snap["histograms"]["repro_h"]["count"] == 1

    def test_set_enabled_flips_every_instrument(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_c")
        hist = registry.histogram("repro_h")
        registry.set_enabled(False)
        counter.inc()
        hist.observe(1.0)
        assert counter.value == 0
        assert hist.count == 0
        registry.set_enabled(True)
        counter.inc()
        assert counter.value == 1

    def test_scoped_registry_isolates(self):
        before = get_registry()
        with scoped_registry() as registry:
            assert get_registry() is registry
            assert registry is not before
        assert get_registry() is before

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.histogram("repro_h").observe_many([0.001, 0.5, 70.0])
        json.dumps(registry.snapshot())


class TestExporters:
    def _sample_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("repro_total", labels={"kind": "a"}).inc(7)
        registry.gauge("repro_depth").set(2.0)
        registry.histogram("repro_lat_seconds").observe_many([0.002, 0.004])
        return build_snapshot(registry)

    def test_prometheus_format(self):
        text = render_prometheus(self._sample_snapshot())
        assert '# TYPE repro_total counter' in text
        assert 'repro_total{kind="a"} 7' in text
        assert '# TYPE repro_lat_seconds histogram' in text
        assert 'repro_lat_seconds_count 2' in text
        # Cumulative le counts end at the +Inf bucket == count.
        assert 'le="+Inf"' in text

    def test_prometheus_buckets_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_h", buckets=(1.0, 2.0))
        hist.observe_many([0.5, 1.5, 99.0])
        text = render_prometheus(registry.snapshot())
        lines = [l for l in text.splitlines() if l.startswith("repro_h_bucket")]
        counts = [int(l.rsplit(" ", 1)[1]) for l in lines]
        assert counts == [1, 2, 3]

    def test_prometheus_escapes_label_values(self):
        # Backslash, double-quote and newline must come out as \\, \" and
        # \n per the exposition format, and backslash must be escaped
        # first so the other escapes aren't double-mangled.
        registry = MetricsRegistry()
        registry.counter(
            "repro_esc_total", labels={"p": 'a"b\\c\nd'}
        ).inc(1)
        text = render_prometheus(registry.snapshot())
        assert 'repro_esc_total{p="a\\"b\\\\c\\nd"} 1' in text

    def test_prometheus_escaped_output_has_no_raw_newlines_in_series(self):
        registry = MetricsRegistry()
        registry.gauge("repro_g", labels={"q": "line1\nline2"}).set(3.0)
        text = render_prometheus(registry.snapshot())
        series_lines = [l for l in text.splitlines()
                        if l.startswith("repro_g")]
        assert series_lines == ['repro_g{q="line1\\nline2"} 3.0']

    def test_pretty_render_mentions_series(self):
        out = render_pretty(self._sample_snapshot())
        assert "repro_lat_seconds" in out
        assert "repro_total" in out

    def test_pretty_render_empty(self):
        assert render_pretty({"histograms": {}}) == "no metrics recorded\n"

    def test_json_snapshot_atomic_write(self, tmp_path):
        snapshot = self._sample_snapshot()
        path = tmp_path / "metrics.json"
        write_json_snapshot(path, snapshot)
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == "repro.metrics/v1"
        assert not (tmp_path / "metrics.json.tmp").exists()
        # Overwrite is atomic too.
        write_json_snapshot(path, snapshot)
        assert json.loads(path.read_text())["schema"] == "repro.metrics/v1"
