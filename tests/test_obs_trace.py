"""Trace contexts: sampling, span recording, and header propagation."""

from __future__ import annotations

import pytest

from repro.obs.registry import MetricsRegistry, scoped_registry
from repro.obs.trace import TRACE_ID_HEADER, TRACE_SENT_HEADER, Span, Trace, Tracer
from repro.streaming.broker import Broker
from repro.streaming.dstream import StreamingContext
from repro.streaming.producer import Producer


class TestSpanTrace:
    def test_span_duration(self):
        span = Span("ml", 10.0, 10.25)
        assert span.duration_seconds == pytest.approx(0.25)

    def test_trace_total_spans_min_to_max(self):
        trace = Trace("t-1", (Span("a", 1.0, 2.0), Span("b", 1.5, 4.0)))
        assert trace.total_seconds == pytest.approx(3.0)

    def test_trace_document_round_trips_json_shape(self):
        trace = Trace("t-1", (Span("a", 0.0, 1.0),))
        doc = trace.to_document()
        assert doc["trace_id"] == "t-1"
        assert doc["spans"][0]["stage"] == "a"
        assert doc["total_seconds"] == pytest.approx(1.0)


class TestTracerSampling:
    def test_every_nth_record_sampled(self):
        tracer = Tracer(sample_every=4, registry=MetricsRegistry())
        sampled = [tracer.sample_headers(0.0) is not None for _ in range(12)]
        assert sampled == [True, False, False, False] * 3

    def test_sample_every_one_traces_everything(self):
        tracer = Tracer(sample_every=1, registry=MetricsRegistry())
        assert all(tracer.sample_headers(0.0) for _ in range(5))

    def test_headers_carry_id_and_send_stamp(self):
        tracer = Tracer(sample_every=1, registry=MetricsRegistry())
        headers = tracer.sample_headers(123.456)
        assert headers[TRACE_ID_HEADER].startswith("t-")
        assert float(headers[TRACE_SENT_HEADER]) == pytest.approx(123.456)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_every=0)
        with pytest.raises(ValueError):
            Tracer(max_traces=0)


class TestTracerRecording:
    def test_record_builds_trace_and_histograms(self):
        registry = MetricsRegistry()
        tracer = Tracer(sample_every=1, registry=registry)
        trace = tracer.record("t-0", [("queue_dwell", 0.0, 0.5),
                                      ("ml", 0.5, 0.8)])
        assert [s.stage for s in trace.spans] == ["queue_dwell", "ml"]
        snap = registry.snapshot()
        assert snap["histograms"][
            'repro_trace_stage_seconds{stage="ml"}']["count"] == 1
        assert snap["histograms"]["repro_trace_e2e_seconds"]["count"] == 1
        assert snap["counters"]["repro_trace_completed_total"]["value"] == 1

    def test_trace_store_bounded(self):
        tracer = Tracer(sample_every=1, max_traces=3,
                        registry=MetricsRegistry())
        for i in range(10):
            tracer.record(f"t-{i}", [("x", 0.0, 1.0)])
        ids = [t.trace_id for t in tracer.traces()]
        assert ids == ["t-7", "t-8", "t-9"]


class TestHeaderPropagation:
    def test_headers_survive_broker_and_surface_in_microbatch(self):
        with scoped_registry():
            broker = Broker()
            broker.create_topic("traced", num_partitions=2)
            producer = Producer(broker)
            tracer = Tracer(sample_every=2)
            for i in range(6):
                headers = tracer.sample_headers(float(i))
                producer.send("traced", {"device_address": f"d{i}", "n": i},
                              key=f"d{i}", headers=headers)
            context = StreamingContext(broker, "traced", "trace-group")
            batch = context.next_batch()
            assert len(batch) == 6
            assert len(batch.traces) == 3  # every 2nd record sampled
            for trace_id, sent_at in batch.traces:
                assert trace_id.startswith("t-")
                assert sent_at in (0.0, 2.0, 4.0)
            assert batch.polled_at > 0.0

    def test_untraced_records_yield_no_trace_contexts(self):
        with scoped_registry():
            broker = Broker()
            broker.create_topic("plain", num_partitions=1)
            Producer(broker).send("plain", {"device_address": "d", "n": 1},
                                  key="d")
            batch = StreamingContext(broker, "plain", "g").next_batch()
            assert batch.traces == []
