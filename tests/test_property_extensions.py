"""Property-based tests for the extension modules (hypothesis)."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import assume, given, settings

from repro.core import Alarm, CostModel, Verification
from repro.ml import brier_score, expected_calibration_error, reliability_curve
from repro.streaming import SlidingWindows, TumblingWindows, windowed_counts

timestamps = st.floats(min_value=0.0, max_value=1e9, allow_nan=False,
                       allow_infinity=False)


@given(ts=timestamps, size=st.floats(min_value=0.5, max_value=86_400))
@settings(max_examples=150, deadline=None)
def test_tumbling_window_always_contains_its_timestamp(ts, size):
    windows = TumblingWindows(size).assign(ts)
    assert len(windows) == 1
    assert windows[0].contains(ts)
    assert abs(windows[0].size - size) < 1e-6 * max(1.0, abs(windows[0].start))


@given(
    ts=timestamps,
    size=st.floats(min_value=1.0, max_value=3_600),
    divisor=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=150, deadline=None)
def test_sliding_windows_cover_timestamp_exactly(ts, size, divisor):
    slide = size / divisor
    windows = SlidingWindows(size, slide).assign(ts)
    # Floating rounding can put ts epsilon-outside a boundary window, so
    # require containment up to a relative tolerance.
    tolerance = 1e-6 * max(1.0, abs(ts))
    assert all(
        w.start - tolerance <= ts < w.end + tolerance for w in windows
    )
    # Number of covering windows equals ceil(size / slide) == divisor
    # (off-by-one at exact boundaries is allowed by floating arithmetic).
    assert divisor <= len(windows) + 1
    assert len(windows) <= divisor + 1


@given(
    events=st.lists(
        st.tuples(st.floats(0, 10_000, allow_nan=False), st.sampled_from("abc")),
        max_size=60,
    ),
    size=st.floats(min_value=1.0, max_value=500.0),
)
@settings(max_examples=100, deadline=None)
def test_tumbling_counts_conserve_events(events, size):
    counts = windowed_counts(
        events, TumblingWindows(size),
        timestamp_fn=lambda e: e[0], key_fn=lambda e: e[1],
    )
    total = sum(sum(bucket.values()) for bucket in counts.values())
    assert total == len(events)


# -- fractional window sizes: float-drift regression ---------------------------
#
# Window bounds are now derived from the integer window index, so equal
# logical windows must be *bit-identical* Window values (one dict key in
# windowed_counts) and containment must hold exactly, even for fractional
# sizes like 0.1 whose products drift in the last ulps.

fractional_sizes = st.sampled_from([0.1, 0.3, 0.7, 1.3, 2.5, 0.05])


@given(ts=st.floats(0.0, 10_000.0, allow_nan=False), size=fractional_sizes)
@settings(max_examples=200, deadline=None)
def test_tumbling_fractional_sizes_contain_exactly(ts, size):
    windows = TumblingWindows(size).assign(ts)
    assert len(windows) == 1
    assert windows[0].contains(ts)  # exact, no tolerance


@given(
    ts=st.floats(0.0, 5_000.0, allow_nan=False),
    size=fractional_sizes,
    divisor=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=200, deadline=None)
def test_sliding_fractional_sizes_contain_exactly(ts, size, divisor):
    windows = SlidingWindows(size, size / divisor).assign(ts)
    assert windows
    assert all(w.contains(ts) for w in windows)  # exact, no tolerance


@given(
    base=st.integers(min_value=0, max_value=3_000),
    offsets=st.lists(st.floats(0.0, 1.0, exclude_max=True, allow_nan=False),
                     min_size=1, max_size=30),
    size=st.sampled_from([0.1, 0.3]),
)
@settings(max_examples=150, deadline=None)
def test_tumbling_fractional_sizes_dedupe_window_keys(base, offsets, size):
    """Timestamps in one logical window must produce ONE dict key.

    With the old ``floor(ts/size)*size`` arithmetic, 0.1-sized windows
    split into several float-drifted keys; keying off the integer window
    index makes them collapse.
    """
    assigner = TumblingWindows(size)
    # All timestamps inside the logical window that contains base*size+0.01.
    anchor = assigner.assign(base * size + size / 10)[0]
    inside = [anchor.start + f * (anchor.end - anchor.start) for f in offsets]
    inside = [ts for ts in inside if anchor.contains(ts)]
    counts = windowed_counts(
        [(ts, "k") for ts in inside], assigner,
        timestamp_fn=lambda e: e[0], key_fn=lambda e: e[1],
    )
    assert len(counts) <= 1
    if inside:
        assert counts == {anchor: {"k": len(inside)}}


@given(
    outcomes=st.lists(st.sampled_from([0, 1]), min_size=1, max_size=80),
    seed=st.integers(0, 100),
)
@settings(max_examples=120, deadline=None)
def test_brier_bounds_and_ece_bounds(outcomes, seed):
    rng = np.random.default_rng(seed)
    proba = rng.uniform(size=len(outcomes))
    assert 0.0 <= brier_score(outcomes, proba) <= 1.0
    assert 0.0 <= expected_calibration_error(outcomes, proba) <= 1.0


@given(
    outcomes=st.lists(st.sampled_from([0, 1]), min_size=1, max_size=80),
    seed=st.integers(0, 100),
    n_bins=st.integers(1, 20),
)
@settings(max_examples=120, deadline=None)
def test_reliability_bins_partition_the_samples(outcomes, seed, n_bins):
    rng = np.random.default_rng(seed)
    proba = rng.uniform(size=len(outcomes))
    bins = reliability_curve(outcomes, proba, n_bins=n_bins)
    assert sum(b.count for b in bins) == len(outcomes)
    for bin_ in bins:
        assert bin_.lower <= bin_.mean_predicted <= bin_.upper + 1e-12
        assert 0.0 <= bin_.observed_frequency <= 1.0


def _verification(p_false: float) -> Verification:
    alarm = Alarm(
        device_address="d", zip_code="z", timestamp=0.0,
        alarm_type="intrusion", property_type="residential",
        duration_seconds=1.0,
    )
    return Verification(alarm=alarm, is_false=p_false >= 0.5,
                        probability_false=p_false)


@given(
    p_falses=st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=1, max_size=40),
    seed=st.integers(0, 50),
    threshold=st.floats(0.0, 1.0),
)
@settings(max_examples=100, deadline=None)
def test_cost_model_accounting_invariants(p_falses, seed, threshold):
    rng = np.random.default_rng(seed)
    verifications = [_verification(p) for p in p_falses]
    truths = [bool(v) for v in rng.integers(0, 2, size=len(p_falses))]
    point = CostModel().evaluate(verifications, truths, threshold)
    assert point.total_cost >= 0.0
    assert point.arc_handled + point.customer_handled + point.suppressed == len(p_falses)
    assert point.cost_per_alarm * len(p_falses) == pytest_approx(point.total_cost)


def pytest_approx(value: float):
    import pytest
    return pytest.approx(value, rel=1e-9)


@given(
    p_falses=st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=2, max_size=30),
    seed=st.integers(0, 50),
)
@settings(max_examples=80, deadline=None)
def test_cost_model_threshold_monotonic_arc_share(p_falses, seed):
    """Raising the threshold can only move alarms away from the ARC."""
    rng = np.random.default_rng(seed)
    verifications = [_verification(p) for p in p_falses]
    truths = [bool(v) for v in rng.integers(0, 2, size=len(p_falses))]
    model = CostModel()
    low = model.evaluate(verifications, truths, threshold=0.2)
    high = model.evaluate(verifications, truths, threshold=0.8)
    assert high.arc_handled <= low.arc_handled
    assert high.customer_handled >= low.customer_handled
