"""Property-based tests for ML components (hypothesis)."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import assume, given, settings
from hypothesis.extra.numpy import arrays

from repro.ml import (
    DecisionTreeClassifier,
    LabelIndexer,
    OneHotEncoder,
    StandardScaler,
    accuracy_score,
    confusion_matrix,
    error_rate_reduction,
    pearson_correlation,
    precision_recall_f1,
    roc_auc_score,
    softmax,
    train_test_split,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@given(
    labels=st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=60)
)
@settings(max_examples=100, deadline=None)
def test_accuracy_of_self_is_one(labels):
    assert accuracy_score(labels, labels) == 1.0


@given(
    y_true=st.lists(st.integers(0, 3), min_size=1, max_size=60),
    seed=st.integers(0, 100),
)
@settings(max_examples=100, deadline=None)
def test_confusion_matrix_marginals(y_true, seed):
    rng = np.random.default_rng(seed)
    y_pred = rng.integers(0, 4, size=len(y_true))
    matrix = confusion_matrix(y_true, y_pred, n_classes=4)
    assert matrix.sum() == len(y_true)
    row_sums = matrix.sum(axis=1)
    for cls in range(4):
        assert row_sums[cls] == sum(1 for t in y_true if t == cls)


@given(
    y_true=st.lists(st.sampled_from([0, 1]), min_size=2, max_size=60),
    seed=st.integers(0, 100),
)
@settings(max_examples=100, deadline=None)
def test_precision_recall_f1_in_unit_interval(y_true, seed):
    rng = np.random.default_rng(seed)
    y_pred = rng.integers(0, 2, size=len(y_true))
    p, r, f1 = precision_recall_f1(y_true, y_pred, n_classes=2)
    for value in (p, r, f1):
        assert 0.0 <= value <= 1.0


@given(
    scores=st.lists(finite_floats, min_size=4, max_size=60),
    seed=st.integers(0, 50),
)
@settings(max_examples=100, deadline=None)
def test_roc_auc_complement_symmetry(scores, seed):
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, size=len(scores))
    assume(0 < y.sum() < len(y))
    auc = roc_auc_score(y, scores)
    flipped = roc_auc_score(1 - y, [-s for s in scores])
    assert 0.0 <= auc <= 1.0
    assert auc == np.clip(flipped, 0, 1) or abs(auc - flipped) < 1e-9


@given(logits=arrays(np.float64, (7, 4), elements=st.floats(-50, 50)))
@settings(max_examples=100, deadline=None)
def test_softmax_is_distribution(logits):
    proba = softmax(logits)
    assert np.allclose(proba.sum(axis=1), 1.0)
    assert (proba >= 0).all()


@given(
    x=st.lists(finite_floats, min_size=2, max_size=50),
    scale=st.floats(min_value=0.1, max_value=100, allow_nan=False),
    shift=finite_floats,
)
@settings(max_examples=100, deadline=None)
def test_pearson_invariant_to_positive_affine_transform(x, scale, shift):
    x_arr = np.array(x)
    assume(np.std(x_arr) > 1e-6)
    y = 2.0 * x_arr + 1.0
    r1 = pearson_correlation(x_arr, y)
    r2 = pearson_correlation(x_arr * scale + shift, y)
    assert abs(r1 - r2) < 1e-6


@given(
    baseline=st.floats(0.0, 0.999),
    improved=st.floats(0.0, 1.0),
)
@settings(max_examples=100, deadline=None)
def test_error_rate_reduction_sign_tracks_improvement(baseline, improved):
    reduction = error_rate_reduction(baseline, improved)
    if improved > baseline:
        assert reduction > 0
    elif improved < baseline:
        assert reduction < 0
    else:
        assert reduction == 0


@given(
    rows=st.lists(
        st.tuples(st.sampled_from("abcd"), st.integers(0, 5)),
        min_size=1, max_size=40,
    )
)
@settings(max_examples=100, deadline=None)
def test_onehot_rows_have_one_bit_per_column(rows):
    encoder = OneHotEncoder().fit(rows)
    out = encoder.transform(rows)
    assert out.shape[0] == len(rows)
    # Every fitted row must set exactly one bit per column block.
    assert (out.sum(axis=1) == 2.0).all()


@given(
    rows=st.lists(
        st.tuples(st.sampled_from("abcd")), min_size=1, max_size=30
    )
)
@settings(max_examples=80, deadline=None)
def test_ordinal_encoding_is_injective_per_category(rows):
    encoder = OneHotEncoder().fit(rows)
    out = encoder.ordinal_transform(rows)
    mapping = {}
    for (category,), code in zip(rows, out[:, 0]):
        mapping.setdefault(category, set()).add(code)
    assert all(len(codes) == 1 for codes in mapping.values())


@given(
    X=arrays(np.float64, (12, 3), elements=st.floats(-1e4, 1e4)),
)
@settings(max_examples=80, deadline=None)
def test_scaler_round_trip_statistics(X):
    scaler = StandardScaler().fit(X)
    scaled = scaler.transform(X)
    assert np.isfinite(scaled).all()
    # Columns with real variance end up zero-mean; (near-)constant columns
    # pass through and keep their offset, so exclude them.
    varying = X.std(axis=0) > 1e-9 * (1.0 + np.abs(X).max())
    if varying.any():
        assert np.allclose(scaled.mean(axis=0)[varying], 0.0, atol=1e-6)


@given(labels=st.lists(st.sampled_from(["a", "b", "c", True, 7]), min_size=1, max_size=40))
@settings(max_examples=100, deadline=None)
def test_label_indexer_round_trip(labels):
    indexer = LabelIndexer().fit(labels)
    assert indexer.inverse_transform(indexer.transform(labels)) == labels


@given(
    n=st.integers(min_value=4, max_value=80),
    fraction=st.floats(min_value=0.1, max_value=0.9),
    seed=st.integers(0, 50),
)
@settings(max_examples=100, deadline=None)
def test_split_partitions_data(n, fraction, seed):
    X = np.arange(n).reshape(-1, 1)
    y = np.arange(n) % 2
    X_tr, X_te, y_tr, y_te = train_test_split(X, y, fraction, random_state=seed)
    assert len(X_tr) + len(X_te) == n
    assert sorted(np.concatenate([X_tr, X_te]).ravel().tolist()) == list(range(n))
    assert len(y_tr) == len(X_tr) and len(y_te) == len(X_te)


@given(
    seed=st.integers(0, 30),
    n=st.integers(min_value=20, max_value=80),
)
@settings(max_examples=30, deadline=None)
def test_tree_training_accuracy_at_least_majority(seed, n):
    """A fitted tree can never do worse than predicting the majority class
    on its own training data."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 3))
    y = rng.integers(0, 2, size=n)
    tree = DecisionTreeClassifier(max_depth=4, random_state=0).fit(X, y)
    majority = max(np.mean(y), 1 - np.mean(y))
    assert tree.score(X, y) >= majority - 1e-12


@given(seed=st.integers(0, 50))
@settings(max_examples=20, deadline=None)
def test_tree_proba_always_distribution(seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(60, 4))
    y = rng.integers(0, 3, size=60)
    tree = DecisionTreeClassifier(max_depth=5, random_state=0).fit(X, y)
    proba = tree.predict_proba(rng.normal(size=(30, 4)))
    assert np.allclose(proba.sum(axis=1), 1.0)
    assert (proba >= 0).all() and (proba <= 1).all()
