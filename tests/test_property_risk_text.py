"""Property-based tests for risk factors and text analytics (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro.risk import RiskModel
from repro.text import match_topics, normalize, tokenize

location_names = st.sampled_from(
    ["Adorf", "Bedorf", "Cedorf", "Dedorf", "Edorf", "Fedorf"]
)


@given(
    counts=st.dictionaries(location_names, st.integers(0, 500), max_size=6),
    populations=st.dictionaries(location_names, st.integers(1, 100_000), min_size=6),
    top_fraction=st.floats(min_value=0.05, max_value=1.0),
)
@settings(max_examples=150, deadline=None)
def test_risk_model_invariants(counts, populations, top_fraction):
    model = RiskModel(counts, populations, top_fraction=top_fraction)
    covered = model.covered_locations()
    # Normalized values are always in [0, 1].
    for location in covered:
        assert 0.0 <= model.normalized(location) <= 1.0
        assert model.binary(location) in (0, 1)
        assert model.absolute(location) >= 0.0
    # When anything is covered, the normalization reaches its bounds.
    if len(covered) >= 2:
        values = [model.normalized(loc) for loc in covered]
        arf = [model.absolute(loc) for loc in covered]
        if max(arf) > min(arf):
            assert min(values) == 0.0
            assert max(values) == 1.0
    # The binary flag marks at least one and at most all covered locations.
    if covered:
        flags = sum(model.binary(loc) for loc in covered)
        assert 1 <= flags <= len(covered)
    # Uncovered locations are all-zero.
    assert model.absolute("Nowhere") == 0.0
    assert model.binary("Nowhere") == 0


@given(
    counts=st.dictionaries(location_names, st.integers(0, 100), min_size=2, max_size=6),
    populations=st.dictionaries(location_names, st.integers(1, 10_000), min_size=6),
)
@settings(max_examples=100, deadline=None)
def test_binary_risk_marks_highest_per_capita(counts, populations):
    model = RiskModel(counts, populations, top_fraction=0.25)
    covered = model.covered_locations()
    assume(len(covered) >= 2)
    flagged = [loc for loc in covered if model.binary(loc)]
    unflagged = [loc for loc in covered if not model.binary(loc)]
    assume(flagged and unflagged)
    assert min(model.absolute(loc) for loc in flagged) >= max(
        model.absolute(loc) for loc in unflagged
    )


@given(text=st.text(max_size=200))
@settings(max_examples=200, deadline=None)
def test_tokenize_never_crashes_and_is_normalized(text):
    tokens = tokenize(text)
    for token in tokens:
        assert token == normalize(token)
        assert token.isalpha() or token == ""


@given(text=st.text(max_size=200))
@settings(max_examples=150, deadline=None)
def test_match_topics_subset_of_known_topics(text):
    assert match_topics(text) <= {"fire", "intrusion"}


@given(
    prefix=st.text(max_size=30),
    suffix=st.text(max_size=30),
)
@settings(max_examples=100, deadline=None)
def test_fire_keyword_always_detected_regardless_of_context(prefix, suffix):
    text = f"{prefix} Brand {suffix}"
    assert "fire" in match_topics(text)


@given(text=st.text(max_size=100))
@settings(max_examples=150, deadline=None)
def test_normalize_is_idempotent(text):
    once = normalize(text)
    assert normalize(once) == once
