"""Property-based tests for the document store (hypothesis).

The central invariant: indexes are an *optimization* — for any documents,
any filter, the result of an index-assisted query equals a naive full scan
with the pure matcher.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.storage import Collection, aggregate, group_histogram, matches

# JSON-ish scalar values that can appear in alarm documents.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-1000, max_value=1000),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    st.sampled_from(["8001", "4001", "fire", "intrusion", "x", ""]),
)

documents = st.lists(
    st.fixed_dictionaries(
        {"zip": st.sampled_from(["8001", "4001", "4051", "9000"]),
         "duration": st.integers(min_value=0, max_value=600),
         "type": st.sampled_from(["fire", "intrusion", "technical"])},
        optional={"extra": scalars},
    ),
    max_size=40,
)

filters = st.one_of(
    st.fixed_dictionaries({"zip": st.sampled_from(["8001", "4001", "nope"])}),
    st.fixed_dictionaries(
        {"duration": st.fixed_dictionaries(
            {"$gte": st.integers(0, 600), "$lt": st.integers(0, 600)}
        )}
    ),
    st.fixed_dictionaries(
        {"zip": st.fixed_dictionaries(
            {"$in": st.lists(st.sampled_from(["8001", "4001"]), max_size=2)}
        )}
    ).filter(lambda f: f["zip"]["$in"]),
    st.fixed_dictionaries({
        "$or": st.lists(
            st.fixed_dictionaries({"type": st.sampled_from(["fire", "technical"])}),
            min_size=1, max_size=2,
        )
    }),
)


@given(docs=documents, flt=filters)
@settings(max_examples=120, deadline=None)
def test_indexed_query_equals_full_scan(docs, flt):
    indexed = Collection("indexed")
    indexed.create_index("zip", kind="hash")
    indexed.create_index("duration", kind="sorted")
    plain = Collection("plain")
    indexed.insert_many(docs)
    plain.insert_many(docs)
    assert indexed.find(flt) == plain.find(flt)


@given(docs=documents, flt=filters)
@settings(max_examples=80, deadline=None)
def test_find_results_actually_match(docs, flt):
    coll = Collection("c")
    coll.insert_many(docs)
    for doc in coll.find(flt):
        assert matches(doc, flt)


@given(docs=documents, flt=filters)
@settings(max_examples=80, deadline=None)
def test_count_equals_len_find(docs, flt):
    coll = Collection("c")
    coll.insert_many(docs)
    assert coll.count(flt) == len(coll.find(flt))


@given(docs=documents)
@settings(max_examples=60, deadline=None)
def test_delete_plus_remaining_partitions_collection(docs):
    coll = Collection("c")
    coll.insert_many(docs)
    flt = {"type": "fire"}
    total = len(coll)
    deleted = coll.delete_many(flt)
    assert deleted + len(coll) == total
    assert coll.count(flt) == 0


@given(docs=documents)
@settings(max_examples=60, deadline=None)
def test_group_histogram_sums_to_document_count(docs):
    histogram = group_histogram(docs, "zip")
    assert sum(histogram.values()) == len(docs)


@given(docs=documents)
@settings(max_examples=60, deadline=None)
def test_group_counts_match_manual_counting(docs):
    rows = aggregate(docs, [{"$group": {"_id": "$type", "n": {"$sum": 1}}}])
    manual = {}
    for doc in docs:
        manual[doc["type"]] = manual.get(doc["type"], 0) + 1
    assert {r["_id"]: r["n"] for r in rows} == manual


@given(docs=documents, low=st.integers(0, 600), high=st.integers(0, 600))
@settings(max_examples=80, deadline=None)
def test_sorted_index_range_equals_manual_filter(docs, low, high):
    coll = Collection("c")
    coll.create_index("duration", kind="sorted")
    coll.insert_many(docs)
    found = coll.find({"duration": {"$gte": low, "$lte": high}})
    manual = [d for d in docs if low <= d["duration"] <= high]
    assert len(found) == len(manual)


# -- planner equivalence suite ---------------------------------------------------
#
# The planner overhaul (multi-index intersection, $and descent, covered
# counts, index-order sorts, heap top-k) must be invisible: any planned
# execution equals a naive full scan with the pure matcher, for documents
# that include every shape the indexes handle specially — bools, None,
# missing fields and arrays on indexed fields.

irregular_values = st.one_of(
    st.integers(min_value=-50, max_value=650),
    st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
    st.booleans(),
    st.none(),
    st.lists(st.integers(min_value=0, max_value=9), max_size=3),
)

planner_documents = st.lists(
    st.fixed_dictionaries(
        {"zip": st.sampled_from(["8001", "4001", "4051", "9000"]),
         "type": st.sampled_from(["fire", "intrusion", "technical"])},
        optional={"duration": irregular_values,
                  "extra": scalars},
    ),
    max_size=30,
)

planner_filters = st.one_of(
    filters,
    st.fixed_dictionaries(
        {"duration": st.fixed_dictionaries(
            {"$gt": st.integers(0, 600), "$gte": st.integers(0, 600)}
        )}
    ),
    st.fixed_dictionaries({
        "$and": st.tuples(
            st.fixed_dictionaries({"zip": st.sampled_from(["8001", "4001"])}),
            st.fixed_dictionaries(
                {"duration": st.fixed_dictionaries({"$gte": st.integers(0, 600)})}
            ),
        ).map(list)
    }),
    st.fixed_dictionaries(
        {"zip": st.sampled_from(["8001", "9000"]),
         "type": st.sampled_from(["fire", "technical"]),
         "duration": st.fixed_dictionaries({"$lt": st.integers(0, 600)})}
    ),
    st.just({}),
)

sorts = st.one_of(
    st.none(),
    st.sampled_from(["duration", "zip", "missing_field"]),
    st.tuples(st.sampled_from(["duration", "zip"]), st.sampled_from([1, -1])),
)


def _naive_find(docs_with_ids, flt, sort=None, limit=None, skip=0):
    """Reference implementation: pure matcher + stable type-ranked sort."""
    from repro.storage.collection import _sort_key

    out = [dict(d) for d in docs_with_ids if matches(d, flt)]
    out.sort(key=lambda d: d["_id"])
    if sort is not None:
        field, direction = sort if isinstance(sort, tuple) else (sort, 1)
        out.sort(key=lambda d: _sort_key(d, field), reverse=direction < 0)
    if skip:
        out = out[skip:]
    if limit is not None:
        out = out[:limit]
    return out


def _indexed_collection(docs):
    coll = Collection("indexed")
    coll.create_index("zip", kind="hash")
    coll.create_index("type", kind="hash")
    coll.create_index("duration", kind="sorted")
    coll.insert_many(docs)
    return coll


@given(docs=planner_documents, flt=planner_filters, sort=sorts,
       limit=st.one_of(st.none(), st.integers(0, 8)),
       skip=st.integers(0, 3))
@settings(max_examples=150, deadline=None)
def test_planned_find_equals_naive_scan(docs, flt, sort, limit, skip):
    coll = _indexed_collection(docs)
    reference = _naive_find(list(coll.all_documents()), flt, sort, limit, skip)
    assert coll.find(flt, sort=sort, limit=limit, skip=skip) == reference


@given(docs=planner_documents, flt=planner_filters)
@settings(max_examples=120, deadline=None)
def test_planned_count_equals_naive_scan(docs, flt):
    coll = _indexed_collection(docs)
    assert coll.count(flt) == len(_naive_find(list(coll.all_documents()), flt))


@given(docs=planner_documents, flt=planner_filters)
@settings(max_examples=80, deadline=None)
def test_explain_candidates_are_a_superset_of_matches(docs, flt):
    coll = _indexed_collection(docs)
    plan = coll.explain(flt)
    assert plan["candidates"] >= coll.count(flt)
    if plan["covered"]:
        assert plan["candidates"] == coll.count(flt)
        assert plan["verified"] == 0


@given(docs=planner_documents, since=st.integers(0, 600),
       limit=st.integers(1, 5))
@settings(max_examples=60, deadline=None)
def test_aggregate_pushdown_equals_interpreter(docs, since, limit):
    coll = _indexed_collection(docs)
    pipeline = [
        {"$match": {"duration": {"$gte": since}}},
        {"$sort": {"duration": -1}},
        {"$limit": limit},
        {"$group": {"_id": "$zip", "n": {"$sum": 1}}},
    ]
    assert aggregate(coll, pipeline) == aggregate(coll.all_documents(), pipeline)


@given(docs=documents)
@settings(max_examples=40, deadline=None)
def test_persistence_round_trip_preserves_documents(docs, tmp_path_factory):
    from repro.storage import DocumentStore
    store = DocumentStore()
    store.collection("c").insert_many(docs)
    directory = tmp_path_factory.mktemp("db")
    store.save(directory)
    loaded = DocumentStore.load(directory)
    original = [{k: v for k, v in d.items() if k != "_id"}
                for d in store.collection("c").all_documents()]
    restored = [{k: v for k, v in d.items() if k != "_id"}
                for d in loaded.collection("c").all_documents()]
    assert original == restored
