"""Property-based tests for the streaming substrate (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.streaming import (
    Broker,
    CompactJsonSerializer,
    Consumer,
    PartitionedDataset,
    Producer,
    ReflectiveJsonSerializer,
    assign_partitions,
)

json_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**31), max_value=2**31),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        st.text(max_size=20),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


@given(obj=json_values)
@settings(max_examples=150, deadline=None)
def test_serializers_round_trip_any_json(obj):
    for serializer in (CompactJsonSerializer(), ReflectiveJsonSerializer()):
        assert serializer.deserialize(serializer.serialize(obj)) == obj


@given(obj=json_values)
@settings(max_examples=100, deadline=None)
def test_serializers_are_wire_compatible(obj):
    compact, reflective = CompactJsonSerializer(), ReflectiveJsonSerializer()
    assert reflective.deserialize(compact.serialize(obj)) == obj
    assert compact.deserialize(reflective.serialize(obj)) == obj


@given(
    values=st.lists(st.integers(), min_size=1, max_size=60),
    num_partitions=st.integers(min_value=1, max_value=6),
    keyed=st.booleans(),
)
@settings(max_examples=100, deadline=None)
def test_no_record_lost_or_duplicated(values, num_partitions, keyed):
    """Conservation: everything produced is consumed exactly once."""
    broker = Broker()
    broker.create_topic("t", num_partitions=num_partitions)
    producer = Producer(broker)
    key_fn = (lambda v: str(v % 5)) if keyed else None
    producer.send_many("t", values, key_fn=key_fn)
    consumer = Consumer(broker, "g")
    consumer.subscribe("t")
    consumed = list(consumer.stream_values(max_records=7))
    assert sorted(consumed) == sorted(values)


@given(
    values=st.lists(st.integers(), min_size=1, max_size=40),
    commit_after=st.integers(min_value=1, max_value=40),
)
@settings(max_examples=80, deadline=None)
def test_exactly_once_with_restart_at_any_point(values, commit_after):
    """Conservation across a crash/restart at an arbitrary commit point."""
    broker = Broker()
    broker.create_topic("t", num_partitions=2)
    Producer(broker).send_many("t", values)

    first = Consumer(broker, "g")
    first.subscribe("t")
    consumed = []
    while len(consumed) < min(commit_after, len(values)):
        batch = first.poll_values(max_records=3)
        if not batch:
            break
        consumed.extend(batch)
        first.commit()
    # first consumer "crashes" here; a replacement takes over.
    second = Consumer(broker, "g")
    second.subscribe("t")
    consumed.extend(second.stream_values(max_records=5))
    assert sorted(consumed) == sorted(values)


@given(
    num_partitions=st.integers(min_value=1, max_value=12),
    num_members=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=80, deadline=None)
def test_group_assignment_partitions_exactly(num_partitions, num_members):
    broker = Broker()
    broker.create_topic("t", num_partitions=num_partitions)
    partitions = broker.partitions_for("t")
    shares = [assign_partitions(partitions, num_members, m) for m in range(num_members)]
    union = [tp for share in shares for tp in share]
    assert sorted(union) == sorted(partitions)
    assert len(union) == len(set(union))


@given(
    items=st.lists(st.integers(), max_size=50),
    partitions_a=st.integers(min_value=1, max_value=5),
    partitions_b=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=100, deadline=None)
def test_repartition_preserves_elements(items, partitions_a, partitions_b):
    ds = PartitionedDataset.from_iterable(items, partitions_a)
    assert sorted(ds.repartition(partitions_b).collect()) == sorted(items)


@given(items=st.lists(st.integers(min_value=-50, max_value=50), max_size=50))
@settings(max_examples=100, deadline=None)
def test_dataset_transformations_match_list_semantics(items):
    ds = PartitionedDataset.from_iterable(items, 3)
    assert sorted(ds.map(lambda x: x * 2).collect()) == sorted(x * 2 for x in items)
    assert sorted(ds.filter(lambda x: x > 0).collect()) == sorted(
        x for x in items if x > 0
    )
    assert sorted(ds.distinct().collect()) == sorted(set(items))


@given(items=st.lists(st.integers(), min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_cache_does_not_change_results(items):
    plain = PartitionedDataset.from_iterable(items, 2).map(lambda x: x + 1)
    cached = PartitionedDataset.from_iterable(items, 2).map(lambda x: x + 1).cache()
    assert plain.collect() == cached.collect()
    assert cached.collect() == cached.collect()
