"""Replication tests: epoch fencing, WAL shipping, catch-up, failover."""

import threading

import pytest

from repro.durability.journal import DurableDocumentStore
from repro.durability.recovery import RecoveryManager
from repro.errors import (
    ConfigurationError,
    DurabilityError,
    ReplicationError,
    StaleEpochError,
    WALError,
)
from repro.replication import (
    EpochFile,
    FailoverMonitor,
    LocalReplicaPeer,
    LogShipper,
    ReplicaController,
    ReplicaSet,
)


def make_peer(root, name, **kwargs):
    directory = root / name
    kwargs.setdefault("sync", "always")
    return LocalReplicaPeer(DurableDocumentStore(directory, **kwargs), directory)


@pytest.fixture
def trio(tmp_path):
    """Three-replica set with respawn controllers, sync ack."""
    peers = [make_peer(tmp_path, f"replica-{r}") for r in range(3)]
    controllers = [
        ReplicaController(
            respawn=lambda r=r: make_peer(tmp_path, f"replica-{r}")
        )
        for r in range(3)
    ]
    rs = ReplicaSet(peers, shard=0, ack="sync", controllers=controllers)
    yield rs
    rs.close()


# -- epoch file ---------------------------------------------------------------------


class TestEpochFile:
    def test_starts_at_zero_and_persists(self, tmp_path):
        ef = EpochFile(tmp_path)
        assert ef.epoch == 0
        assert ef.advance(3) == 3
        assert EpochFile(tmp_path).epoch == 3  # survives reopen

    def test_monotonic(self, tmp_path):
        ef = EpochFile(tmp_path)
        ef.advance(5)
        assert ef.advance(5) == 5  # equal is a no-op
        with pytest.raises(StaleEpochError):
            ef.advance(4)

    def test_corrupt_file_rejected(self, tmp_path):
        (tmp_path / "EPOCH").write_text("not json")
        with pytest.raises(ReplicationError, match="unreadable"):
            EpochFile(tmp_path)


# -- WAL tail API -------------------------------------------------------------------


class TestWalTail:
    def test_read_batch_is_bounded(self, tmp_path):
        store = DurableDocumentStore(tmp_path, sync="always")
        coll = store.collection("t")
        for i in range(10):
            coll.insert_one({"i": i})
        batch = store.wal.read_batch(0, max_records=4)
        assert [lsn for lsn, _ in batch] == [0, 1, 2, 3]
        # max_bytes still yields at least one record
        batch = store.wal.read_batch(0, max_bytes=1)
        assert len(batch) == 1
        assert store.wal.read_batch(store.wal.next_lsn) == []
        store.close()

    def test_read_batch_below_first_lsn_raises(self, tmp_path):
        from repro.durability.wal import WriteAheadLog

        wal = WriteAheadLog(tmp_path, segment_max_bytes=32, sync="always")
        for i in range(6):
            wal.append(b'{"i": %d}' % i)
        wal.truncate_until(wal.next_lsn)  # drop every sealed segment
        assert wal.first_lsn > 0
        wal.append(b'{"i": 6}')
        with pytest.raises(WALError):
            wal.read_batch(0)
        assert wal.read_batch(wal.first_lsn)  # retained suffix still reads
        wal.close()

    def test_wait_for_lsn(self, tmp_path):
        store = DurableDocumentStore(tmp_path, sync="always")
        coll = store.collection("t")
        coll.insert_one({"i": 0})
        assert store.wal.wait_for_lsn(0, timeout=0.1)  # already there
        assert not store.wal.wait_for_lsn(1, timeout=0.05)  # not yet

        def append_soon():
            coll.insert_one({"i": 1})

        timer = threading.Timer(0.05, append_soon)
        timer.start()
        assert store.wal.wait_for_lsn(1, timeout=2.0)  # woken by the append
        store.close()


# -- follower apply -----------------------------------------------------------------


class TestApplyReplicated:
    def test_lsn_aligned_apply_and_dup_skip(self, tmp_path):
        leader = DurableDocumentStore(tmp_path / "a", sync="always")
        follower = DurableDocumentStore(tmp_path / "b", sync="always")
        leader.collection("t").insert_many([{"i": i} for i in range(3)])
        entries = leader.wal.read_batch(0)
        for lsn, payload in entries:
            assert follower.apply_replicated(lsn, payload) == lsn + 1
        assert follower.collection("t").count() == 3
        # re-applying is an idempotent no-op
        lsn0, payload0 = entries[0]
        assert follower.apply_replicated(lsn0, payload0) == len(entries)
        assert follower.collection("t").count() == 3
        leader.close(), follower.close()

    def test_gap_rejected(self, tmp_path):
        leader = DurableDocumentStore(tmp_path / "a", sync="always")
        follower = DurableDocumentStore(tmp_path / "b", sync="always")
        for i in range(3):
            leader.collection("t").insert_one({"i": i})
        entries = leader.wal.read_batch(0)
        assert len(entries) == 3
        with pytest.raises(DurabilityError, match="gap"):
            follower.apply_replicated(*entries[2])
        leader.close(), follower.close()

    def test_export_install_round_trip(self, tmp_path):
        src = DurableDocumentStore(tmp_path / "a", sync="always")
        dst = DurableDocumentStore(tmp_path / "b", sync="always")
        coll = src.collection("t")
        coll.create_index("k", unique=True)
        coll.insert_many([{"k": i, "v": i * i} for i in range(8)])
        state = src.export_state()
        assert dst.install_state(state, state["lsn"]) == state["lsn"]
        assert dst.collection("t").count() == 8
        assert dst.collection("t").find_one({"k": 5})["v"] == 25
        assert "k" in dst.collection("t").index_fields()
        assert dst.wal.next_lsn == src.wal.next_lsn
        src.close(), dst.close()


# -- replica set: data path ---------------------------------------------------------


class TestReplicaSetDataPath:
    def test_sync_write_is_on_every_follower(self, trio):
        coll = trio.collection("alarms")
        coll.insert_many([{"d": i} for i in range(10)])
        for index in trio.follower_indexes():
            peer = trio.peers[index]
            assert peer.store.collection("alarms").count() == 10
        assert all(lag == 0 for lag in trio.replication_lag().values())

    def test_async_followers_converge(self, tmp_path):
        peers = [make_peer(tmp_path, f"r{r}") for r in range(2)]
        rs = ReplicaSet(peers, ack="async")
        coll = rs.collection("alarms")
        coll.insert_many([{"d": i} for i in range(50)])
        follower = rs.peers[rs.follower_indexes()[0]]
        deadline = threading.Event()
        for _ in range(200):
            if follower.store.collection("alarms").count() == 50:
                break
            deadline.wait(0.02)
        assert follower.store.collection("alarms").count() == 50
        rs.close()

    def test_follower_reads_round_robin(self, tmp_path):
        peers = [make_peer(tmp_path, f"r{r}") for r in range(3)]
        rs = ReplicaSet(peers, ack="sync", read_from="follower")
        coll = rs.collection("alarms")
        coll.insert_many([{"d": i} for i in range(6)])
        assert coll.count() == 6  # served by a follower
        assert len(coll.find(sort=("d", 1))) == 6
        rs.close()

    def test_update_and_delete_replicate(self, trio):
        coll = trio.collection("alarms")
        coll.insert_many([{"d": i, "hot": False} for i in range(6)])
        assert coll.update_many({"d": {"$lt": 3}}, {"$set": {"hot": True}}) == 3
        assert coll.delete_many({"d": 5}) == 1
        for index in trio.follower_indexes():
            fcoll = trio.peers[index].store.collection("alarms")
            assert fcoll.count({"hot": True}) == 3
            assert fcoll.count() == 5

    def test_non_write_method_rejected(self, trio):
        with pytest.raises(ReplicationError, match="not a replicated write"):
            trio._write("alarms", "find", {})

    def test_configuration_validated(self, tmp_path):
        peer = make_peer(tmp_path, "solo")
        with pytest.raises(ConfigurationError):
            ReplicaSet([])
        with pytest.raises(ConfigurationError):
            ReplicaSet([peer], ack="quorum")
        with pytest.raises(ConfigurationError):
            ReplicaSet([peer], read_from="nearest")
        with pytest.raises(ConfigurationError):
            ReplicaSet([peer], controllers=[ReplicaController()] * 2)

    def test_single_peer_set_works(self, tmp_path):
        rs = ReplicaSet([make_peer(tmp_path, "solo")])
        coll = rs.collection("t")
        coll.insert_one({"d": 1})
        assert coll.count() == 1
        assert rs.replication_lag() == {}
        rs.close()


# -- fencing ------------------------------------------------------------------------


class TestFencing:
    def test_demoted_leader_cannot_ack_writes(self, trio):
        coll = trio.collection("alarms")
        coll.insert_many([{"d": i} for i in range(4)])
        old_leader = trio.leader
        old_epoch = trio.epoch
        record = trio.promote()  # leader is alive; promotion still fences it
        assert record["epoch"] == old_epoch + 1
        with pytest.raises(StaleEpochError):
            old_leader.apply_write(old_epoch, "alarms", "insert_one",
                                   [{"d": 99}])

    def test_zombie_shipper_rejected_at_replica_apply(self, trio):
        coll = trio.collection("alarms")
        coll.insert_one({"d": 0})
        old_epoch = trio.epoch
        follower = trio.peers[trio.follower_indexes()[0]]
        trio.promote()
        with pytest.raises(StaleEpochError):
            follower.replica_apply(old_epoch, [])

    def test_set_epoch_is_monotonic(self, trio):
        follower = trio.peers[trio.follower_indexes()[0]]
        current = follower.epoch
        with pytest.raises(StaleEpochError):
            follower.set_epoch(current - 1)

    def test_peer_adopts_newer_epoch_lazily(self, tmp_path):
        peer = make_peer(tmp_path, "late")
        assert peer.epoch == 0
        peer.apply_write(7, "t", "insert_one", [{"d": 1}])  # missed broadcasts
        assert peer.epoch == 7
        with pytest.raises(StaleEpochError):
            peer.apply_write(6, "t", "insert_one", [{"d": 2}])


# -- failover -----------------------------------------------------------------------


class TestFailover:
    def test_promotion_is_zero_loss_under_sync_ack(self, trio):
        coll = trio.collection("alarms")
        coll.insert_many([{"d": i} for i in range(25)])
        trio.peers[trio.leader_index].simulate_crash()
        record = trio.ensure_leader()
        assert record is not None
        assert record["old_epoch"] == 0 and record["epoch"] == 1
        assert trio.collection("alarms").count() == 25  # nothing acked was lost

    def test_promotion_picks_most_caught_up(self, trio):
        coll = trio.collection("alarms")
        coll.insert_many([{"d": i} for i in range(5)])
        laggard = trio.follower_indexes()[-1]
        trio._shippers[laggard].stop()  # freeze one follower's frontier
        coll.insert_many([{"d": i} for i in range(5, 10)])
        uptodate = [i for i in trio.follower_indexes() if i != laggard][0]
        record = trio.promote()
        assert record["new_leader"] == uptodate
        assert trio.collection("alarms").count() == 10

    def test_fail_over_drill_respawns_old_leader(self, trio):
        coll = trio.collection("alarms")
        coll.insert_many([{"d": i} for i in range(8)])
        old_leader = trio.leader_index
        record = trio.fail_over(kill=True)
        assert record["old_leader"] == old_leader
        assert record["new_leader"] != old_leader
        assert record["respawned"] is True
        # the rejoined replica catches up under the new epoch
        coll.insert_one({"d": 100})
        rejoined = trio.peers[old_leader]
        for _ in range(200):
            if rejoined.store.collection("alarms").count() == 9:
                break
            threading.Event().wait(0.02)
        assert rejoined.store.collection("alarms").count() == 9
        assert rejoined.epoch == trio.epoch

    def test_writes_reroute_after_leader_death(self, trio):
        coll = trio.collection("alarms")
        coll.insert_many([{"d": i} for i in range(4)])
        trio.peers[trio.leader_index].simulate_crash()
        coll.insert_one({"d": 4})  # triggers promote-and-retry internally
        assert len(trio.failovers) == 1
        assert trio.collection("alarms").count() == 5

    def test_reads_reroute_after_leader_death(self, trio):
        coll = trio.collection("alarms")
        coll.insert_many([{"d": i} for i in range(4)])
        trio.peers[trio.leader_index].simulate_crash()
        assert coll.count() == 4
        assert len(trio.failovers) == 1

    def test_ensure_leader_is_idempotent(self, trio):
        assert trio.ensure_leader() is None  # healthy leader: no-op
        trio.peers[trio.leader_index].simulate_crash()
        assert trio.ensure_leader() is not None
        assert trio.ensure_leader() is None

    def test_promote_with_no_live_follower_fails(self, tmp_path):
        rs = ReplicaSet([make_peer(tmp_path, "solo")])
        with pytest.raises(ReplicationError, match="no live follower"):
            rs.promote()
        rs.close()

    def test_failover_monitor_promotes_dead_leader(self, trio):
        trio.collection("alarms").insert_one({"d": 1})
        monitor = FailoverMonitor([trio], interval=0.02, failure_threshold=2)
        monitor.start()
        try:
            trio.peers[trio.leader_index].simulate_crash()
            for _ in range(300):
                if monitor.failovers:
                    break
                threading.Event().wait(0.02)
        finally:
            monitor.stop()
        assert len(monitor.failovers) == 1
        assert trio.collection("alarms").count() == 1


# -- catch-up -----------------------------------------------------------------------


class TestCatchUp:
    def test_fresh_follower_catches_up_from_wal(self, tmp_path):
        peers = [make_peer(tmp_path, f"r{r}") for r in range(2)]
        peers[0].store.collection("t").insert_many([{"i": i} for i in range(12)])
        rs = ReplicaSet(peers, ack="sync")
        assert rs.leader_index == 0  # most caught up
        rs.collection("t").insert_one({"i": 12})
        assert peers[1].store.collection("t").count() == 13
        rs.close()

    def test_follower_behind_retained_log_installs_snapshot(self, tmp_path):
        # Build a leader whose WAL does not retain LSN 0 (its state was
        # installed from a snapshot at LSN 20 — the same shape a long-lived
        # leader has after compaction dropped its early segments).
        seed = DurableDocumentStore(tmp_path / "seed", sync="always")
        for i in range(20):
            seed.collection("t").insert_one({"i": i})
        state = seed.export_state()
        seed.close()
        leader = make_peer(tmp_path, "leader")
        leader.snapshot_install(0, state, state["lsn"])
        assert leader.store.wal.first_lsn == 20

        follower = make_peer(tmp_path, "follower")  # frontier 0: behind the log
        rs = ReplicaSet([leader, follower], ack="sync")
        assert rs.leader_index == 0
        shipper = rs._shippers[1]
        rs.collection("t").insert_one({"i": 20})
        assert shipper.snapshots_installed == 1
        assert follower.store.collection("t").count() == 21
        rs.close()


# -- recovery integration -----------------------------------------------------------


class TestReplicatedRecovery:
    def test_replicated_store_recovers_and_reelects(self, tmp_path):
        mgr = RecoveryManager(tmp_path, replicas=2, sync="always",
                              shard_keys={"t": "k"})
        mgr.recover()
        coll = mgr.store.collection("t")
        coll.insert_many([{"k": f"k{i}", "v": i} for i in range(15)])
        mgr.crash()

        mgr2 = RecoveryManager(tmp_path, replicas=2, sync="always",
                               shard_keys={"t": "k"})
        report = mgr2.recover()
        assert report.store_ops_replayed >= 1
        assert mgr2.store.collection("t").count() == 15
        mgr2.store.close()

    def test_sharded_replicated_failover(self, tmp_path):
        mgr = RecoveryManager(tmp_path, store_shards=2, replicas=2,
                              sync="always", shard_keys={"t": "k"})
        mgr.recover()
        store = mgr.store
        coll = store.collection("t")
        coll.insert_many([{"k": f"k{i}", "v": i} for i in range(30)])
        statuses = store.replica_status()
        assert [s["shard"] for s in statuses] == [0, 1]
        record = store.fail_over_shard(0)
        assert record["shard"] == 0
        assert record["epoch"] == 1
        assert coll.count() == 30
        coll.insert_one({"k": "post", "v": 999})
        assert coll.count() == 31
        store.close()

    def test_promotion_epoch_survives_recovery(self, tmp_path):
        mgr = RecoveryManager(tmp_path, replicas=2, sync="always")
        mgr.recover()
        store = mgr.store
        store.collection("t").insert_one({"k": 1})
        record = store.fail_over_shard(0)
        assert record["epoch"] == 1
        mgr.crash()

        mgr2 = RecoveryManager(tmp_path, replicas=2, sync="always")
        mgr2.recover()
        replica_set = mgr2.store.shards[0]
        assert replica_set.epoch >= 1  # the fence never regresses
        assert mgr2.store.collection("t").count() == 1
        mgr2.store.close()
