"""Risk-factor and security-map tests (Section 5.4 / Figure 8)."""

import pytest

from repro.errors import ConfigurationError
from repro.risk import PlacedRisk, RiskLevel, RiskModel, SecurityMap, incident_counts

INCIDENT_DOCS = [
    {"location": "Adorf", "topics": ["fire"]},
    {"location": "Adorf", "topics": ["fire"]},
    {"location": "Adorf", "topics": ["intrusion"]},
    {"location": "Bedorf", "topics": ["intrusion"]},
    {"location": "Cedorf", "topics": ["fire", "intrusion"]},
    {"location": None, "topics": ["fire"]},
]

POPULATIONS = {"Adorf": 1000, "Bedorf": 500, "Cedorf": 100, "Dedorf": 2000}


class TestIncidentCounts:
    def test_counts_all_topics(self):
        assert incident_counts(INCIDENT_DOCS) == {"Adorf": 3, "Bedorf": 1, "Cedorf": 1}

    def test_counts_by_topic(self):
        assert incident_counts(INCIDENT_DOCS, topic="fire") == {"Adorf": 2, "Cedorf": 1}

    def test_missing_location_skipped(self):
        assert None not in incident_counts(INCIDENT_DOCS)


class TestRiskModel:
    @pytest.fixture
    def model(self):
        return RiskModel(incident_counts(INCIDENT_DOCS), POPULATIONS, top_fraction=0.34)

    def test_absolute_is_per_capita(self, model):
        assert model.absolute("Adorf") == pytest.approx(3 / 1000)
        assert model.absolute("Cedorf") == pytest.approx(1 / 100)

    def test_normalized_bounds(self, model):
        values = [model.normalized(loc) for loc in model.covered_locations()]
        assert min(values) == 0.0
        assert max(values) == 1.0
        assert all(0.0 <= v <= 1.0 for v in values)

    def test_normalized_formula(self, model):
        # x' = (x - min) / (max - min); Cedorf has the max ARF, Bedorf the min.
        arf = {loc: model.absolute(loc) for loc in model.covered_locations()}
        low, high = min(arf.values()), max(arf.values())
        expected = (arf["Adorf"] - low) / (high - low)
        assert model.normalized("Adorf") == pytest.approx(expected)

    def test_binary_marks_top_fraction(self, model):
        # 3 covered locations, top 34% -> exactly 1 high-risk location.
        flags = [model.binary(loc) for loc in model.covered_locations()]
        assert sum(flags) == 1
        assert model.binary("Cedorf") == 1  # highest per-capita rate

    def test_uncovered_location_is_zero(self, model):
        assert model.absolute("Dedorf") == 0.0
        assert model.normalized("Dedorf") == 0.0
        assert model.binary("Dedorf") == 0

    def test_factor_dispatch(self, model):
        assert model.factor("Cedorf", "absolute") == model.absolute("Cedorf")
        assert model.factor("Cedorf", "normalized") == model.normalized("Cedorf")
        assert model.factor("Cedorf", "binary") == float(model.binary("Cedorf"))

    def test_factor_unknown_kind_raises(self, model):
        with pytest.raises(ConfigurationError):
            model.factor("Adorf", "quadratic")

    def test_coverage(self, model):
        assert model.coverage(POPULATIONS) == pytest.approx(3 / 4)
        assert model.coverage([]) == 0.0

    def test_location_without_population_is_skipped(self):
        model = RiskModel({"Ghost": 5}, POPULATIONS)
        assert len(model) == 0

    def test_invalid_top_fraction(self):
        with pytest.raises(ConfigurationError):
            RiskModel({}, {}, top_fraction=0.0)

    def test_negative_count_raises(self):
        with pytest.raises(ConfigurationError):
            RiskModel({"Adorf": -1}, POPULATIONS)

    def test_empty_model(self):
        model = RiskModel({}, {})
        assert model.covered_locations() == []
        assert model.absolute("anything") == 0.0


class TestSecurityMap:
    @pytest.fixture
    def places(self):
        return [
            PlacedRisk("Safe1", 0.0, 0.0, 0.0),
            PlacedRisk("Safe2", 10.0, 0.0, 0.1),
            PlacedRisk("Mid", 0.0, 10.0, 1.0),
            PlacedRisk("Hot", 10.0, 10.0, 10.0),
        ]

    def test_levels_ordered_by_risk(self, places):
        smap = SecurityMap(places, width=2, height=2)
        assert smap.level_of_place("Hot") == RiskLevel.HIGH
        assert smap.level_of_place("Safe1") == RiskLevel.SAFE

    def test_cell_aggregation_sums_risk(self):
        smap = SecurityMap([
            PlacedRisk("a", 0.0, 0.0, 1.0),
            PlacedRisk("b", 0.0, 0.0, 2.0),
            PlacedRisk("far", 100.0, 100.0, 0.5),
        ], width=4, height=4)
        col, row = smap.cell_of(0.0, 0.0)
        assert smap.cell_risk(col, row) == pytest.approx(3.0)

    def test_render_dimensions_and_glyphs(self, places):
        smap = SecurityMap(places, width=6, height=3)
        rendering = smap.render()
        lines = rendering.split("\n")
        assert len(lines) == 3
        assert all(len(line) == 6 for line in lines)
        assert set(rendering) <= {".", "o", "#", "\n"}

    def test_level_counts_cover_grid(self, places):
        smap = SecurityMap(places, width=5, height=4)
        counts = smap.level_counts()
        assert sum(counts.values()) == 20

    def test_rows_structured_output(self, places):
        smap = SecurityMap(places, width=2, height=2)
        rows = smap.rows()
        assert len(rows) == 4  # four distinct occupied cells
        assert {"col", "row", "risk", "level"} <= set(rows[0])

    def test_unknown_place_raises(self, places):
        with pytest.raises(KeyError):
            SecurityMap(places).level_of_place("Atlantis")

    def test_empty_places_raises(self):
        with pytest.raises(ConfigurationError):
            SecurityMap([])

    def test_invalid_quantiles_raise(self, places):
        with pytest.raises(ConfigurationError):
            SecurityMap(places, medium_quantile=0.9, high_quantile=0.5)

    def test_single_place_map(self):
        smap = SecurityMap([PlacedRisk("Only", 5.0, 5.0, 1.0)], width=3, height=3)
        assert sum(smap.level_counts().values()) == 9
