"""Property/fuzz tests for the shared CRC frame format.

The invariants that make the framing trustworthy under corruption:

* a clean stream round-trips exactly, however the bytes are chunked;
* a delivered payload is always checksum-verified — corruption may *lose*
  frames, it never *invents or alters* one;
* the hunting decoder survives garbage prefixes, bit flips and truncated
  tails without crashing, and resynchronizes onto later valid frames;
* the strict prefix scan (the WAL's read discipline) stops exactly at the
  first torn byte.
"""

import struct

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.errors import FramingError
from repro.runtime.framing import (
    HEADER,
    FrameDecoder,
    iter_frames,
    pack_frame,
    pack_frames,
    scan_valid_prefix,
)

payloads_strategy = st.lists(
    st.binary(min_size=0, max_size=200), min_size=0, max_size=12
)

# A filler the hunt always rejects: 0xFF...FF parses as a 4 GiB length,
# over any decoder's max_frame_bytes.  Feeding (header + max) bytes of it
# forces every earlier candidate to be adjudicated, so no real frame can
# still be pending "waiting for more bytes" afterwards.
def _flush_filler(max_frame_bytes: int) -> bytes:
    return b"\xff" * (HEADER.size + max_frame_bytes)


def _chunked_feed(decoder: FrameDecoder, data: bytes, cuts: list[int]) -> list[bytes]:
    bounds = sorted({0, len(data), *(c % (len(data) + 1) for c in cuts)})
    out: list[bytes] = []
    for start, end in zip(bounds, bounds[1:]):
        out.extend(decoder.feed(data[start:end]))
    return out


def _is_subsequence(needle: list[bytes], haystack: list[bytes]) -> bool:
    it = iter(haystack)
    return all(any(item == candidate for candidate in it) for item in needle)


# -- clean streams ------------------------------------------------------------------


@given(payloads_strategy, st.lists(st.integers(0, 10_000), max_size=8))
@settings(max_examples=120, deadline=None)
def test_roundtrip_survives_arbitrary_chunking(payloads, cuts):
    decoder = FrameDecoder()
    got = _chunked_feed(decoder, pack_frames(payloads), cuts)
    assert got == payloads
    assert decoder.resync_bytes == 0
    assert decoder.pending_bytes == 0


@given(payloads_strategy)
@settings(max_examples=80, deadline=None)
def test_iter_frames_roundtrip(payloads):
    assert list(iter_frames(pack_frames(payloads))) == payloads


@given(payloads_strategy)
@settings(max_examples=80, deadline=None)
def test_scan_valid_prefix_accepts_whole_clean_buffer(payloads):
    data = pack_frames(payloads)
    assert scan_valid_prefix(data) == (len(data), len(payloads))


# -- torn tails ---------------------------------------------------------------------


@given(payloads_strategy, st.integers(min_value=1, max_value=10_000))
@settings(max_examples=120, deadline=None)
def test_truncated_tail_never_crashes_and_keeps_whole_frames(payloads, cut):
    data = pack_frames(payloads)
    truncated = data[:len(data) - (cut % (len(data) + 1))]

    # Strict scan: every frame wholly inside the truncation survives, the
    # first straddling frame is the torn tail.
    valid_bytes, records = scan_valid_prefix(truncated)
    expected_records, end = 0, 0
    for payload in payloads:
        end += HEADER.size + len(payload)
        if end > len(truncated):
            break
        expected_records += 1
    assert records == expected_records
    assert valid_bytes <= len(truncated)
    assert list(iter_frames(truncated[:valid_bytes]))[:records] == \
        payloads[:records]

    # Hunting decoder: same frames delivered, no crash, nothing invented.
    decoder = FrameDecoder()
    got = decoder.feed(truncated)
    assert got[:expected_records] == payloads[:expected_records]


# -- corruption ---------------------------------------------------------------------


@given(
    st.binary(min_size=1, max_size=64),
    st.lists(st.binary(min_size=1, max_size=100), min_size=1, max_size=6),
    st.lists(st.integers(0, 10_000), max_size=6),
)
@settings(max_examples=100, deadline=None)
def test_garbage_prefix_resyncs_onto_real_frames(garbage, payloads, cuts):
    max_frame = 4096
    decoder = FrameDecoder(max_frame_bytes=max_frame)
    stream = garbage + pack_frames(payloads) + _flush_filler(max_frame)
    got = _chunked_feed(decoder, stream, cuts)
    # Garbage can in principle parse as frames of its own (e.g. eight zero
    # bytes are a valid empty frame), so the guarantee is: the real
    # payloads all come through, in order.
    assert _is_subsequence(payloads, got)


@given(st.data())
@settings(max_examples=100, deadline=None)
def test_single_bit_flip_loses_at_most_the_corrupted_frame(data):
    payloads = [b"alpha-frame-1", b"beta-frame-22", b"gamma-frame-333"]
    stream = bytearray(pack_frames(payloads))
    flip_at = data.draw(st.integers(0, len(stream) - 1))
    stream[flip_at] ^= 1 << data.draw(st.integers(0, 7))

    max_frame = 4096
    decoder = FrameDecoder(max_frame_bytes=max_frame)
    got = decoder.feed(bytes(stream) + _flush_filler(max_frame))

    # Exactly one frame's bytes were damaged; the other two must arrive
    # intact and in order, and nothing corrupt may be delivered.
    damaged = 0
    offset = 0
    survivors = []
    for payload in payloads:
        frame_end = offset + HEADER.size + len(payload)
        if offset <= flip_at < frame_end:
            damaged += 1
        else:
            survivors.append(payload)
        offset = frame_end
    assert damaged == 1
    assert [frame for frame in got if frame in payloads] == survivors
    for frame in got:
        assert frame in payloads or len(frame) == 0  # CRC32(b"") collisions only
    assert decoder.resync_bytes > 0


def test_resync_episodes_count_runs_not_bytes():
    # A run of consecutive hunted-past garbage bytes is ONE resync
    # episode, however long; resync_bytes still counts every byte.  The
    # distinction is what makes the exported counters diagnosable: many
    # resyncs = flaky peer, few resyncs with many bytes = one big tear.
    decoder = FrameDecoder(max_frame_bytes=1024)
    first_garbage, second_garbage = b"\xff" * 17, b"\xff" * 5
    got = decoder.feed(first_garbage + pack_frame(b"one"))
    assert got == [b"one"]
    assert decoder.resyncs == 1
    assert decoder.resync_bytes == len(first_garbage)
    got = decoder.feed(second_garbage + pack_frame(b"two"))
    assert got == [b"two"]
    assert decoder.resyncs == 2
    assert decoder.resync_bytes == len(first_garbage) + len(second_garbage)


def test_resync_episode_spans_chunked_feeds():
    # Hunting across feed() boundaries is still one episode: the run only
    # ends when a frame is delivered, not when the input buffer drains.
    decoder = FrameDecoder(max_frame_bytes=1024)
    decoder.feed(b"\xff" * 8)
    decoder.feed(b"\xff" * 8)
    assert decoder.feed(pack_frame(b"ok")) == [b"ok"]
    assert decoder.resyncs == 1
    assert decoder.resync_bytes == 16


def test_clean_stream_has_zero_resync_episodes():
    decoder = FrameDecoder()
    assert decoder.feed(pack_frames([b"a", b"b", b"c"])) == [b"a", b"b", b"c"]
    assert decoder.resyncs == 0
    assert decoder.resync_bytes == 0


def test_bit_flipped_wal_prefix_stops_at_corruption():
    payloads = [b"one", b"two", b"three"]
    stream = bytearray(pack_frames(payloads))
    stream[HEADER.size + len(b"one") + HEADER.size] ^= 0x40  # inside "two"
    valid_bytes, records = scan_valid_prefix(bytes(stream))
    assert records == 1
    assert valid_bytes == HEADER.size + len(b"one")
    with pytest.raises(FramingError):
        list(iter_frames(bytes(stream)))


# -- hostile lengths ----------------------------------------------------------------


def test_oversized_length_is_hunted_not_awaited():
    decoder = FrameDecoder(max_frame_bytes=16)
    oversized = pack_frame(b"x" * 32)  # valid frame, but over this cap
    tail = pack_frame(b"ok")
    got = decoder.feed(oversized + tail + _flush_filler(16))
    assert b"ok" in got
    assert b"x" * 32 not in got
    assert decoder.resync_bytes > 0


def test_plausible_length_waits_for_more_bytes():
    decoder = FrameDecoder(max_frame_bytes=1024)
    frame = pack_frame(b"split-me")
    assert decoder.feed(frame[:6]) == []
    assert decoder.pending_bytes == 6
    assert decoder.feed(frame[6:]) == [b"split-me"]
    assert decoder.pending_bytes == 0


def test_header_struct_matches_wal_format():
    # The extracted module must keep the WAL's exact on-disk layout.
    assert HEADER.format == ">II"
    assert HEADER.size == 8
    length, crc = struct.unpack(">II", pack_frame(b"abc")[:8])
    assert length == 3
    import zlib
    assert crc == zlib.crc32(b"abc")


# -- argument validation ------------------------------------------------------------


def test_pack_frame_rejects_non_bytes():
    with pytest.raises(FramingError):
        pack_frame("text")  # type: ignore[arg-type]


def test_decoder_rejects_nonpositive_cap():
    with pytest.raises(FramingError):
        FrameDecoder(max_frame_bytes=0)
