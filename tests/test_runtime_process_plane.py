"""The process execution plane end to end: real child processes.

Covers the supervisor lifecycle (spawn, health, restart, shutdown), the
sharded store running over remote shards, crash semantics — a SIGKILLed
worker mid-batch must leave the shard recoverable with the in-flight
``insert_many`` either fully applied or fully absent — and the
``RecoveryManager``/``LoadDriver`` integration.
"""

import threading
import time

import pytest

from repro.durability.recovery import RecoveryManager
from repro.errors import (
    ConfigurationError,
    ProcessPlaneError,
    WorkerCrashedError,
)
from repro.obs.registry import get_registry
from repro.runtime.supervisor import WorkerSupervisor, open_process_sharded_store
from repro.cluster.sharded import ShardedDocumentStore


@pytest.fixture()
def plane(tmp_path):
    store = open_process_sharded_store(
        tmp_path / "shards", num_shards=2,
        shard_keys={"alarms": "device_address"}, sync="batch",
    )
    yield store
    store.supervisor.shutdown()


def _seed_alarms(store, n=24):
    coll = store.collection("alarms")
    coll.insert_many(
        [{"device_address": f"dev-{i}", "value": i} for i in range(n)]
    )
    return coll


# -- the sharded store over remote shards -------------------------------------------


def test_process_store_behaves_like_inmemory_sharded(plane):
    reference = ShardedDocumentStore(
        num_shards=2, shard_keys={"alarms": "device_address"}
    )
    for store in (plane, reference):
        coll = _seed_alarms(store)
        coll.create_index("device_address", unique=True)

    remote, local = plane.collection("alarms"), reference.collection("alarms")
    assert len(remote) == len(local) == 24
    assert remote.count({"value": {"$gte": 12}}) == \
        local.count({"value": {"$gte": 12}})
    assert remote.find({"device_address": "dev-3"}) == \
        local.find({"device_address": "dev-3"})
    assert [d["value"] for d in remote.find({}, sort=("value", -1), limit=5)] \
        == [d["value"] for d in local.find({}, sort=("value", -1), limit=5)]
    assert remote.explain({"device_address": "dev-3"})["mode"] == "routed"
    assert plane.aggregate("alarms", [
        {"$match": {"value": {"$lt": 10}}},
        {"$group": {"_id": None, "n": {"$sum": 1}}},
    ]) == reference.aggregate("alarms", [
        {"$match": {"value": {"$lt": 10}}},
        {"$group": {"_id": None, "n": {"$sum": 1}}},
    ])
    reference.close()


def test_writes_survive_graceful_restart(plane):
    coll = _seed_alarms(plane)
    for index in range(plane.num_shards):
        stats = plane.restart_shard(index)
        assert stats["shard"] == index
    assert coll.count({}) == 24  # every fsynced write recovered from the WAL
    assert plane.collection("alarms").find_one({"device_address": "dev-7"})[
        "value"] == 7


def test_close_keeps_reads_and_is_idempotent(plane):
    coll = _seed_alarms(plane)
    plane.close()
    plane.close()  # idempotent
    assert coll.count({}) == 24  # workers still serve post-close reads


# -- supervisor ---------------------------------------------------------------------


def test_supervisor_health_restart_and_metrics(plane):
    supervisor = plane.supervisor
    assert all(supervisor.health_check().values())
    pid0 = supervisor.pid(0)
    assert pid0 is not None and pid0 > 0

    restarts = get_registry().counter("repro_worker_restarts_total")
    before = restarts.value
    supervisor.kill(0)
    health = supervisor.health_check()
    assert not health[0] and health[0].error  # truthy iff healthy
    assert health[1]  # shard 1 unaffected
    assert health[1].latency is not None and health[1].latency >= 0

    fresh = supervisor.restart(0)
    assert restarts.value == before + 1
    assert fresh.pid != pid0
    assert all(supervisor.health_check().values())


def test_spawn_refuses_double_start(plane):
    with pytest.raises(ProcessPlaneError, match="already running"):
        plane.supervisor.spawn(0)


def test_pool_size_validation(tmp_path):
    with pytest.raises(ConfigurationError):
        ShardedDocumentStore(num_shards=2, pool_size=0)
    store = ShardedDocumentStore(num_shards=4, pool_size=2)
    _seed_alarms(store)
    assert len(store.collection("alarms")) == 24
    store.close()


# -- crash semantics ----------------------------------------------------------------


def test_sigkill_mid_batch_is_all_or_nothing(tmp_path):
    """SIGKILL a worker while an insert_many is in flight: the client gets
    a clean WorkerCrashedError (or a completed ack), and recovery applies
    the batch either completely or not at all — never torn."""
    supervisor = WorkerSupervisor([tmp_path / "shard-0"], sync="batch")
    [store] = supervisor.start()
    coll = store.collection("alarms")
    coll.insert_many([{"seq": -1}])  # settled baseline write
    batch = [{"seq": i, "pad": "x" * 2_000} for i in range(400)]

    outcome: dict = {}

    def writer():
        try:
            outcome["ids"] = coll.insert_many(batch)
        except WorkerCrashedError as exc:
            outcome["error"] = exc

    thread = threading.Thread(target=writer)
    thread.start()
    time.sleep(0.002)  # land the kill while the request is in flight
    supervisor.kill(0)
    thread.join(timeout=30.0)
    assert not thread.is_alive()
    assert outcome, "writer neither completed nor failed"

    recovered = supervisor.restart(0)
    count = recovered.collection("alarms").count({"seq": {"$gte": 0}})
    if "ids" in outcome:
        # Acked before the kill: durable-before-ack means all 400 are there.
        assert count == len(batch)
    else:
        # Unacked: the batch is one WAL record, so it is all-or-none.
        assert count in (0, len(batch))
    assert recovered.collection("alarms").count({"seq": -1}) == 1
    supervisor.shutdown()


def test_crashed_batch_retry_is_exactly_once(tmp_path):
    supervisor = WorkerSupervisor([tmp_path / "shard-0"], sync="batch")
    [store] = supervisor.start()
    coll = store.collection("alarms")
    batch = [{"uid": f"u{i}"} for i in range(50)]

    supervisor.kill(0)  # worker dies before the request
    with pytest.raises(WorkerCrashedError):
        coll.insert_many(batch)

    store = supervisor.restart(0)
    coll = store.collection("alarms")
    # The idempotent-retry discipline: check what landed, resend the rest.
    if coll.count({}) == 0:
        coll.insert_many(batch)
    assert coll.count({}) == len(batch)
    supervisor.shutdown()


def test_restart_shard_after_hard_kill_recovers_other_writes(plane):
    coll = _seed_alarms(plane)
    victim = 0
    plane.supervisor.kill(victim)
    # Reads that route to the dead shard fail loudly, not silently.
    with pytest.raises(WorkerCrashedError):
        coll.count({})
    stats = plane.restart_shard(victim)
    assert stats["shard"] == victim
    assert coll.count({}) == 24


# -- RecoveryManager integration ----------------------------------------------------


def test_recovery_manager_process_mode_roundtrip(tmp_path):
    manager = RecoveryManager(
        tmp_path, store_shards=2, process_shards=True,
        shard_keys={"alarms": "device_address"},
    )
    report = manager.recover()
    assert report.snapshot_documents == 0
    _seed_alarms(manager.store)
    manager.store.checkpoint()
    manager.crash()  # kills every worker, drops un-fsynced bytes

    report = manager.recover()
    assert report.snapshot_documents + report.store_ops_replayed > 0
    assert manager.store.collection("alarms").count({}) == 24
    manager.close()
    manager.shutdown_workers()
    manager.shutdown_workers()  # idempotent


def test_driver_requires_durable_dir_for_process_shards():
    from repro.workload.driver import LoadDriver
    from repro.workload.library import load_scenario

    with pytest.raises(ConfigurationError, match="process shards"):
        LoadDriver(load_scenario("steady"), process_shards=True)


# -- restart under concurrent readers ------------------------------------------------


def test_concurrent_readers_see_crash_or_consistent_result(plane):
    """find() fanned out across shards racing a shard restart must either
    fail loudly (WorkerCrashedError) or return the complete merged result —
    never a partial/torn merge that silently drops a shard's rows."""
    n = 24
    coll = _seed_alarms(plane, n=n)
    stop = threading.Event()
    outcomes: list = []
    lock = threading.Lock()

    def reader():
        while not stop.is_set():
            try:
                docs = coll.find({}, sort=("value", 1))
            except WorkerCrashedError:
                with lock:
                    outcomes.append("crashed")
                continue
            with lock:
                outcomes.append([d["value"] for d in docs])

    readers = [threading.Thread(target=reader) for _ in range(4)]
    for thread in readers:
        thread.start()
    try:
        plane.supervisor.kill(0)
        time.sleep(0.05)  # let some reads hit the dead shard
        plane.restart_shard(0)
        time.sleep(0.05)  # and some the recovered one
    finally:
        stop.set()
        for thread in readers:
            thread.join(timeout=30.0)
    assert not any(thread.is_alive() for thread in readers)
    results = [o for o in outcomes if o != "crashed"]
    assert results, "no read completed"
    expected = list(range(n))
    for values in results:
        assert values == expected  # complete and ordered, never torn
    assert "crashed" in outcomes  # the race window was really exercised


# -- crash-loop protection -----------------------------------------------------------


def _corrupt_shard_root(root) -> None:
    """Build a shard root whose recovery deterministically fails: a sealed
    WAL segment with corrupt bytes (torn-tail truncation only forgives the
    *last* segment)."""
    from repro.durability.wal import WriteAheadLog

    wal = WriteAheadLog(root / "wal", segment_max_bytes=32, sync="always")
    for i in range(6):
        wal.append(b'{"op": %d}' % i)
    wal.close()
    segments = sorted((root / "wal").glob("wal-*.log"))
    assert len(segments) >= 2
    data = bytearray(segments[0].read_bytes())
    data[len(data) // 2] ^= 0xFF
    segments[0].write_bytes(bytes(data))


def test_restart_crash_loop_raises_after_capped_backoff(tmp_path):
    from repro.errors import CrashLoopError

    root = tmp_path / "shard-0"
    supervisor = WorkerSupervisor(
        [root], max_restart_attempts=2, restart_backoff=0.01,
        restart_backoff_cap=0.02,
    )
    _corrupt_shard_root(root)
    started = time.perf_counter()
    with pytest.raises(CrashLoopError, match="2 consecutive"):
        supervisor.restart(0)
    assert time.perf_counter() - started < 60.0
    assert supervisor.restart_attempts(0) == 2
    supervisor.shutdown()


def test_restart_attempts_reset_on_success(tmp_path):
    supervisor = WorkerSupervisor([tmp_path / "shard-0"], sync="batch")
    [store] = supervisor.start()
    _seed_alarms_single(store)
    supervisor.kill(0)
    fresh = supervisor.restart(0)
    assert supervisor.restart_attempts(0) == 0
    assert fresh.collection("alarms").count({}) == 4
    supervisor.shutdown()


def _seed_alarms_single(store, n=4):
    store.collection("alarms").insert_many(
        [{"device_address": f"dev-{i}", "value": i} for i in range(n)]
    )


# -- replicated process plane --------------------------------------------------------


def test_process_replica_set_failover_is_zero_loss(tmp_path):
    """Two worker processes form one replica set; SIGKILLing the leader and
    promoting must lose nothing that was acked under sync replication, and
    the promoted regime must fence the dead leader's epoch."""
    from repro.errors import StaleEpochError
    from repro.replication import ReplicaController, ReplicaSet
    from functools import partial

    supervisor = WorkerSupervisor(
        [tmp_path / "replica-0", tmp_path / "replica-1"], sync="always",
    )
    peers = supervisor.start()
    controllers = [
        ReplicaController(kill=partial(supervisor.kill, r),
                          respawn=partial(supervisor.restart, r))
        for r in range(2)
    ]
    rs = ReplicaSet(peers, shard=0, ack="sync", controllers=controllers)
    coll = rs.collection("alarms")
    coll.insert_many([{"device_address": f"dev-{i}", "value": i}
                      for i in range(12)])
    old_epoch = rs.epoch
    record = rs.fail_over(kill=True)  # real SIGKILL via the supervisor
    assert record["epoch"] == old_epoch + 1
    assert record["respawned"] is True
    assert rs.collection("alarms").count() == 12  # zero loss
    coll.insert_one({"device_address": "dev-99", "value": 99})
    assert rs.collection("alarms").count() == 13
    # A handle still speaking the old epoch is fenced out.
    with pytest.raises(StaleEpochError):
        rs.leader.apply_write(old_epoch, "alarms", "insert_one",
                              [{"device_address": "zombie", "value": -1}])
    rs.close()
    supervisor.shutdown()


# -- cross-process metrics harvest --------------------------------------------------


def test_supervisor_collect_metrics_harvests_all_workers(plane):
    _seed_alarms(plane)
    snaps = plane.supervisor.collect_metrics()
    assert len(snaps) == 2
    for index, snap in enumerate(snaps):
        assert snap["schema"] == "repro.metrics/v1"
        assert not snap.get("tombstone")
        assert snap["meta"]["role"] == "worker"
        # Every harvested series is attributed to its shard.
        for kind in ("counters", "gauges", "histograms"):
            for key, entry in snap[kind].items():
                assert entry["labels"].get("shard") == str(index), key
    # Workers fsync their own WALs; the proof the harvest reaches real
    # worker-side state is the fsync histogram arriving labeled.
    merged_keys = set(snaps[0]["histograms"]) | set(snaps[1]["histograms"])
    assert any(k.startswith("repro_wal_fsync_seconds{") for k in merged_keys)


def test_supervisor_collect_metrics_tombstones_dead_workers(plane):
    _seed_alarms(plane)
    plane.supervisor.kill(0)
    snaps = plane.supervisor.collect_metrics()
    assert snaps[0].get("tombstone") is True
    assert snaps[0]["meta"]["shard"] == 0
    assert "error" in snaps[0]["meta"]
    assert not snaps[1].get("tombstone")  # shard 1 still harvests
    plane.supervisor.restart(0)


def test_sharded_store_collect_metrics_merges_into_cluster_snapshot(plane):
    from repro.obs.aggregate import collect_cluster_snapshot

    _seed_alarms(plane)
    snapshot = collect_cluster_snapshot(get_registry(), store=plane)
    assert snapshot["meta"]["role"] == "cluster"
    assert snapshot["meta"]["merged"] >= 3  # parent + 2 workers
    shard_labeled = [
        key for key in snapshot["histograms"]
        if key.startswith("repro_wal_fsync_seconds{")
    ]
    assert shard_labeled, "worker WAL fsync series missing from merge"


def test_process_replica_set_collect_metrics_labels_shard_and_replica(tmp_path):
    from repro.replication import ReplicaSet

    supervisor = WorkerSupervisor(
        [tmp_path / "replica-0", tmp_path / "replica-1"], sync="batch",
    )
    peers = supervisor.start()
    rs = ReplicaSet(peers, shard=3, ack="sync")
    try:
        rs.collection("alarms").insert_many(
            [{"device_address": f"dev-{i}", "value": i} for i in range(6)]
        )
        snaps = rs.collect_metrics()
        assert len(snaps) == 2
        for index, snap in enumerate(snaps):
            assert not snap.get("tombstone")
            for kind in ("counters", "gauges", "histograms"):
                for key, entry in snap[kind].items():
                    assert entry["labels"].get("shard") == "3", key
                    assert entry["labels"].get("replica") == str(index), key
    finally:
        rs.close()
        supervisor.shutdown()
