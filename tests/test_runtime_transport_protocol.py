"""Transports and the RPC protocol layer, including a worker over loopback.

The loopback transport exists precisely so the protocol, the worker's
dispatch and the corruption handling can all be exercised in-process: the
bytes still round-trip through real frames, and ``inject`` lets a test
drip raw garbage into the stream between valid requests.
"""

import threading

import pytest

from repro.errors import (
    DuplicateKeyError,
    ProcessPlaneError,
    ProtocolError,
    TransportClosedError,
    TransportError,
)
from repro.runtime.protocol import (
    PROTOCOL_VERSION,
    Request,
    Response,
    collection_op,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    error_to_wire,
    store_op,
    wire_to_error,
)
from repro.runtime.remote import RemoteShardStore
from repro.runtime.transport import LoopbackTransport, SocketTransport
from repro.runtime.worker import ShardWorker
from repro.storage.store import DocumentStore


# -- transports ---------------------------------------------------------------------


def test_loopback_roundtrip_and_byte_accounting():
    a, b = LoopbackTransport.pair()
    a.send(b"ping")
    assert b.recv(timeout=1.0) == b"ping"
    b.send(b"pong")
    assert a.recv(timeout=1.0) == b"pong"
    assert a.stats.bytes_sent == b.stats.bytes_received
    assert a.resync_bytes == 0


def test_loopback_injected_garbage_resyncs():
    # Small frame cap so every garbage offset parses as an implausible
    # length and is hunted past immediately (a large cap would make the
    # decoder legitimately wait for the phantom payload to arrive).
    a, b = LoopbackTransport.pair(max_frame_bytes=1024)
    a.inject(b"\xdegarbage-that-is-not-a-frame\xff\xfe")
    a.send(b"still-works")
    assert b.recv(timeout=1.0) == b"still-works"
    assert b.resync_bytes > 0


def test_loopback_timeout_and_close():
    a, b = LoopbackTransport.pair()
    with pytest.raises(TransportError):
        b.recv(timeout=0.01)
    a.close()
    with pytest.raises(TransportClosedError):
        b.recv(timeout=1.0)
    with pytest.raises(TransportClosedError):
        a.send(b"nope")


def test_socket_transport_roundtrip_chunked_reads():
    a, b = SocketTransport.pair()
    b._read_chunk = 3  # force frame reassembly across many tiny reads
    payload = b"x" * 1000
    a.send(payload)
    a.send(b"second")
    assert b.recv(timeout=5.0) == payload
    assert b.recv(timeout=5.0) == b"second"
    a.close()
    with pytest.raises(TransportClosedError):
        b.recv(timeout=5.0)
    b.close()


# -- protocol -----------------------------------------------------------------------


def test_request_response_roundtrip():
    request = Request(id=7, ops=[
        store_op("ping"),
        collection_op("alarms", "find", {"zip": "8001"}, limit=3),
    ])
    decoded = decode_request(encode_request(request))
    assert decoded == request

    response = Response(id=7, results=[
        {"ok": True, "value": {"pid": 1}},
        {"ok": True, "value": []},
    ])
    assert decode_response(encode_response(response)) == response


def test_op_builders_validate_methods():
    with pytest.raises(ProtocolError):
        store_op("eval")
    with pytest.raises(ProtocolError):
        collection_op("alarms", "__init__")


def test_decode_rejects_version_mismatch_and_malformed_bodies():
    import json

    stale = json.dumps({"v": PROTOCOL_VERSION + 1, "id": 1, "ops": []}).encode()
    with pytest.raises(ProtocolError, match="version mismatch"):
        decode_request(stale)
    with pytest.raises(ProtocolError):
        decode_request(b"\xff not json")
    with pytest.raises(ProtocolError, match="non-empty"):
        decode_request(encode_request(Request(id=1, ops=[])))
    # Off-allowlist methods are rejected at decode time, before dispatch.
    smuggled = json.dumps({
        "v": PROTOCOL_VERSION, "id": 1,
        "ops": [{"t": "store", "m": "save", "a": ["/etc/passwd"], "k": {}}],
    }).encode()
    with pytest.raises(ProtocolError, match="unknown store method"):
        decode_request(smuggled)
    with pytest.raises(ProtocolError, match="malformed result"):
        decode_response(encode_response(Response(id=1, results=[{"no": 1}])))


def test_error_rehydration():
    wire = error_to_wire(DuplicateKeyError("dup on uid"))
    error = wire_to_error(wire)
    assert isinstance(error, DuplicateKeyError)
    assert "dup on uid" in str(error)

    unknown = wire_to_error({"ok": False, "error": "KeyError", "message": "'x'"})
    assert isinstance(unknown, ProcessPlaneError)
    assert "KeyError" in str(unknown)


# -- worker over loopback -----------------------------------------------------------


@pytest.fixture()
def loopback_worker():
    client_t, server_t = LoopbackTransport.pair()
    worker = ShardWorker(DocumentStore(), server_t)
    thread = threading.Thread(target=worker.serve_forever, daemon=True)
    thread.start()
    client = RemoteShardStore(client_t, shard=0, timeout=5.0)
    yield client, worker
    client.shutdown()
    thread.join(timeout=5.0)
    assert not thread.is_alive()


def test_remote_surface_matches_local_store(loopback_worker):
    client, worker = loopback_worker
    local = DocumentStore()
    docs = [{"uid": f"u{i}", "zone": i % 3, "w": float(i)} for i in range(30)]

    for store in (client, local):
        coll = store.collection("alarms")
        coll.insert_many(docs)
        coll.create_index("uid", unique=True)
        coll.create_index("zone")

    remote, local_coll = client.collection("alarms"), local.collection("alarms")
    assert len(remote) == len(local_coll) == 30
    assert remote.count({"zone": 1}) == local_coll.count({"zone": 1})
    assert remote.find({"zone": 2}, sort=("w", -1), limit=4) == \
        local_coll.find({"zone": 2}, sort=("w", -1), limit=4)
    assert remote.find_one({"uid": "u7"}) == local_coll.find_one({"uid": "u7"})
    assert remote.distinct("zone") == local_coll.distinct("zone")
    assert remote.get(1) == local_coll.get(1)
    assert sorted(remote.index_fields()) == sorted(local_coll.index_fields())
    assert remote.index_spec("uid") == local_coll.index_spec("uid")
    assert list(remote.all_documents()) == list(local_coll.all_documents())
    assert remote.explain({"uid": "u3"})["mode"] == \
        local_coll.explain({"uid": "u3"})["mode"]
    assert client.aggregate("alarms", [
        {"$match": {"zone": 0}},
        {"$group": {"_id": None, "total": {"$sum": "$w"}}},
    ]) == local.aggregate("alarms", [
        {"$match": {"zone": 0}},
        {"$group": {"_id": None, "total": {"$sum": "$w"}}},
    ])

    assert remote.update_many({"zone": 0}, {"$set": {"flag": True}}) == \
        local_coll.update_many({"zone": 0}, {"$set": {"flag": True}})
    assert remote.delete_many({"zone": 2}) == local_coll.delete_many({"zone": 2})
    assert len(remote) == len(local_coll)
    assert client.collection_names() == local.collection_names()


def test_remote_errors_raise_like_local_ones(loopback_worker):
    client, _ = loopback_worker
    coll = client.collection("alarms")
    coll.create_index("uid", unique=True)
    coll.insert_one({"uid": "dup"})
    with pytest.raises(DuplicateKeyError):
        coll.insert_one({"uid": "dup"})
    with pytest.raises(ProtocolError, match="callable"):
        coll.update_many({}, lambda doc: doc)
    assert len(coll) == 1  # the worker survived both failures


def test_batched_ops_pipeline_in_one_roundtrip(loopback_worker):
    client, _ = loopback_worker
    client.collection("alarms")
    before = client._requests.value
    values = client.call([
        collection_op("alarms", "insert_many", [{"n": i} for i in range(5)]),
        collection_op("alarms", "count", {}),
        store_op("collection_names"),
    ])
    assert client._requests.value == before + 1
    assert len(values[0]) == 5
    assert values[1] == 5
    assert values[2] == ["alarms"]


def test_worker_survives_injected_corruption_between_requests(loopback_worker):
    client, worker = loopback_worker
    coll = client.collection("alarms")
    coll.insert_one({"n": 1})
    client.transport.inject(b"\xde\xad\xbe\xef torn bytes \x00\x00")
    assert coll.count({}) == 1  # request after garbage still answered
    assert worker.transport.resync_bytes > 0


def test_worker_rejects_oversized_batch_reply_gracefully():
    # A non-JSON value from a store method must fail that op, not the worker.
    class WeirdStore(DocumentStore):
        def collection_names(self):
            return {b"bytes-key"}  # not JSON-serializable

    client_t, server_t = LoopbackTransport.pair()
    worker = ShardWorker(WeirdStore(), server_t)
    thread = threading.Thread(target=worker.serve_forever, daemon=True)
    thread.start()
    client = RemoteShardStore(client_t, shard=0, timeout=5.0)
    try:
        with pytest.raises(ProcessPlaneError):
            client.collection_names()
        client.collection("alarms").insert_one({"n": 1})  # still serving
    finally:
        client.shutdown()
        thread.join(timeout=5.0)


# -- trace propagation and metrics harvest ------------------------------------------


def test_trace_fields_round_trip_and_stay_optional():
    import json

    traced = Request(id=3, ops=[store_op("ping")],
                     trace_id="t-00000042", parent_span="store")
    decoded = decode_request(encode_request(traced))
    assert decoded.trace_id == "t-00000042"
    assert decoded.parent_span == "store"

    # Untraced requests must not grow wire keys: protocol v1 stays
    # readable by peers that predate tracing.
    bare = json.loads(encode_request(Request(id=4, ops=[store_op("ping")])))
    assert "tid" not in bare and "ps" not in bare
    assert decode_request(encode_request(Request(id=4, ops=[store_op("ping")]))
                          ).trace_id is None

    spans = [{"stage": "rpc_execute", "start": 1.0, "end": 2.0}]
    response = Response(id=3, results=[{"ok": True, "value": None}],
                        spans=spans)
    assert decode_response(encode_response(response)).spans == spans
    plain = json.loads(encode_response(
        Response(id=4, results=[{"ok": True, "value": None}])
    ))
    assert "spans" not in plain


def test_decode_rejects_malformed_spans():
    import json

    body = {
        "v": PROTOCOL_VERSION, "id": 1,
        "results": [{"ok": True, "value": None}],
        "spans": [{"stage": "rpc_execute"}],  # missing start/end
    }
    with pytest.raises(ProtocolError, match="malformed span"):
        decode_response(json.dumps(body).encode())
    body["spans"] = "not-a-list"
    with pytest.raises(ProtocolError, match="spans must be a list"):
        decode_response(json.dumps(body).encode())


def test_metrics_snapshot_op_returns_worker_snapshot(loopback_worker):
    client, worker = loopback_worker
    client.collection("alarms").insert_one({"n": 1})
    snapshot = client.metrics_snapshot()
    assert snapshot["schema"] == "repro.metrics/v1"
    assert snapshot["meta"]["role"] == "worker"
    assert snapshot["meta"]["pid"] > 0


def test_worker_exports_frame_resync_counters(loopback_worker):
    client, worker = loopback_worker
    coll = client.collection("alarms")
    coll.insert_one({"n": 1})
    client.transport.inject(b"\xff" * 9)  # one garbage run hits the worker
    assert coll.count({}) == 1
    snapshot = client.metrics_snapshot()
    resyncs = snapshot["counters"].get("repro_frame_resyncs_total")
    garbage = snapshot["counters"].get("repro_frame_garbage_bytes_total")
    assert resyncs is not None and resyncs["value"] == 1
    assert garbage is not None and garbage["value"] == 9


def test_traced_request_splices_worker_spans_into_parent_trace(loopback_worker):
    from repro.obs.registry import MetricsRegistry
    from repro.obs.trace import Tracer, trace_context

    client, worker = loopback_worker
    tracer = Tracer(sample_every=1, registry=MetricsRegistry())
    with trace_context(tracer, "t-00000001", "store"):
        client.collection("alarms").insert_one({"uid": "traced"})
    trace = tracer.record("t-00000001", [("store", 0.0, 1e-5)])

    stages = [span.stage for span in trace.spans]
    assert "rpc_execute" in stages
    assert "rpc_encode" in stages
    assert "rpc_queue_dwell" in stages
    remote = {span.stage: span for span in trace.spans if span.remote}
    assert remote["rpc_execute"].shard == 0
    # Rebasing keeps worker spans inside the parent's observed window
    # and in causal order: queue dwell ends where execution starts.
    assert remote["rpc_queue_dwell"].end <= remote["rpc_execute"].start + 1e-6
    assert remote["rpc_execute"].end <= remote["rpc_encode"].end + 1e-6
    for span in remote.values():
        assert span.end >= span.start


def test_untraced_requests_carry_no_spans(loopback_worker):
    client, worker = loopback_worker
    client.collection("alarms").insert_one({"n": 1})  # no ambient context
    # The worker only times traced requests; the plain path stays lean.
    # (Indirect check: a subsequent traced call is the first to splice.)
    from repro.obs.registry import MetricsRegistry
    from repro.obs.trace import Tracer, trace_context

    tracer = Tracer(sample_every=1, registry=MetricsRegistry())
    with trace_context(tracer, "t-00000009", "store"):
        client.collection("alarms").insert_one({"n": 2})
    trace = tracer.record("t-00000009", [("store", 0.0, 1e-5)])
    assert sum(1 for s in trace.spans if s.stage == "rpc_execute") == 1
