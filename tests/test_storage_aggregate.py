"""Aggregation-pipeline tests, including the paper's histogram query."""

import pytest

from repro.errors import QueryError
from repro.storage import aggregate, group_histogram

ALARMS = [
    {"device": "d1", "zip": "8001", "duration": 30, "timestamp": 100},
    {"device": "d1", "zip": "8001", "duration": 40, "timestamp": 200},
    {"device": "d2", "zip": "4001", "duration": 50, "timestamp": 300},
    {"device": "d3", "zip": "8001", "duration": 60, "timestamp": 400},
    {"device": "d2", "zip": "4001", "duration": 70, "timestamp": 500},
]


class TestStages:
    def test_match(self):
        rows = aggregate(ALARMS, [{"$match": {"zip": "8001"}}])
        assert len(rows) == 3

    def test_group_count(self):
        rows = aggregate(ALARMS, [
            {"$group": {"_id": "$device", "n": {"$sum": 1}}},
        ])
        assert {r["_id"]: r["n"] for r in rows} == {"d1": 2, "d2": 2, "d3": 1}

    def test_group_accumulators(self):
        rows = aggregate(ALARMS, [
            {"$group": {
                "_id": "$zip",
                "total": {"$sum": "$duration"},
                "avg": {"$avg": "$duration"},
                "lo": {"$min": "$duration"},
                "hi": {"$max": "$duration"},
                "first": {"$first": "$device"},
                "last": {"$last": "$device"},
                "devices": {"$addToSet": "$device"},
                "all": {"$push": "$duration"},
            }},
            {"$sort": {"_id": 1}},
        ])
        z4001 = rows[0]
        assert z4001["_id"] == "4001"
        assert z4001["total"] == 120
        assert z4001["avg"] == 60
        assert z4001["lo"] == 50 and z4001["hi"] == 70
        assert z4001["first"] == "d2" and z4001["last"] == "d2"
        assert z4001["devices"] == ["d2"]
        assert z4001["all"] == [50, 70]

    def test_group_null_id_aggregates_everything(self):
        rows = aggregate(ALARMS, [
            {"$group": {"_id": None, "n": {"$sum": 1}}},
        ])
        assert rows == [{"_id": None, "n": 5}]

    def test_project_include(self):
        rows = aggregate(ALARMS, [{"$project": {"device": 1, "_id": 0}}])
        assert rows[0] == {"device": "d1"}

    def test_project_computed(self):
        rows = aggregate(ALARMS[:1], [{"$project": {"d": "$duration", "_id": 0}}])
        assert rows == [{"d": 30}]

    def test_sort_multiple_keys(self):
        rows = aggregate(ALARMS, [{"$sort": {"zip": 1, "duration": -1}}])
        assert [r["duration"] for r in rows] == [70, 50, 60, 40, 30]

    def test_limit_skip(self):
        rows = aggregate(ALARMS, [{"$sort": {"timestamp": 1}}, {"$skip": 1}, {"$limit": 2}])
        assert [r["timestamp"] for r in rows] == [200, 300]

    def test_count(self):
        assert aggregate(ALARMS, [{"$count": "n"}]) == [{"n": 5}]

    def test_unwind(self):
        docs = [{"id": 1, "tags": ["a", "b"]}, {"id": 2, "tags": []}, {"id": 3}]
        rows = aggregate(docs, [{"$unwind": "$tags"}])
        assert [(r["id"], r["tags"]) for r in rows] == [(1, "a"), (1, "b")]

    def test_chained_pipeline(self):
        rows = aggregate(ALARMS, [
            {"$match": {"duration": {"$gte": 40}}},
            {"$group": {"_id": "$zip", "n": {"$sum": 1}}},
            {"$sort": {"n": -1, "_id": 1}},
            {"$limit": 1},
        ])
        assert rows == [{"_id": "4001", "n": 2}]


class TestValidation:
    def test_multi_operator_stage_raises(self):
        with pytest.raises(QueryError):
            aggregate(ALARMS, [{"$match": {}, "$limit": 2}])

    def test_unknown_stage_raises(self):
        with pytest.raises(QueryError):
            aggregate(ALARMS, [{"$lookup": {}}])

    def test_group_requires_id(self):
        with pytest.raises(QueryError):
            aggregate(ALARMS, [{"$group": {"n": {"$sum": 1}}}])

    def test_unknown_accumulator_raises(self):
        with pytest.raises(QueryError):
            aggregate(ALARMS, [{"$group": {"_id": None, "n": {"$median": "$duration"}}}])

    def test_negative_limit_raises(self):
        with pytest.raises(QueryError):
            aggregate(ALARMS, [{"$limit": -1}])

    def test_bad_sort_direction_raises(self):
        with pytest.raises(QueryError):
            aggregate(ALARMS, [{"$sort": {"zip": 2}}])

    def test_bad_unwind_spec_raises(self):
        with pytest.raises(QueryError):
            aggregate(ALARMS, [{"$unwind": {"bad": True}}])


class TestGroupHistogram:
    """The paper's batch query: alarms per device since time t."""

    def test_histogram_counts_per_device(self):
        assert group_histogram(ALARMS, "device") == {"d1": 2, "d2": 2, "d3": 1}

    def test_histogram_since_cutoff(self):
        assert group_histogram(ALARMS, "device", since=300) == {"d2": 2, "d3": 1}

    def test_histogram_empty_input(self):
        assert group_histogram([], "device") == {}
