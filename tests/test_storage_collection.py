"""Collection tests: CRUD, sort/limit/projection, index planning."""

import pytest

from repro.errors import DuplicateKeyError, IndexError_, QueryError
from repro.storage import Collection


@pytest.fixture
def alarms():
    coll = Collection("alarms")
    coll.insert_many([
        {"zip": "8001", "type": "fire", "duration": 30.0, "ts": 100},
        {"zip": "8001", "type": "intrusion", "duration": 200.0, "ts": 200},
        {"zip": "4001", "type": "fire", "duration": 45.0, "ts": 300},
        {"zip": "4051", "type": "technical", "duration": 5.0, "ts": 400},
        {"zip": "4001", "type": "intrusion", "duration": 600.0, "ts": 500},
    ])
    return coll


class TestInserts:
    def test_ids_are_sequential(self):
        coll = Collection("c")
        assert coll.insert_one({"a": 1}) == 0
        assert coll.insert_one({"a": 2}) == 1

    def test_inserted_documents_are_copies(self):
        coll = Collection("c")
        doc = {"nested": {"x": 1}}
        coll.insert_one(doc)
        doc["nested"]["x"] = 99
        assert coll.get(0)["nested"]["x"] == 1

    def test_get_returns_copy(self):
        coll = Collection("c")
        coll.insert_one({"x": [1]})
        coll.get(0)["x"].append(2)
        assert coll.get(0)["x"] == [1]

    def test_non_mapping_insert_raises(self):
        with pytest.raises(QueryError):
            Collection("c").insert_one([1, 2])

    def test_len_counts_documents(self, alarms):
        assert len(alarms) == 5


class TestFind:
    def test_find_all(self, alarms):
        assert len(alarms.find()) == 5

    def test_find_filters(self, alarms):
        assert len(alarms.find({"zip": "4001"})) == 2

    def test_find_sorted_ascending(self, alarms):
        durations = [d["duration"] for d in alarms.find(sort="duration")]
        assert durations == sorted(durations)

    def test_find_sorted_descending(self, alarms):
        durations = [d["duration"] for d in alarms.find(sort=("duration", -1))]
        assert durations == sorted(durations, reverse=True)

    def test_limit_and_skip(self, alarms):
        page = alarms.find(sort="ts", skip=1, limit=2)
        assert [d["ts"] for d in page] == [200, 300]

    def test_projection_keeps_id(self, alarms):
        docs = alarms.find({"zip": "8001"}, projection=["type"])
        assert all(set(d) == {"_id", "type"} for d in docs)

    def test_find_one(self, alarms):
        doc = alarms.find_one({"type": "technical"})
        assert doc["zip"] == "4051"
        assert alarms.find_one({"zip": "nope"}) is None

    def test_count(self, alarms):
        assert alarms.count() == 5
        assert alarms.count({"type": "fire"}) == 2

    def test_distinct(self, alarms):
        assert alarms.distinct("zip") == ["4001", "4051", "8001"]

    def test_distinct_with_filter(self, alarms):
        assert alarms.distinct("zip", {"type": "fire"}) == ["4001", "8001"]

    def test_malformed_filter_raises(self, alarms):
        with pytest.raises(QueryError):
            alarms.find({"zip": {"$bogus": 1}})


class TestUpdateDelete:
    def test_update_with_set(self, alarms):
        changed = alarms.update_many({"zip": "8001"}, {"$set": {"reviewed": True}})
        assert changed == 2
        assert alarms.count({"reviewed": True}) == 2

    def test_update_with_callable(self, alarms):
        alarms.update_many({}, lambda d: d.__setitem__("duration", d["duration"] * 2))
        assert alarms.find_one({"ts": 100})["duration"] == 60.0

    def test_update_cannot_change_id(self, alarms):
        alarms.update_many({"ts": 100}, {"$set": {"_id": 999}})
        assert alarms.get(0) is not None

    def test_update_rejects_bad_spec(self, alarms):
        with pytest.raises(QueryError):
            alarms.update_many({}, {"$rename": {"duration": "len"}})
        with pytest.raises(QueryError):
            alarms.update_many({}, {})

    def test_update_inc(self, alarms):
        alarms.update_many({"zip": "8001"}, {"$inc": {"duration": 10.0}})
        assert alarms.find_one({"ts": 100})["duration"] == 40.0

    def test_update_inc_creates_missing_field(self, alarms):
        alarms.update_many({"ts": 100}, {"$inc": {"retries": 1}})
        assert alarms.find_one({"ts": 100})["retries"] == 1

    def test_update_inc_non_numeric_target_raises(self, alarms):
        with pytest.raises(QueryError):
            alarms.update_many({"ts": 100}, {"$inc": {"zip": 1}})

    def test_update_unset(self, alarms):
        alarms.update_many({"ts": 100}, {"$unset": {"duration": ""}})
        assert "duration" not in alarms.find_one({"ts": 100})

    def test_update_push(self, alarms):
        alarms.update_many({"ts": 100}, {"$push": {"notes": "checked"}})
        alarms.update_many({"ts": 100}, {"$push": {"notes": "again"}})
        assert alarms.find_one({"ts": 100})["notes"] == ["checked", "again"]

    def test_update_push_non_array_raises(self, alarms):
        with pytest.raises(QueryError):
            alarms.update_many({"ts": 100}, {"$push": {"zip": "x"}})

    def test_update_combined_operators(self, alarms):
        alarms.update_many(
            {"ts": 100},
            {"$set": {"reviewed": True}, "$inc": {"duration": 5}},
        )
        doc = alarms.find_one({"ts": 100})
        assert doc["reviewed"] is True
        assert doc["duration"] == 35.0

    def test_delete_many(self, alarms):
        assert alarms.delete_many({"type": "fire"}) == 2
        assert len(alarms) == 3
        assert alarms.count({"type": "fire"}) == 0

    def test_delete_with_empty_filter_deletes_all(self, alarms):
        assert alarms.delete_many({}) == 5
        assert len(alarms) == 0


class TestIndexes:
    def test_hash_index_results_match_full_scan(self, alarms):
        unindexed = alarms.find({"zip": "4001"})
        alarms.create_index("zip", kind="hash")
        assert alarms.find({"zip": "4001"}) == unindexed

    def test_sorted_index_range_matches_full_scan(self, alarms):
        expected = alarms.find({"ts": {"$gte": 200, "$lt": 500}})
        alarms.create_index("ts", kind="sorted")
        assert alarms.find({"ts": {"$gte": 200, "$lt": 500}}) == expected

    def test_index_is_used_for_planning(self, alarms):
        alarms.create_index("zip")
        before = alarms.index_hits
        alarms.find({"zip": "8001"})
        assert alarms.index_hits == before + 1

    def test_unindexed_query_scans(self, alarms):
        before = alarms.scans
        alarms.find({"type": "fire"})
        assert alarms.scans == before + 1

    def test_index_maintained_on_update(self, alarms):
        alarms.create_index("zip")
        alarms.update_many({"zip": "4051"}, {"$set": {"zip": "9000"}})
        assert alarms.count({"zip": "9000"}) == 1
        assert alarms.count({"zip": "4051"}) == 0

    def test_index_maintained_on_delete(self, alarms):
        alarms.create_index("zip")
        alarms.delete_many({"zip": "4001"})
        assert alarms.find({"zip": "4001"}) == []

    def test_in_uses_hash_index(self, alarms):
        alarms.create_index("zip")
        docs = alarms.find({"zip": {"$in": ["8001", "4051"]}})
        assert len(docs) == 3

    def test_unique_index_rejects_duplicates(self):
        coll = Collection("devices")
        coll.create_index("mac", kind="hash", unique=True)
        coll.insert_one({"mac": "aa:bb"})
        with pytest.raises(DuplicateKeyError):
            coll.insert_one({"mac": "aa:bb"})

    def test_unique_index_backfill_detects_existing_duplicates(self):
        coll = Collection("devices")
        coll.insert_many([{"mac": "x"}, {"mac": "x"}])
        with pytest.raises(DuplicateKeyError):
            coll.create_index("mac", unique=True)

    def test_duplicate_index_raises(self, alarms):
        alarms.create_index("zip")
        with pytest.raises(IndexError_):
            alarms.create_index("zip")

    def test_drop_index(self, alarms):
        alarms.create_index("zip")
        alarms.drop_index("zip")
        assert alarms.index_fields() == []
        with pytest.raises(IndexError_):
            alarms.drop_index("zip")

    def test_unknown_index_kind_raises(self, alarms):
        with pytest.raises(IndexError_):
            alarms.create_index("zip", kind="btree")

    def test_unique_sorted_index_rejected(self, alarms):
        with pytest.raises(IndexError_):
            alarms.create_index("ts", kind="sorted", unique=True)

    def test_index_spec_describes_each_kind(self, alarms):
        alarms.create_index("zip")
        alarms.create_index("ts", kind="sorted")
        alarms.create_index("duration", unique=True)  # durations are distinct
        assert alarms.index_spec("zip") == {"field": "zip", "kind": "hash"}
        assert alarms.index_spec("ts") == {"field": "ts", "kind": "sorted"}
        assert alarms.index_spec("duration") == {
            "field": "duration", "kind": "hash", "unique": True,
        }

    def test_index_spec_unknown_field_raises(self, alarms):
        with pytest.raises(IndexError_):
            alarms.index_spec("nope")
