"""Direct tests of the index structures."""

import pytest

from repro.errors import DuplicateKeyError, IndexError_
from repro.storage import HashIndex, SortedIndex


class TestHashIndex:
    def test_lookup_after_add(self):
        idx = HashIndex("zip")
        idx.add(1, {"zip": "8001"})
        idx.add(2, {"zip": "8001"})
        idx.add(3, {"zip": "4001"})
        assert idx.lookup("8001") == {1, 2}
        assert idx.lookup("nope") == set()

    def test_lookup_in(self):
        idx = HashIndex("zip")
        idx.add(1, {"zip": "a"})
        idx.add(2, {"zip": "b"})
        idx.add(3, {"zip": "c"})
        assert idx.lookup_in(["a", "c", "z"]) == {1, 3}

    def test_array_values_are_multikey(self):
        idx = HashIndex("tags")
        idx.add(1, {"tags": ["fire", "night"]})
        assert idx.lookup("fire") == {1}
        assert idx.lookup("night") == {1}

    def test_remove(self):
        idx = HashIndex("zip")
        idx.add(1, {"zip": "a"})
        idx.remove(1, {"zip": "a"})
        assert idx.lookup("a") == set()
        assert len(idx) == 0

    def test_missing_field_not_indexed(self):
        idx = HashIndex("zip")
        idx.add(1, {"other": 1})
        assert len(idx) == 0

    def test_unique_violation(self):
        idx = HashIndex("mac", unique=True)
        idx.add(1, {"mac": "x"})
        with pytest.raises(DuplicateKeyError):
            idx.add(2, {"mac": "x"})

    def test_unique_same_doc_readd_ok(self):
        idx = HashIndex("mac", unique=True)
        idx.add(1, {"mac": "x"})
        idx.add(1, {"mac": "x"})  # same doc id is not a violation

    def test_keys_iteration(self):
        idx = HashIndex("zip")
        idx.add(1, {"zip": "a"})
        idx.add(2, {"zip": "b"})
        assert sorted(idx.keys()) == ["a", "b"]


class TestSortedIndex:
    @pytest.fixture
    def idx(self):
        index = SortedIndex("ts")
        for doc_id, ts in enumerate([50, 10, 30, 20, 40]):
            index.add(doc_id, {"ts": ts})
        return index

    def test_range_inclusive(self, idx):
        assert idx.range(low=20, high=40) == {2, 3, 4}

    def test_range_exclusive(self, idx):
        assert idx.range(low=20, high=40, include_low=False, include_high=False) == {2}

    def test_open_ranges(self, idx):
        assert idx.range(low=30) == {0, 2, 4}
        assert idx.range(high=20) == {1, 3}
        assert idx.range() == {0, 1, 2, 3, 4}

    def test_equality_lookup(self, idx):
        assert idx.lookup(30) == {2}
        assert idx.lookup(31) == set()

    def test_min_max(self, idx):
        assert idx.min_key() == 10
        assert idx.max_key() == 50

    def test_remove(self, idx):
        idx.remove(2, {"ts": 30})
        assert idx.lookup(30) == set()
        assert len(idx) == 4

    def test_duplicate_keys_supported(self):
        idx = SortedIndex("ts")
        idx.add(1, {"ts": 5})
        idx.add(2, {"ts": 5})
        assert idx.lookup(5) == {1, 2}
        idx.remove(1, {"ts": 5})
        assert idx.lookup(5) == {2}

    def test_none_and_bool_skipped(self):
        idx = SortedIndex("ts")
        idx.add(1, {"ts": None})
        idx.add(2, {"ts": True})
        assert len(idx) == 0

    def test_incomparable_values_skipped(self):
        idx = SortedIndex("ts")
        idx.add(1, {"ts": 5})
        idx.add(2, {"ts": "string"})  # cannot compare with 5 -> skipped
        assert len(idx) == 1

    def test_empty_index(self):
        idx = SortedIndex("ts")
        assert idx.min_key() is None
        assert idx.max_key() is None
        assert idx.range(low=0, high=10) == set()


class TestUniqueValidation:
    def test_validate_unique_never_mutates(self):
        idx = HashIndex("mac", unique=True)
        idx.add(0, {"mac": "aa"})
        with pytest.raises(DuplicateKeyError):
            idx.validate_unique(1, {"mac": "aa"})
        assert idx.lookup("aa") == {0}
        idx.validate_unique(0, {"mac": "aa"})  # self-match is fine

    def test_validate_unique_noop_on_non_unique_index(self):
        idx = HashIndex("mac")
        idx.add(0, {"mac": "aa"})
        idx.validate_unique(1, {"mac": "aa"})  # no raise


class TestSortedIndexOrder:
    def test_ordered_ids_ascending(self):
        idx = SortedIndex("ts")
        for doc_id, ts in ((0, 30), (1, 10), (2, 20), (3, 10)):
            idx.add(doc_id, {"ts": ts})
        assert list(idx.ordered_ids()) == [1, 3, 2, 0]

    def test_ordered_ids_descending_keeps_ascending_ids_within_ties(self):
        idx = SortedIndex("ts")
        for doc_id, ts in ((0, 30), (1, 10), (2, 20), (3, 10)):
            idx.add(doc_id, {"ts": ts})
        assert list(idx.ordered_ids(reverse=True)) == [0, 2, 1, 3]

    def test_regular_docs_are_not_flagged(self):
        idx = SortedIndex("ts")
        idx.add(0, {"ts": 5})
        idx.add(1, {"other": 1})   # missing: sorts in the trailing bucket
        idx.add(2, {"ts": None})   # null: same bucket
        assert idx.irregular_ids == set()

    def test_irregular_docs_are_flagged(self):
        idx = SortedIndex("ts")
        idx.add(0, {"ts": 5})
        idx.add(1, {"ts": [1, 2]})     # array fan-out
        idx.add(2, {"ts": True})       # bool: excluded from the index
        idx.add(3, {"ts": "text"})     # off-family: excluded
        idx.add(4, {"ts": {"n": 1}})   # unhashable: excluded
        assert idx.irregular_ids == {1, 2, 3, 4}
        idx.remove(1, {"ts": [1, 2]})
        assert idx.irregular_ids == {2, 3, 4}

    def test_bulk_load_matches_incremental(self):
        docs = [(i, {"ts": ts}) for i, ts in
                enumerate([30, 10, None, [5, 8], 10, True])]
        incremental = SortedIndex("ts")
        for doc_id, doc in docs:
            incremental.add(doc_id, doc)
        bulk = SortedIndex("ts")
        bulk.bulk_load(docs)
        assert list(bulk.ordered_ids()) == list(incremental.ordered_ids())
        assert bulk.irregular_ids == incremental.irregular_ids
        assert len(bulk) == len(incremental)

    def test_bulk_load_requires_empty_index(self):
        idx = SortedIndex("ts")
        idx.add(0, {"ts": 1})
        # IndexError_ so the failure rehydrates by name over RPC.
        with pytest.raises(IndexError_):
            idx.bulk_load([(1, {"ts": 2})])

    def test_range_raises_on_off_family_probe(self):
        idx = SortedIndex("ts")
        idx.add(0, {"ts": 5})
        with pytest.raises(TypeError):
            idx.range(low="text")
