"""Planner tests: explain()-verified plan selection plus write-path fixes.

Covers the query-planner overhaul: multi-index intersection, ``$and``
descent, covered counts, sorted-index order production, heap top-k — all
asserted through :meth:`Collection.explain` — plus the ``update_many`` /
``insert_one`` unique-index consistency regressions and the ``distinct``
unhashable fallback.
"""

import pytest

from repro.errors import DuplicateKeyError
from repro.storage import Collection, DocumentStore, aggregate, matches


@pytest.fixture
def alarms():
    coll = Collection("alarms")
    coll.insert_many([
        {"zip": "8001", "type": "fire", "duration": 30.0, "ts": 100},
        {"zip": "8001", "type": "intrusion", "duration": 200.0, "ts": 200},
        {"zip": "4001", "type": "fire", "duration": 45.0, "ts": 300},
        {"zip": "4051", "type": "technical", "duration": 5.0, "ts": 400},
        {"zip": "4001", "type": "intrusion", "duration": 600.0, "ts": 500},
        {"zip": "8001", "type": "fire", "duration": 12.0, "ts": 600},
    ])
    coll.create_index("zip", kind="hash")
    coll.create_index("type", kind="hash")
    coll.create_index("ts", kind="sorted")
    return coll


class TestPlanSelection:
    def test_multi_index_intersection(self, alarms):
        plan = alarms.explain({"zip": "8001", "type": "fire"})
        assert plan["mode"] == "index"
        assert {ix["field"] for ix in plan["indexes"]} == {"zip", "type"}
        # dev 0 and dev 5 are fire alarms in 8001: the intersection is exact.
        assert plan["candidates"] == 2
        assert plan["covered"] is True
        assert plan["verified"] == 0

    def test_hash_and_sorted_intersect(self, alarms):
        plan = alarms.explain({"zip": "8001", "ts": {"$gte": 150}})
        assert {(ix["field"], ix["op"]) for ix in plan["indexes"]} == {
            ("zip", "eq"), ("ts", "range"),
        }
        assert plan["candidates"] == 2  # ts 200 and 600 in zip 8001
        assert plan["covered"] is True

    def test_and_branches_are_descended(self, alarms):
        plan = alarms.explain({"$and": [{"zip": "8001"}, {"ts": {"$lt": 300}}]})
        assert plan["mode"] == "index"
        assert {ix["field"] for ix in plan["indexes"]} == {"zip", "ts"}
        assert plan["covered"] is True
        assert plan["candidates"] == alarms.count(
            {"$and": [{"zip": "8001"}, {"ts": {"$lt": 300}}]}
        )

    def test_or_forces_verification(self, alarms):
        plan = alarms.explain({"$or": [{"zip": "8001"}, {"zip": "4001"}]})
        assert plan["mode"] == "scan"
        assert plan["covered"] is False
        assert plan["verified"] == plan["documents"]

    def test_unindexed_field_scans(self, alarms):
        plan = alarms.explain({"duration": 30.0})
        assert plan["mode"] == "scan"
        assert plan["indexes"] == []
        assert plan["covered"] is False

    def test_extra_operator_voids_coverage_but_keeps_index(self, alarms):
        plan = alarms.explain({"ts": {"$gte": 150, "$ne": 200}})
        assert plan["mode"] == "index"
        assert plan["indexes"][0]["op"] == "range"
        assert plan["covered"] is False
        assert plan["verified"] == plan["candidates"] > 0

    def test_doubled_range_bound_is_never_covered(self):
        # {$gt: 5, $gte: 0} narrows to an inclusive [5, ...) candidate
        # superset; marking it exact would wrongly return the x=5 doc.
        coll = Collection("c")
        coll.create_index("x", kind="sorted")
        coll.insert_many([{"x": 5}, {"x": 6}, {"x": 7}])
        filter_doc = {"x": {"$gt": 5, "$gte": 0}}
        plan = coll.explain(filter_doc)
        assert plan["mode"] == "index"
        assert plan["covered"] is False
        assert coll.count(filter_doc) == 2
        assert [d["x"] for d in coll.find(filter_doc)] == [6, 7]
        assert coll.count({"x": {"$lt": 7, "$lte": 100}}) == 2

    def test_in_with_none_falls_back_to_scan(self, alarms):
        # {$in: [..., None]} matches documents missing the field entirely,
        # which no index entry covers.
        coll = Collection("c")
        coll.create_index("zip", kind="hash")
        coll.insert_many([{"zip": "8001"}, {"other": 1}])
        plan = coll.explain({"zip": {"$in": ["8001", None]}})
        assert plan["mode"] == "scan"
        assert coll.count({"zip": {"$in": ["8001", None]}}) == 2

    def test_empty_filter_explain(self, alarms):
        plan = alarms.explain()
        assert plan["mode"] == "scan"
        assert plan["covered"] is True  # nothing to verify
        assert plan["candidates"] == len(alarms)


class TestCoveredCount:
    def test_covered_count_equals_find(self, alarms):
        filter_doc = {"zip": "8001", "ts": {"$gte": 150}}
        assert alarms.explain(filter_doc)["covered"] is True
        assert alarms.count(filter_doc) == len(alarms.find(filter_doc))

    def test_covered_count_registers_index_hit(self, alarms):
        before = alarms.index_hits
        alarms.count({"zip": "8001"})
        assert alarms.index_hits == before + 1


class TestSortStrategies:
    def test_sorted_index_serves_order(self, alarms):
        plan = alarms.explain({}, sort="ts")
        assert plan["sort"] == {"field": "ts", "direction": 1,
                               "strategy": "index-order"}
        ts = [d["ts"] for d in alarms.find(sort="ts")]
        assert ts == sorted(ts)

    def test_sorted_index_serves_descending_order(self, alarms):
        plan = alarms.explain({"zip": "8001"}, sort=("ts", -1), limit=2)
        assert plan["sort"]["strategy"] == "index-order"
        ts = [d["ts"] for d in alarms.find({"zip": "8001"}, sort=("ts", -1), limit=2)]
        assert ts == [600, 200]

    def test_missing_sort_values_go_last_ascending_first_descending(self):
        coll = Collection("c")
        coll.create_index("ts", kind="sorted")
        coll.insert_many([{"ts": 2}, {"name": "no-ts"}, {"ts": 1}, {"ts": None}])
        assert coll.explain({}, sort="ts")["sort"]["strategy"] == "index-order"
        ascending = [d["_id"] for d in coll.find(sort="ts")]
        assert ascending == [2, 0, 1, 3]
        descending = [d["_id"] for d in coll.find(sort=("ts", -1))]
        assert descending == [1, 3, 0, 2]

    def test_heap_top_k_without_index(self, alarms):
        plan = alarms.explain({}, sort="duration", limit=3)
        assert plan["sort"]["strategy"] == "top-k-heap"
        durations = [d["duration"] for d in alarms.find(sort="duration", limit=3)]
        assert durations == [5.0, 12.0, 30.0]

    def test_full_sort_without_index_or_limit(self, alarms):
        plan = alarms.explain({}, sort=("duration", -1))
        assert plan["sort"]["strategy"] == "full-sort"
        durations = [d["duration"] for d in alarms.find(sort=("duration", -1))]
        assert durations == sorted(durations, reverse=True)

    def test_irregular_documents_disable_index_order(self):
        coll = Collection("c")
        coll.create_index("ts", kind="sorted")
        coll.insert_many([{"ts": 5}, {"ts": [3, 9]}, {"ts": 1}])
        plan = coll.explain({}, sort="ts")
        assert plan["sort"]["strategy"] == "full-sort"
        # Results still obey the matcher's type-ranked order: numbers first,
        # then the array value (rank "everything else").
        assert [d["_id"] for d in coll.find(sort="ts")] == [2, 0, 1]

    def test_rank2_scalars_disable_index_order(self):
        # Decimal compares natively in the index but by str() in the
        # matcher's type-ranked sort key: the index must not claim order.
        from decimal import Decimal
        coll = Collection("c")
        coll.create_index("x", kind="sorted")
        coll.insert_many([{"x": Decimal(10)}, {"x": Decimal(2)}])
        plan = coll.explain({}, sort="x")
        assert plan["sort"]["strategy"] == "full-sort"
        # str("10") < str("2"): the matcher's rank-2 order, index or not.
        assert [d["x"] for d in coll.find(sort="x")] == [Decimal(10), Decimal(2)]

    def test_skip_limit_windows_match_full_result(self, alarms):
        full = alarms.find(sort=("ts", -1))
        for skip in range(0, 7):
            for limit in range(0, 4):
                page = alarms.find(sort=("ts", -1), skip=skip, limit=limit)
                assert page == full[skip:skip + limit]

    def test_negative_limit_or_skip_is_rejected(self, alarms):
        from repro.errors import QueryError
        with pytest.raises(QueryError):
            alarms.find(limit=-1)
        with pytest.raises(QueryError):
            alarms.find(skip=-1)
        with pytest.raises(QueryError):
            alarms.explain(limit=-1)


class TestWritePathRegressions:
    def test_update_many_duplicate_leaves_indexes_consistent(self):
        coll = Collection("devices")
        coll.create_index("mac", kind="hash", unique=True)
        coll.insert_many([{"mac": "aa", "n": 1}, {"mac": "bb", "n": 2}])
        with pytest.raises(DuplicateKeyError):
            coll.update_many({"mac": "bb"}, {"$set": {"mac": "aa"}})
        # The failing document is untouched and every index entry survives.
        assert coll.count({"mac": "aa"}) == 1
        assert coll.count({"mac": "bb"}) == 1
        assert coll.find_one({"mac": "bb"})["n"] == 2
        coll.update_many({"mac": "bb"}, {"$set": {"mac": "cc"}})
        assert coll.count({"mac": "cc"}) == 1

    def test_update_many_self_overwrite_is_allowed(self):
        coll = Collection("devices")
        coll.create_index("mac", kind="hash", unique=True)
        coll.insert_one({"mac": "aa", "n": 1})
        assert coll.update_many({"mac": "aa"}, {"$set": {"n": 9}}) == 1
        assert coll.find_one({"mac": "aa"})["n"] == 9

    def test_update_error_mid_batch_keeps_indexes_consistent(self):
        coll = Collection("c")
        coll.create_index("v", kind="hash")
        coll.insert_many([{"v": 1}, {"v": "text"}])
        from repro.errors import QueryError
        with pytest.raises(QueryError):
            coll.update_many({}, {"$inc": {"v": 1}})  # fails on "text"
        # Doc 0 was updated before the failure; both stay index-reachable.
        assert coll.count({"v": 2}) == 1
        assert coll.count({"v": "text"}) == 1

    def test_insert_rejected_by_second_unique_index_leaves_first_clean(self):
        coll = Collection("devices")
        coll.create_index("a", kind="hash", unique=True)
        coll.create_index("b", kind="hash", unique=True)
        coll.insert_one({"a": 1, "b": 1})
        with pytest.raises(DuplicateKeyError):
            coll.insert_one({"a": 2, "b": 1})
        # A leftover a=2 entry from the rejected insert would break this.
        assert coll.insert_one({"a": 2, "b": 2}) == 1
        assert coll.count({"a": 2}) == 1


class TestDistinct:
    def test_distinct_handles_unhashable_values(self):
        coll = Collection("c")
        coll.insert_many([
            {"v": {"x": 1}},
            {"v": {"x": 1}},
            {"v": {"x": 2}},
            {"v": 7},
            {"v": 7},
        ])
        values = coll.distinct("v")
        assert len(values) == 3
        assert 7 in values
        assert {"x": 1} in values and {"x": 2} in values

    def test_distinct_values_are_copies(self):
        coll = Collection("c")
        coll.insert_one({"v": {"x": 1}})
        coll.distinct("v")[0]["x"] = 99
        assert coll.find_one()["v"] == {"x": 1}


class TestAggregatePushdown:
    PIPELINES = [
        [{"$match": {"type": "fire"}},
         {"$group": {"_id": "$zip", "n": {"$sum": 1}}}],
        [{"$match": {"ts": {"$gte": 200}}}, {"$match": {"zip": "8001"}},
         {"$sort": {"ts": -1}}, {"$limit": 2}],
        [{"$sort": {"ts": -1}}, {"$skip": 1}, {"$limit": 3},
         {"$project": {"ts": 1}}],
        [{"$match": {"zip": {"$in": ["8001", "4001"]}}},
         {"$sort": {"duration": 1}},
         {"$group": {"_id": "$type", "first": {"$first": "$ts"}}}],
        [{"$count": "total"}],
    ]

    @pytest.mark.parametrize("pipeline", PIPELINES)
    def test_pushdown_equals_interpreter(self, alarms, pipeline):
        assert aggregate(alarms, pipeline) == aggregate(
            alarms.all_documents(), pipeline
        )

    def test_pushdown_sort_matches_interpreter_for_rank2_values(self):
        # Rank-2 sort values (here Decimals) must order identically whether
        # the $sort is pushed into the planner or interpreted.
        from decimal import Decimal
        coll = Collection("c")
        coll.create_index("x", kind="sorted")
        coll.insert_many([{"x": Decimal(10)}, {"x": Decimal(2)}, {"x": 1}])
        pipeline = [{"$sort": {"x": 1}}, {"$project": {"x": 1}}]
        assert aggregate(coll, pipeline) == aggregate(
            coll.all_documents(), pipeline
        )

    def test_store_aggregate_uses_pushdown(self, alarms):
        store = DocumentStore()
        coll = store.collection("alarms")
        coll.create_index("ts", kind="sorted")
        coll.insert_many(d for d in alarms.all_documents()
                         if d.pop("_id") is not None)
        before = coll.index_hits
        rows = store.aggregate("alarms", [
            {"$match": {"ts": {"$gte": 300}}},
            {"$group": {"_id": None, "n": {"$sum": 1}}},
        ])
        assert rows == [{"_id": None, "n": 4}]
        assert coll.index_hits == before + 1


class TestHistoryAndRetrainingPlans:
    def test_device_histogram_counts_are_covered(self):
        from repro.core.history import AlarmHistory
        history = AlarmHistory()
        plan = history.collection.explain(
            {"device_address": "dev-1", "timestamp": {"$gte": 0.0}}
        )
        assert plan["covered"] is True
        assert {ix["field"] for ix in plan["indexes"]} == {
            "device_address", "timestamp",
        }

    def test_training_read_rides_the_timestamp_index(self):
        from repro.core.history import AlarmHistory
        history = AlarmHistory()
        plan = history.collection.explain(sort=("timestamp", -1), limit=100)
        assert plan["sort"]["strategy"] == "index-order"


def test_find_results_always_satisfy_matches(alarms):
    filter_doc = {"zip": {"$in": ["8001", "4001"]}, "ts": {"$gte": 150}}
    for doc in alarms.find(filter_doc, sort=("ts", -1)):
        assert matches(doc, filter_doc)
