"""Query-language tests: every operator plus dotted paths and logicals."""

import pytest

from repro.errors import QueryError
from repro.storage import compile_filter, matches, resolve_path, validate_filter

DOC = {
    "zip": "8001",
    "duration": 42.5,
    "count": 7,
    "active": True,
    "tags": ["fire", "night"],
    "device": {"sensor": "smoke", "versions": [1, 2]},
    "nullable": None,
    "readings": [{"v": 10}, {"v": 20}],
}


class TestResolvePath:
    def test_top_level(self):
        assert resolve_path(DOC, "zip") == ["8001"]

    def test_nested(self):
        assert resolve_path(DOC, "device.sensor") == ["smoke"]

    def test_array_fan_out(self):
        assert resolve_path(DOC, "readings.v") == [10, 20]

    def test_array_index(self):
        assert resolve_path(DOC, "readings.0") == [{"v": 10}]

    def test_missing(self):
        assert resolve_path(DOC, "ghost.path") == []


class TestEquality:
    def test_implicit_eq(self):
        assert matches(DOC, {"zip": "8001"})
        assert not matches(DOC, {"zip": "9999"})

    def test_explicit_eq(self):
        assert matches(DOC, {"count": {"$eq": 7}})

    def test_eq_matches_array_element(self):
        assert matches(DOC, {"tags": "fire"})

    def test_eq_matches_whole_array(self):
        assert matches(DOC, {"tags": ["fire", "night"]})

    def test_none_matches_null_and_missing(self):
        assert matches(DOC, {"nullable": None})
        assert matches(DOC, {"missing_field": None})
        assert not matches(DOC, {"zip": None})

    def test_ne(self):
        assert matches(DOC, {"zip": {"$ne": "9999"}})
        assert not matches(DOC, {"zip": {"$ne": "8001"}})

    def test_empty_filter_matches_everything(self):
        assert matches(DOC, {})
        assert matches({}, {})


class TestComparisons:
    @pytest.mark.parametrize("flt,expected", [
        ({"duration": {"$gt": 42}}, True),
        ({"duration": {"$gt": 42.5}}, False),
        ({"duration": {"$gte": 42.5}}, True),
        ({"duration": {"$lt": 100}}, True),
        ({"duration": {"$lte": 42.4}}, False),
        ({"count": {"$gte": 7, "$lte": 7}}, True),
        ({"count": {"$gt": 2, "$lt": 5}}, False),
    ])
    def test_ranges(self, flt, expected):
        assert matches(DOC, flt) is expected

    def test_mixed_type_comparison_is_false_not_error(self):
        assert not matches(DOC, {"zip": {"$gt": 5}})

    def test_in_and_nin(self):
        assert matches(DOC, {"zip": {"$in": ["8000", "8001"]}})
        assert not matches(DOC, {"zip": {"$in": ["8000"]}})
        assert matches(DOC, {"zip": {"$nin": ["8000"]}})

    def test_in_requires_list(self):
        with pytest.raises(QueryError):
            matches(DOC, {"zip": {"$in": "8001"}})


class TestElementOperators:
    def test_exists(self):
        assert matches(DOC, {"zip": {"$exists": True}})
        assert matches(DOC, {"ghost": {"$exists": False}})
        assert not matches(DOC, {"ghost": {"$exists": True}})

    @pytest.mark.parametrize("field,type_name", [
        ("zip", "string"), ("count", "int"), ("duration", "double"),
        ("active", "bool"), ("tags", "array"), ("device", "object"),
        ("nullable", "null"),
    ])
    def test_type(self, field, type_name):
        assert matches(DOC, {field: {"$type": type_name}})

    def test_bool_is_not_int(self):
        assert not matches(DOC, {"active": {"$type": "int"}})

    def test_unknown_type_name_raises(self):
        with pytest.raises(QueryError):
            matches(DOC, {"zip": {"$type": "decimal128"}})


class TestEvaluationOperators:
    def test_regex(self):
        assert matches(DOC, {"zip": {"$regex": r"^80"}})
        assert not matches(DOC, {"zip": {"$regex": r"^90"}})

    def test_invalid_regex_raises(self):
        with pytest.raises(QueryError):
            matches(DOC, {"zip": {"$regex": "("}})

    def test_mod(self):
        assert matches(DOC, {"count": {"$mod": [3, 1]}})
        assert not matches(DOC, {"count": {"$mod": [3, 0]}})

    def test_mod_validations(self):
        with pytest.raises(QueryError):
            matches(DOC, {"count": {"$mod": [0, 1]}})
        with pytest.raises(QueryError):
            matches(DOC, {"count": {"$mod": [3]}})


class TestArrayOperators:
    def test_size(self):
        assert matches(DOC, {"tags": {"$size": 2}})
        assert not matches(DOC, {"tags": {"$size": 3}})

    def test_all(self):
        assert matches(DOC, {"tags": {"$all": ["night", "fire"]}})
        assert not matches(DOC, {"tags": {"$all": ["fire", "smoke"]}})

    def test_elem_match(self):
        assert matches(DOC, {"readings": {"$elemMatch": {"v": {"$gt": 15}}}})
        assert not matches(DOC, {"readings": {"$elemMatch": {"v": {"$gt": 25}}}})


class TestLogicalOperators:
    def test_and(self):
        assert matches(DOC, {"$and": [{"zip": "8001"}, {"count": 7}]})
        assert not matches(DOC, {"$and": [{"zip": "8001"}, {"count": 8}]})

    def test_or(self):
        assert matches(DOC, {"$or": [{"zip": "bad"}, {"count": 7}]})
        assert not matches(DOC, {"$or": [{"zip": "bad"}, {"count": 8}]})

    def test_nor(self):
        assert matches(DOC, {"$nor": [{"zip": "bad"}, {"count": 8}]})
        assert not matches(DOC, {"$nor": [{"zip": "8001"}]})

    def test_not(self):
        assert matches(DOC, {"count": {"$not": {"$gt": 10}}})
        assert not matches(DOC, {"count": {"$not": {"$gt": 5}}})

    def test_implicit_and_between_fields(self):
        assert matches(DOC, {"zip": "8001", "count": {"$lt": 10}})
        assert not matches(DOC, {"zip": "8001", "count": {"$gt": 10}})

    def test_empty_logical_lists_raise(self):
        for op in ("$and", "$or", "$nor"):
            with pytest.raises(QueryError):
                matches(DOC, {op: []})

    def test_unknown_top_level_operator_raises(self):
        with pytest.raises(QueryError):
            matches(DOC, {"$xor": [{"a": 1}]})

    def test_unknown_field_operator_raises(self):
        with pytest.raises(QueryError):
            matches(DOC, {"zip": {"$near": "8001"}})


class TestCompileFilter:
    FILTERS = [
        {},
        {"zip": "8001"},
        {"zip": "8001", "count": {"$lt": 10}},
        {"tags": "fire"},
        {"nullable": None},
        {"missing_field": None},
        {"duration": {"$gte": 42.5, "$lt": 100}},
        {"zip": {"$in": ["8000", "8001"]}},
        {"zip": {"$nin": ["8000"]}},
        {"zip": {"$regex": r"^80"}},
        {"count": {"$mod": [3, 1]}},
        {"tags": {"$size": 2}, "device.sensor": "smoke"},
        {"readings": {"$elemMatch": {"v": {"$gt": 15}}}},
        {"count": {"$not": {"$gt": 10}}},
        {"$and": [{"zip": "8001"}, {"count": 7}]},
        {"$or": [{"zip": "bad"}, {"count": 7}]},
        {"$nor": [{"zip": "bad"}, {"count": 8}]},
        {"readings.v": 20},
    ]

    @pytest.mark.parametrize("flt", FILTERS)
    def test_compiled_predicate_equals_matches(self, flt):
        pred = compile_filter(flt)
        for doc in (DOC, {}, {"zip": "9999"}, {"tags": []}):
            assert pred(doc) is matches(doc, flt)

    def test_compiled_predicate_is_reusable(self):
        pred = compile_filter({"count": {"$gte": 5}})
        assert [pred({"count": n}) for n in (4, 5, 6)] == [False, True, True]
        assert pred({"count": 7}) and not pred({})

    @pytest.mark.parametrize("flt", [
        {"zip": {"$in": "not-a-list"}},
        {"zip": {"$bogus": 1}},
        {"zip": {"$regex": "("}},
        {"count": {"$mod": [0, 1]}},
        {"tags": {"$size": "2"}},
        {"readings": {"$elemMatch": "not-a-doc"}},
        {"count": {"$not": 5}},
        {"$and": []},
        {"$xor": [{"a": 1}]},
        {"zip": {"$type": "decimal128"}},
    ])
    def test_errors_surface_at_compile_time(self, flt):
        with pytest.raises(QueryError):
            compile_filter(flt)

    def test_validation_is_eager_even_for_later_operators(self):
        # The interpreter only validated operands it actually reached; the
        # compiler validates the whole filter up front.
        with pytest.raises(QueryError):
            compile_filter({"zip": {"$eq": "8001", "$in": "not-a-list"}})

    def test_in_with_unhashable_members(self):
        pred = compile_filter({"tags": {"$in": [["fire", "night"], "x"]}})
        assert pred(DOC)  # whole-array equality against the list member
        assert not pred({"tags": ["other"]})

    def test_non_mapping_filter_raises(self):
        with pytest.raises(QueryError):
            compile_filter(["not", "a", "filter"])


class TestValidateFilter:
    def test_accepts_well_formed(self):
        validate_filter({"a": 1, "$or": [{"b": {"$gt": 2}}, {"c": {"$in": [1]}}]})

    def test_rejects_non_mapping(self):
        with pytest.raises(QueryError):
            validate_filter(["not", "a", "filter"])

    def test_rejects_bad_operand(self):
        with pytest.raises(QueryError):
            validate_filter({"a": {"$in": 5}})
