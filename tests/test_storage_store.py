"""DocumentStore tests: collections, aggregation entry point, persistence."""

import pytest

from repro.errors import DuplicateKeyError, PersistenceError, StorageError
from repro.storage import DocumentStore


class TestCollections:
    def test_collection_is_created_implicitly(self):
        store = DocumentStore()
        store.collection("alarms").insert_one({"x": 1})
        assert store.collection_names() == ["alarms"]

    def test_collection_returns_same_object(self):
        store = DocumentStore()
        assert store.collection("a") is store.collection("a")

    def test_invalid_collection_names_raise(self):
        store = DocumentStore()
        for bad in ("", "a/b", ".hidden"):
            with pytest.raises(StorageError):
                store.collection(bad)

    def test_drop_collection(self):
        store = DocumentStore()
        store.collection("a").insert_one({"x": 1})
        store.drop_collection("a")
        assert store.collection_names() == []
        with pytest.raises(StorageError):
            store.drop_collection("a")

    def test_aggregate_entry_point(self):
        store = DocumentStore()
        store.collection("a").insert_many([{"k": "x"}, {"k": "x"}, {"k": "y"}])
        rows = store.aggregate("a", [{"$group": {"_id": "$k", "n": {"$sum": 1}}}])
        assert {r["_id"]: r["n"] for r in rows} == {"x": 2, "y": 1}


class TestPersistence:
    def test_save_and_load_round_trip(self, tmp_path):
        store = DocumentStore()
        alarms = store.collection("alarms")
        alarms.create_index("zip")
        alarms.create_index("ts", kind="sorted")
        alarms.insert_many([
            {"zip": "8001", "ts": 1, "nested": {"a": [1, 2]}},
            {"zip": "4001", "ts": 2, "text": "ümlaut"},
        ])
        store.collection("incidents").insert_one({"topic": "fire"})
        store.save(tmp_path / "db")

        loaded = DocumentStore.load(tmp_path / "db")
        assert loaded.collection_names() == ["alarms", "incidents"]
        assert len(loaded.collection("alarms")) == 2
        assert loaded.collection("alarms").find_one({"zip": "8001"})["nested"] == {"a": [1, 2]}
        assert loaded.collection("alarms").index_fields() == ["ts", "zip"]

    def test_loaded_indexes_work(self, tmp_path):
        store = DocumentStore()
        store.collection("a").create_index("k")
        store.collection("a").insert_many([{"k": i % 3} for i in range(9)])
        store.save(tmp_path / "db")
        loaded = DocumentStore.load(tmp_path / "db")
        coll = loaded.collection("a")
        before = coll.index_hits
        assert coll.count({"k": 1}) == 3
        assert coll.index_hits == before + 1

    def test_load_missing_manifest_raises(self, tmp_path):
        with pytest.raises(PersistenceError):
            DocumentStore.load(tmp_path / "nowhere")

    def test_load_corrupt_manifest_raises(self, tmp_path):
        d = tmp_path / "db"
        d.mkdir()
        (d / "manifest.json").write_text("{broken")
        with pytest.raises(PersistenceError):
            DocumentStore.load(d)

    def test_save_is_idempotent(self, tmp_path):
        store = DocumentStore()
        store.collection("a").insert_one({"x": 1})
        store.save(tmp_path / "db")
        store.save(tmp_path / "db")
        assert len(DocumentStore.load(tmp_path / "db").collection("a")) == 1

    def test_unique_and_hash_indexes_survive_round_trip(self, tmp_path):
        store = DocumentStore()
        devices = store.collection("devices")
        devices.create_index("serial", unique=True)
        devices.create_index("zip")
        devices.insert_many([
            {"serial": "A1", "zip": "8001"},
            {"serial": "B2", "zip": "8001"},
        ])
        store.save(tmp_path / "db")

        loaded = DocumentStore.load(tmp_path / "db")
        coll = loaded.collection("devices")
        assert coll.index_spec("serial") == {
            "field": "serial", "kind": "hash", "unique": True,
        }
        assert coll.index_spec("zip") == {"field": "zip", "kind": "hash"}
        # The uniqueness constraint is enforced again after reload.
        with pytest.raises(DuplicateKeyError):
            coll.insert_one({"serial": "A1", "zip": "9000"})
        coll.insert_one({"serial": "C3", "zip": "9000"})
        assert len(coll) == 3

    def test_missing_jsonl_loads_empty_collection_with_indexes(self, tmp_path):
        store = DocumentStore()
        store.collection("a").create_index("k", unique=True)
        store.collection("a").insert_one({"k": 1})
        store.save(tmp_path / "db")
        (tmp_path / "db" / "a.jsonl").unlink()

        loaded = DocumentStore.load(tmp_path / "db")
        coll = loaded.collection("a")
        assert len(coll) == 0
        assert coll.index_spec("k")["unique"] is True

    def test_corrupt_jsonl_raises_persistence_error(self, tmp_path):
        store = DocumentStore()
        store.collection("a").insert_one({"k": 1})
        store.save(tmp_path / "db")
        (tmp_path / "db" / "a.jsonl").write_text('{"k": 1}\n{broken\n')
        with pytest.raises(PersistenceError, match="cannot load collection"):
            DocumentStore.load(tmp_path / "db")

    def test_manifest_wrong_type_raises(self, tmp_path):
        d = tmp_path / "db"
        d.mkdir()
        (d / "manifest.json").write_text("[1, 2, 3]")
        with pytest.raises(PersistenceError, match="not a collections object"):
            DocumentStore.load(d)

    def test_unserializable_document_raises(self, tmp_path):
        store = DocumentStore()
        store.collection("a").insert_one({"x": float("nan")})
        # NaN is representable by json.dumps by default; bytes are not.
        store.collection("b").insert_one({"x": (1).to_bytes(1, "big")})
        with pytest.raises(PersistenceError, match="cannot save collection"):
            store.save(tmp_path / "db")

    def test_failed_save_preserves_previous_contents(self, tmp_path):
        """Atomicity: a save that dies partway (here: collection "b" holds
        an unserializable document, and "a" < "b" writes first) must leave
        the target directory exactly as the previous successful save left
        it — never a mix of rewritten .jsonl files and a stale manifest."""
        target = tmp_path / "db"
        good = DocumentStore()
        good.collection("a").insert_one({"x": "original"})
        good.save(target)

        bad = DocumentStore()
        bad.collection("a").insert_one({"x": "partial-rewrite"})
        bad.collection("b").insert_one({"x": (1).to_bytes(1, "big")})
        with pytest.raises(PersistenceError, match="cannot save collection 'b'"):
            bad.save(target)

        reloaded = DocumentStore.load(target)
        assert reloaded.collection_names() == ["a"]
        assert reloaded.collection("a").find_one({})["x"] == "original"
        # No temp debris left next to the target either.
        assert [p.name for p in tmp_path.iterdir()] == ["db"]

    def test_failed_save_into_fresh_directory_leaves_nothing(self, tmp_path):
        store = DocumentStore()
        store.collection("b").insert_one({"x": (1).to_bytes(1, "big")})
        with pytest.raises(PersistenceError):
            store.save(tmp_path / "db")
        assert not (tmp_path / "db").exists()
        assert list(tmp_path.iterdir()) == []

    def test_save_refuses_to_overwrite_foreign_directory(self, tmp_path):
        """The swap replaces the whole directory, so a non-empty target
        that was not written by save() (no manifest) must be refused, not
        silently destroyed."""
        target = tmp_path / "results"
        target.mkdir()
        (target / "notes.txt").write_text("do not lose me")
        store = DocumentStore()
        store.collection("a").insert_one({"x": 1})
        with pytest.raises(PersistenceError, match="refusing to overwrite"):
            store.save(target)
        assert (target / "notes.txt").read_text() == "do not lose me"
        # An *empty* pre-existing directory is fine (the tmp-dir idiom).
        empty = tmp_path / "empty"
        empty.mkdir()
        store.save(empty)
        assert DocumentStore.load(empty).collection_names() == ["a"]

    @staticmethod
    def _dead_pid() -> int:
        """A pid guaranteed to belong to no live process (spawn-and-reap)."""
        import subprocess
        proc = subprocess.Popen(["true"])
        proc.wait()
        return proc.pid

    def test_torn_swap_is_recovered_on_load(self, tmp_path):
        """A crash between the swap's two renames leaves the previous good
        image stranded as '.db.replaced-<pid>' with no visible target (any
        pid — the writer is gone).  load() must restore and read it."""
        target = tmp_path / "db"
        store = DocumentStore()
        store.collection("a").insert_one({"x": "survivor"})
        store.save(target)
        import os
        os.rename(target, tmp_path / f".db.replaced-{self._dead_pid()}")

        loaded = DocumentStore.load(target)
        assert loaded.collection("a").find_one({})["x"] == "survivor"
        assert target.exists()  # restored in place, not just read

    def test_save_after_torn_swap_restores_then_replaces(self, tmp_path):
        target = tmp_path / "db"
        store = DocumentStore()
        store.collection("a").insert_one({"x": "old"})
        store.save(target)
        import os
        os.rename(target, tmp_path / f".db.replaced-{self._dead_pid()}")

        fresh = DocumentStore()
        fresh.collection("a").insert_one({"x": "new"})
        fresh.save(target)
        assert DocumentStore.load(target).collection("a").find_one({})["x"] == "new"
        assert [p.name for p in tmp_path.iterdir()] == ["db"]  # debris swept


class TestSaveLockDiscipline:
    def test_fsync_runs_outside_registry_lock(self, tmp_path, monkeypatch):
        """Regression (lock-discipline): save() snapshots under the lock but
        must release it before file writes/fsyncs, so a slow disk never
        stalls concurrent readers."""
        import os
        import threading

        store = DocumentStore()
        store.collection("a").insert_one({"x": 1})
        real_fsync = os.fsync
        probes: list[bool] = []

        def probing_fsync(fd):
            # The store lock is an RLock, so probe from a second thread:
            # acquire fails there iff the saving thread still holds it.
            def probe():
                got = store._lock.acquire(blocking=False)
                if got:
                    store._lock.release()
                probes.append(got)

            t = threading.Thread(target=probe)
            t.start()
            t.join()
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", probing_fsync)
        store.save(tmp_path / "db")
        assert probes and all(probes)
        assert DocumentStore.load(tmp_path / "db").collection("a").count({}) == 1
