"""DocumentStore tests: collections, aggregation entry point, persistence."""

import pytest

from repro.errors import PersistenceError, StorageError
from repro.storage import DocumentStore


class TestCollections:
    def test_collection_is_created_implicitly(self):
        store = DocumentStore()
        store.collection("alarms").insert_one({"x": 1})
        assert store.collection_names() == ["alarms"]

    def test_collection_returns_same_object(self):
        store = DocumentStore()
        assert store.collection("a") is store.collection("a")

    def test_invalid_collection_names_raise(self):
        store = DocumentStore()
        for bad in ("", "a/b", ".hidden"):
            with pytest.raises(StorageError):
                store.collection(bad)

    def test_drop_collection(self):
        store = DocumentStore()
        store.collection("a").insert_one({"x": 1})
        store.drop_collection("a")
        assert store.collection_names() == []
        with pytest.raises(StorageError):
            store.drop_collection("a")

    def test_aggregate_entry_point(self):
        store = DocumentStore()
        store.collection("a").insert_many([{"k": "x"}, {"k": "x"}, {"k": "y"}])
        rows = store.aggregate("a", [{"$group": {"_id": "$k", "n": {"$sum": 1}}}])
        assert {r["_id"]: r["n"] for r in rows} == {"x": 2, "y": 1}


class TestPersistence:
    def test_save_and_load_round_trip(self, tmp_path):
        store = DocumentStore()
        alarms = store.collection("alarms")
        alarms.create_index("zip")
        alarms.create_index("ts", kind="sorted")
        alarms.insert_many([
            {"zip": "8001", "ts": 1, "nested": {"a": [1, 2]}},
            {"zip": "4001", "ts": 2, "text": "ümlaut"},
        ])
        store.collection("incidents").insert_one({"topic": "fire"})
        store.save(tmp_path / "db")

        loaded = DocumentStore.load(tmp_path / "db")
        assert loaded.collection_names() == ["alarms", "incidents"]
        assert len(loaded.collection("alarms")) == 2
        assert loaded.collection("alarms").find_one({"zip": "8001"})["nested"] == {"a": [1, 2]}
        assert loaded.collection("alarms").index_fields() == ["ts", "zip"]

    def test_loaded_indexes_work(self, tmp_path):
        store = DocumentStore()
        store.collection("a").create_index("k")
        store.collection("a").insert_many([{"k": i % 3} for i in range(9)])
        store.save(tmp_path / "db")
        loaded = DocumentStore.load(tmp_path / "db")
        coll = loaded.collection("a")
        before = coll.index_hits
        assert coll.count({"k": 1}) == 3
        assert coll.index_hits == before + 1

    def test_load_missing_manifest_raises(self, tmp_path):
        with pytest.raises(PersistenceError):
            DocumentStore.load(tmp_path / "nowhere")

    def test_load_corrupt_manifest_raises(self, tmp_path):
        d = tmp_path / "db"
        d.mkdir()
        (d / "manifest.json").write_text("{broken")
        with pytest.raises(PersistenceError):
            DocumentStore.load(d)

    def test_save_is_idempotent(self, tmp_path):
        store = DocumentStore()
        store.collection("a").insert_one({"x": 1})
        store.save(tmp_path / "db")
        store.save(tmp_path / "db")
        assert len(DocumentStore.load(tmp_path / "db").collection("a")) == 1
