"""DocumentStore tests: collections, aggregation entry point, persistence."""

import pytest

from repro.errors import DuplicateKeyError, PersistenceError, StorageError
from repro.storage import DocumentStore


class TestCollections:
    def test_collection_is_created_implicitly(self):
        store = DocumentStore()
        store.collection("alarms").insert_one({"x": 1})
        assert store.collection_names() == ["alarms"]

    def test_collection_returns_same_object(self):
        store = DocumentStore()
        assert store.collection("a") is store.collection("a")

    def test_invalid_collection_names_raise(self):
        store = DocumentStore()
        for bad in ("", "a/b", ".hidden"):
            with pytest.raises(StorageError):
                store.collection(bad)

    def test_drop_collection(self):
        store = DocumentStore()
        store.collection("a").insert_one({"x": 1})
        store.drop_collection("a")
        assert store.collection_names() == []
        with pytest.raises(StorageError):
            store.drop_collection("a")

    def test_aggregate_entry_point(self):
        store = DocumentStore()
        store.collection("a").insert_many([{"k": "x"}, {"k": "x"}, {"k": "y"}])
        rows = store.aggregate("a", [{"$group": {"_id": "$k", "n": {"$sum": 1}}}])
        assert {r["_id"]: r["n"] for r in rows} == {"x": 2, "y": 1}


class TestPersistence:
    def test_save_and_load_round_trip(self, tmp_path):
        store = DocumentStore()
        alarms = store.collection("alarms")
        alarms.create_index("zip")
        alarms.create_index("ts", kind="sorted")
        alarms.insert_many([
            {"zip": "8001", "ts": 1, "nested": {"a": [1, 2]}},
            {"zip": "4001", "ts": 2, "text": "ümlaut"},
        ])
        store.collection("incidents").insert_one({"topic": "fire"})
        store.save(tmp_path / "db")

        loaded = DocumentStore.load(tmp_path / "db")
        assert loaded.collection_names() == ["alarms", "incidents"]
        assert len(loaded.collection("alarms")) == 2
        assert loaded.collection("alarms").find_one({"zip": "8001"})["nested"] == {"a": [1, 2]}
        assert loaded.collection("alarms").index_fields() == ["ts", "zip"]

    def test_loaded_indexes_work(self, tmp_path):
        store = DocumentStore()
        store.collection("a").create_index("k")
        store.collection("a").insert_many([{"k": i % 3} for i in range(9)])
        store.save(tmp_path / "db")
        loaded = DocumentStore.load(tmp_path / "db")
        coll = loaded.collection("a")
        before = coll.index_hits
        assert coll.count({"k": 1}) == 3
        assert coll.index_hits == before + 1

    def test_load_missing_manifest_raises(self, tmp_path):
        with pytest.raises(PersistenceError):
            DocumentStore.load(tmp_path / "nowhere")

    def test_load_corrupt_manifest_raises(self, tmp_path):
        d = tmp_path / "db"
        d.mkdir()
        (d / "manifest.json").write_text("{broken")
        with pytest.raises(PersistenceError):
            DocumentStore.load(d)

    def test_save_is_idempotent(self, tmp_path):
        store = DocumentStore()
        store.collection("a").insert_one({"x": 1})
        store.save(tmp_path / "db")
        store.save(tmp_path / "db")
        assert len(DocumentStore.load(tmp_path / "db").collection("a")) == 1

    def test_unique_and_hash_indexes_survive_round_trip(self, tmp_path):
        store = DocumentStore()
        devices = store.collection("devices")
        devices.create_index("serial", unique=True)
        devices.create_index("zip")
        devices.insert_many([
            {"serial": "A1", "zip": "8001"},
            {"serial": "B2", "zip": "8001"},
        ])
        store.save(tmp_path / "db")

        loaded = DocumentStore.load(tmp_path / "db")
        coll = loaded.collection("devices")
        assert coll.index_spec("serial") == {
            "field": "serial", "kind": "hash", "unique": True,
        }
        assert coll.index_spec("zip") == {"field": "zip", "kind": "hash"}
        # The uniqueness constraint is enforced again after reload.
        with pytest.raises(DuplicateKeyError):
            coll.insert_one({"serial": "A1", "zip": "9000"})
        coll.insert_one({"serial": "C3", "zip": "9000"})
        assert len(coll) == 3

    def test_missing_jsonl_loads_empty_collection_with_indexes(self, tmp_path):
        store = DocumentStore()
        store.collection("a").create_index("k", unique=True)
        store.collection("a").insert_one({"k": 1})
        store.save(tmp_path / "db")
        (tmp_path / "db" / "a.jsonl").unlink()

        loaded = DocumentStore.load(tmp_path / "db")
        coll = loaded.collection("a")
        assert len(coll) == 0
        assert coll.index_spec("k")["unique"] is True

    def test_corrupt_jsonl_raises_persistence_error(self, tmp_path):
        store = DocumentStore()
        store.collection("a").insert_one({"k": 1})
        store.save(tmp_path / "db")
        (tmp_path / "db" / "a.jsonl").write_text('{"k": 1}\n{broken\n')
        with pytest.raises(PersistenceError, match="cannot load collection"):
            DocumentStore.load(tmp_path / "db")

    def test_manifest_wrong_type_raises(self, tmp_path):
        d = tmp_path / "db"
        d.mkdir()
        (d / "manifest.json").write_text("[1, 2, 3]")
        with pytest.raises(PersistenceError, match="not a collections object"):
            DocumentStore.load(d)

    def test_unserializable_document_raises(self, tmp_path):
        store = DocumentStore()
        store.collection("a").insert_one({"x": float("nan")})
        # NaN is representable by json.dumps by default; bytes are not.
        store.collection("b").insert_one({"x": (1).to_bytes(1, "big")})
        with pytest.raises(PersistenceError, match="cannot save collection"):
            store.save(tmp_path / "db")
