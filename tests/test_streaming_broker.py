"""Unit tests for the broker: topics, partitions, offsets, commits."""

import pytest

from repro.errors import (
    OffsetOutOfRangeError,
    UnknownPartitionError,
    UnknownTopicError,
)
from repro.streaming import Broker, TopicPartition


@pytest.fixture
def broker():
    b = Broker()
    b.create_topic("alarms", num_partitions=3)
    return b


class TestTopicAdministration:
    def test_create_topic_registers_partitions(self, broker):
        assert broker.num_partitions("alarms") == 3
        assert broker.partitions_for("alarms") == [
            TopicPartition("alarms", p) for p in range(3)
        ]

    def test_create_topic_is_idempotent_with_same_partitions(self, broker):
        broker.create_topic("alarms", num_partitions=3)
        assert broker.topics() == ["alarms"]

    def test_create_topic_conflicting_partitions_raises(self, broker):
        with pytest.raises(UnknownPartitionError):
            broker.create_topic("alarms", num_partitions=5)

    def test_create_topic_rejects_zero_partitions(self, broker):
        with pytest.raises(UnknownPartitionError):
            broker.create_topic("bad", num_partitions=0)

    def test_delete_topic_removes_everything(self, broker):
        broker.append("alarms", 0, None, b"x")
        broker.commit("g", {TopicPartition("alarms", 0): 1})
        broker.delete_topic("alarms")
        assert broker.topics() == []
        with pytest.raises(UnknownTopicError):
            broker.end_offset(TopicPartition("alarms", 0))

    def test_delete_unknown_topic_raises(self, broker):
        with pytest.raises(UnknownTopicError):
            broker.delete_topic("nope")

    def test_unknown_topic_raises_on_fetch(self, broker):
        with pytest.raises(UnknownTopicError):
            broker.fetch(TopicPartition("ghost", 0), 0)

    def test_unknown_partition_raises(self, broker):
        with pytest.raises(UnknownPartitionError):
            broker.append("alarms", 9, None, b"x")


class TestAppendFetch:
    def test_offsets_are_sequential_per_partition(self, broker):
        assert broker.append("alarms", 0, None, b"a") == 0
        assert broker.append("alarms", 0, None, b"b") == 1
        assert broker.append("alarms", 1, None, b"c") == 0

    def test_fetch_returns_records_in_offset_order(self, broker):
        for i in range(5):
            broker.append("alarms", 0, None, f"m{i}".encode())
        records = broker.fetch(TopicPartition("alarms", 0), 0, max_records=10)
        assert [r.value for r in records] == [b"m0", b"m1", b"m2", b"m3", b"m4"]
        assert [r.offset for r in records] == list(range(5))

    def test_fetch_respects_max_records(self, broker):
        for i in range(10):
            broker.append("alarms", 0, None, b"x")
        records = broker.fetch(TopicPartition("alarms", 0), 2, max_records=3)
        assert [r.offset for r in records] == [2, 3, 4]

    def test_fetch_at_log_end_returns_empty(self, broker):
        broker.append("alarms", 0, None, b"x")
        assert broker.fetch(TopicPartition("alarms", 0), 1) == []

    def test_fetch_beyond_log_end_raises(self, broker):
        with pytest.raises(OffsetOutOfRangeError):
            broker.fetch(TopicPartition("alarms", 0), 5)

    def test_fetch_negative_offset_raises(self, broker):
        with pytest.raises(OffsetOutOfRangeError):
            broker.fetch(TopicPartition("alarms", 0), -1)

    def test_end_offsets_per_partition(self, broker):
        broker.append("alarms", 0, None, b"x")
        broker.append("alarms", 2, None, b"y")
        broker.append("alarms", 2, None, b"z")
        offsets = broker.end_offsets("alarms")
        assert offsets[TopicPartition("alarms", 0)] == 1
        assert offsets[TopicPartition("alarms", 1)] == 0
        assert offsets[TopicPartition("alarms", 2)] == 2

    def test_record_carries_key_and_headers(self, broker):
        broker.append("alarms", 0, b"dev1", b"payload", headers={"v": "2"})
        record = broker.fetch(TopicPartition("alarms", 0), 0)[0]
        assert record.key == b"dev1"
        assert record.headers["v"] == "2"
        assert record.topic == "alarms"

    def test_total_records_and_partition_sizes(self, broker):
        for p in (0, 0, 1):
            broker.append("alarms", p, None, b"x")
        assert broker.total_records("alarms") == 3
        assert broker.partition_sizes("alarms") == [2, 1, 0]


class TestCommittedOffsets:
    def test_commit_and_read_back(self, broker):
        tp = TopicPartition("alarms", 0)
        broker.append("alarms", 0, None, b"x")
        broker.commit("group-a", {tp: 1})
        assert broker.committed("group-a", tp) == 1

    def test_committed_is_per_group(self, broker):
        tp = TopicPartition("alarms", 0)
        broker.append("alarms", 0, None, b"x")
        broker.commit("group-a", {tp: 1})
        assert broker.committed("group-b", tp) is None

    def test_commit_beyond_log_end_raises(self, broker):
        tp = TopicPartition("alarms", 0)
        with pytest.raises(OffsetOutOfRangeError):
            broker.commit("g", {tp: 3})

    def test_commit_negative_raises(self, broker):
        tp = TopicPartition("alarms", 0)
        with pytest.raises(OffsetOutOfRangeError):
            broker.commit("g", {tp: -1})

    def test_commit_at_log_end_is_allowed(self, broker):
        tp = TopicPartition("alarms", 0)
        broker.append("alarms", 0, None, b"x")
        broker.commit("g", {tp: 1})  # == end offset, means "all consumed"
        assert broker.committed("g", tp) == 1
