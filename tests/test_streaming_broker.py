"""Unit tests for the broker: topics, partitions, offsets, commits,
batched appends, and blocking long-poll fetch under the per-partition
locking model."""

import threading
import time

import pytest

from repro.errors import (
    OffsetOutOfRangeError,
    UnknownPartitionError,
    UnknownTopicError,
)
from repro.streaming import Broker, TopicPartition


@pytest.fixture
def broker():
    b = Broker()
    b.create_topic("alarms", num_partitions=3)
    return b


class TestTopicAdministration:
    def test_create_topic_registers_partitions(self, broker):
        assert broker.num_partitions("alarms") == 3
        assert broker.partitions_for("alarms") == [
            TopicPartition("alarms", p) for p in range(3)
        ]

    def test_create_topic_is_idempotent_with_same_partitions(self, broker):
        broker.create_topic("alarms", num_partitions=3)
        assert broker.topics() == ["alarms"]

    def test_create_topic_conflicting_partitions_raises(self, broker):
        with pytest.raises(UnknownPartitionError):
            broker.create_topic("alarms", num_partitions=5)

    def test_create_topic_rejects_zero_partitions(self, broker):
        with pytest.raises(UnknownPartitionError):
            broker.create_topic("bad", num_partitions=0)

    def test_delete_topic_removes_everything(self, broker):
        broker.append("alarms", 0, None, b"x")
        broker.commit("g", {TopicPartition("alarms", 0): 1})
        broker.delete_topic("alarms")
        assert broker.topics() == []
        with pytest.raises(UnknownTopicError):
            broker.end_offset(TopicPartition("alarms", 0))

    def test_delete_unknown_topic_raises(self, broker):
        with pytest.raises(UnknownTopicError):
            broker.delete_topic("nope")

    def test_unknown_topic_raises_on_fetch(self, broker):
        with pytest.raises(UnknownTopicError):
            broker.fetch(TopicPartition("ghost", 0), 0)

    def test_unknown_partition_raises(self, broker):
        with pytest.raises(UnknownPartitionError):
            broker.append("alarms", 9, None, b"x")


class TestAppendFetch:
    def test_offsets_are_sequential_per_partition(self, broker):
        assert broker.append("alarms", 0, None, b"a") == 0
        assert broker.append("alarms", 0, None, b"b") == 1
        assert broker.append("alarms", 1, None, b"c") == 0

    def test_fetch_returns_records_in_offset_order(self, broker):
        for i in range(5):
            broker.append("alarms", 0, None, f"m{i}".encode())
        records = broker.fetch(TopicPartition("alarms", 0), 0, max_records=10)
        assert [r.value for r in records] == [b"m0", b"m1", b"m2", b"m3", b"m4"]
        assert [r.offset for r in records] == list(range(5))

    def test_fetch_respects_max_records(self, broker):
        for i in range(10):
            broker.append("alarms", 0, None, b"x")
        records = broker.fetch(TopicPartition("alarms", 0), 2, max_records=3)
        assert [r.offset for r in records] == [2, 3, 4]

    def test_fetch_at_log_end_returns_empty(self, broker):
        broker.append("alarms", 0, None, b"x")
        assert broker.fetch(TopicPartition("alarms", 0), 1) == []

    def test_fetch_beyond_log_end_raises(self, broker):
        with pytest.raises(OffsetOutOfRangeError):
            broker.fetch(TopicPartition("alarms", 0), 5)

    def test_fetch_negative_offset_raises(self, broker):
        with pytest.raises(OffsetOutOfRangeError):
            broker.fetch(TopicPartition("alarms", 0), -1)

    def test_end_offsets_per_partition(self, broker):
        broker.append("alarms", 0, None, b"x")
        broker.append("alarms", 2, None, b"y")
        broker.append("alarms", 2, None, b"z")
        offsets = broker.end_offsets("alarms")
        assert offsets[TopicPartition("alarms", 0)] == 1
        assert offsets[TopicPartition("alarms", 1)] == 0
        assert offsets[TopicPartition("alarms", 2)] == 2

    def test_record_carries_key_and_headers(self, broker):
        broker.append("alarms", 0, b"dev1", b"payload", headers={"v": "2"})
        record = broker.fetch(TopicPartition("alarms", 0), 0)[0]
        assert record.key == b"dev1"
        assert record.headers["v"] == "2"
        assert record.topic == "alarms"

    def test_total_records_and_partition_sizes(self, broker):
        for p in (0, 0, 1):
            broker.append("alarms", p, None, b"x")
        assert broker.total_records("alarms") == 3
        assert broker.partition_sizes("alarms") == [2, 1, 0]


class TestCommittedOffsets:
    def test_commit_and_read_back(self, broker):
        tp = TopicPartition("alarms", 0)
        broker.append("alarms", 0, None, b"x")
        broker.commit("group-a", {tp: 1})
        assert broker.committed("group-a", tp) == 1

    def test_committed_is_per_group(self, broker):
        tp = TopicPartition("alarms", 0)
        broker.append("alarms", 0, None, b"x")
        broker.commit("group-a", {tp: 1})
        assert broker.committed("group-b", tp) is None

    def test_commit_beyond_log_end_raises(self, broker):
        tp = TopicPartition("alarms", 0)
        with pytest.raises(OffsetOutOfRangeError):
            broker.commit("g", {tp: 3})

    def test_commit_negative_raises(self, broker):
        tp = TopicPartition("alarms", 0)
        with pytest.raises(OffsetOutOfRangeError):
            broker.commit("g", {tp: -1})

    def test_commit_at_log_end_is_allowed(self, broker):
        tp = TopicPartition("alarms", 0)
        broker.append("alarms", 0, None, b"x")
        broker.commit("g", {tp: 1})  # == end offset, means "all consumed"
        assert broker.committed("g", tp) == 1

    def test_commit_after_delete_raises_and_leaves_no_offsets(self, broker):
        tp = TopicPartition("alarms", 0)
        broker.append("alarms", 0, None, b"x")
        broker.delete_topic("alarms")
        with pytest.raises(UnknownTopicError):
            broker.commit("g", {tp: 1})
        # Re-creating the topic must not surface stale committed offsets.
        broker.create_topic("alarms", num_partitions=3)
        assert broker.committed("g", tp) is None

    def test_commit_beyond_end_after_batch_append_raises(self, broker):
        tp = TopicPartition("alarms", 0)
        broker.append_batch("alarms", 0, [(None, b"a"), (None, b"b")])
        with pytest.raises(OffsetOutOfRangeError):
            broker.commit("g", {tp: 3})
        # a failed commit leaves nothing behind
        assert broker.committed("g", tp) is None

    def test_commit_for_unknown_topic_raises(self, broker):
        """Offsets are validated against topic metadata: a commit naming a
        topic that was never created must be rejected, not silently stored
        (a consumer would otherwise "resume" from a phantom position)."""
        with pytest.raises(UnknownTopicError):
            broker.commit("g", {TopicPartition("phantom", 0): 0})

    def test_commit_for_unknown_partition_raises(self, broker):
        with pytest.raises(UnknownPartitionError):
            broker.commit("g", {TopicPartition("alarms", 99): 0})

    def test_mixed_commit_with_unknown_topic_stores_nothing(self, broker):
        """Validation happens for the whole offset map before any entry is
        applied: one bad topic/partition poisons the entire commit."""
        good = TopicPartition("alarms", 0)
        broker.append("alarms", 0, None, b"x")
        with pytest.raises(UnknownTopicError):
            broker.commit("g", {good: 1, TopicPartition("phantom", 0): 0})
        assert broker.committed("g", good) is None
        with pytest.raises(UnknownPartitionError):
            broker.commit("g", {good: 1, TopicPartition("alarms", 7): 0})
        assert broker.committed("g", good) is None


class TestBatchAppend:
    def test_append_batch_assigns_contiguous_offsets(self, broker):
        offsets = broker.append_batch(
            "alarms", 1, [(None, f"m{i}".encode()) for i in range(5)]
        )
        assert offsets == [0, 1, 2, 3, 4]
        records = broker.fetch(TopicPartition("alarms", 1), 0, max_records=10)
        assert [r.value for r in records] == [b"m0", b"m1", b"m2", b"m3", b"m4"]

    def test_append_batch_interleaves_with_single_appends(self, broker):
        broker.append("alarms", 0, None, b"first")
        broker.append_batch("alarms", 0, [(b"k", b"mid", None, {"h": "1"})])
        assert broker.append("alarms", 0, None, b"last") == 2
        records = broker.fetch(TopicPartition("alarms", 0), 0, max_records=10)
        assert [r.value for r in records] == [b"first", b"mid", b"last"]
        assert records[1].key == b"k"
        assert records[1].headers == {"h": "1"}

    def test_append_batch_timestamps_strictly_increase(self, broker):
        broker.append_batch("alarms", 0, [(None, b"x")] * 50)
        records = broker.fetch(TopicPartition("alarms", 0), 0, max_records=50)
        stamps = [r.timestamp for r in records]
        assert all(a < b for a, b in zip(stamps, stamps[1:]))

    def test_append_batch_empty_is_noop(self, broker):
        assert broker.append_batch("alarms", 0, []) == []
        assert broker.total_records("alarms") == 0

    def test_append_batch_unknown_topic_raises(self, broker):
        with pytest.raises(UnknownTopicError):
            broker.append_batch("ghost", 0, [(None, b"x")])

    def test_size_bytes_counter_matches_recomputation(self, broker):
        from repro.streaming import PartitionLog
        log = PartitionLog("t", 0)
        log.append(b"key", b"value", headers={"a": "bb"})
        log.append_batch([(None, b"xyz"), (b"k2", b"0123456789")])
        recomputed = sum(
            r.size_bytes() for r in log.read(0, max_records=100)
        )
        assert log.size_bytes() == recomputed > 0


class TestLongPollFetch:
    def test_fetch_at_end_with_zero_timeout_returns_immediately(self, broker):
        broker.append("alarms", 0, None, b"x")
        started = time.perf_counter()
        records = broker.fetch(TopicPartition("alarms", 0), 1, timeout=0)
        elapsed = time.perf_counter() - started
        assert records == []
        assert elapsed < 0.05

    def test_blocked_fetch_wakes_on_append(self, broker):
        tp = TopicPartition("alarms", 0)
        results = {}

        def blocked_fetch():
            results["records"] = broker.fetch(tp, 0, timeout=5.0)
            results["returned_at"] = time.perf_counter()

        waiter = threading.Thread(target=blocked_fetch)
        waiter.start()
        time.sleep(0.05)  # let the fetch block
        appended_at = time.perf_counter()
        broker.append("alarms", 0, None, b"wake")
        waiter.join(timeout=5.0)
        assert not waiter.is_alive()
        assert [r.value for r in results["records"]] == [b"wake"]
        assert results["returned_at"] - appended_at < 0.05

    def test_blocked_fetch_times_out_empty(self, broker):
        records = broker.fetch(TopicPartition("alarms", 0), 0, timeout=0.05)
        assert records == []

    def test_delete_topic_wakes_blocked_fetch_with_unknown_topic(self, broker):
        tp = TopicPartition("alarms", 0)
        results = {}

        def blocked_fetch():
            try:
                broker.fetch(tp, 0, timeout=5.0)
                results["outcome"] = "returned"
            except UnknownTopicError:
                results["outcome"] = "unknown-topic"
                results["at"] = time.perf_counter()

        waiter = threading.Thread(target=blocked_fetch)
        waiter.start()
        time.sleep(0.05)
        deleted_at = time.perf_counter()
        broker.delete_topic("alarms")
        waiter.join(timeout=5.0)
        assert not waiter.is_alive()
        assert results["outcome"] == "unknown-topic"
        assert results["at"] - deleted_at < 0.05

    def test_wait_for_any_sees_existing_records(self, broker):
        broker.append("alarms", 2, None, b"x")
        assert broker.wait_for_any({TopicPartition("alarms", 2): 0}, timeout=0.0)

    def test_wait_for_any_times_out(self, broker):
        assert not broker.wait_for_any(
            {TopicPartition("alarms", 0): 0}, timeout=0.05
        )

    def test_wait_for_any_wakes_on_append_to_any_partition(self, broker):
        positions = {TopicPartition("alarms", p): 0 for p in range(3)}
        results = {}

        def wait():
            results["woke"] = broker.wait_for_any(positions, timeout=5.0)
            results["at"] = time.perf_counter()

        waiter = threading.Thread(target=wait)
        waiter.start()
        time.sleep(0.05)
        appended_at = time.perf_counter()
        broker.append("alarms", 2, None, b"x")
        waiter.join(timeout=5.0)
        assert not waiter.is_alive()
        assert results["woke"]
        assert results["at"] - appended_at < 0.05

    def test_wait_for_activity_wakes_on_commit(self, broker):
        broker.append("alarms", 0, None, b"x")
        version = broker.activity_version()
        results = {}

        def wait():
            results["version"] = broker.wait_for_activity(version, timeout=5.0)

        waiter = threading.Thread(target=wait)
        waiter.start()
        time.sleep(0.05)
        broker.commit("g", {TopicPartition("alarms", 0): 1})
        waiter.join(timeout=5.0)
        assert not waiter.is_alive()
        assert results["version"] > version


class TestLongPollLockDiscipline:
    def test_wake_latency_observed_outside_partition_cond(self):
        """Regression (lock-discipline audit): the long-poll wake histogram
        is observed after the partition condition is released — a slow
        metrics sink must never extend the critical section."""
        from repro.streaming import PartitionLog

        log = PartitionLog("t", 0)
        probes: list[bool] = []
        real_observe = log._wake_hist.observe

        def probing_observe(value):
            # Condition wraps a non-reentrant Lock: same-thread acquire
            # fails iff read() is still inside `with self._cond`.
            got = log._cond.acquire(blocking=False)
            if got:
                log._cond.release()
            probes.append(got)
            return real_observe(value)

        log._wake_hist.observe = probing_observe
        try:
            assert log.read(0, 10, timeout=0.01) == []  # expires empty
        finally:
            log._wake_hist.observe = real_observe
        assert probes == [True]
