"""Tests for micro-batch streaming: windows, commits, partition mapping."""

import pytest

from repro.streaming import Broker, Producer, StreamingContext


@pytest.fixture
def broker():
    b = Broker()
    b.create_topic("alarms", num_partitions=3)
    return b


def fill(broker, n, key_fn=None):
    Producer(broker).send_many("alarms", [{"i": i} for i in range(n)], key_fn=key_fn)


class TestMicroBatches:
    def test_next_batch_contains_available_records(self, broker):
        fill(broker, 15)
        ctx = StreamingContext(broker, "alarms", "g")
        batch = ctx.next_batch()
        assert len(batch) == 15
        assert not batch.is_empty()

    def test_empty_topic_gives_empty_batch(self, broker):
        ctx = StreamingContext(broker, "alarms", "g")
        assert ctx.next_batch().is_empty()

    def test_batch_partitions_mirror_topic_partitions(self, broker):
        # Direct-DStream property: one dataset partition per Kafka partition.
        fill(broker, 30)  # keyless -> round robin over 3 partitions
        ctx = StreamingContext(broker, "alarms", "g")
        batch = ctx.next_batch()
        assert batch.dataset.num_partitions() == 3

    def test_batch_index_increments(self, broker):
        fill(broker, 5)
        ctx = StreamingContext(broker, "alarms", "g")
        assert ctx.next_batch().index == 0
        fill(broker, 5)
        assert ctx.next_batch().index == 1

    def test_max_records_caps_window(self, broker):
        fill(broker, 50)
        ctx = StreamingContext(broker, "alarms", "g")
        batch = ctx.next_batch(max_records=9)
        assert len(batch) <= 9


class TestProcessAvailable:
    def test_processes_everything_in_order(self, broker):
        fill(broker, 40, key_fn=lambda v: str(v["i"] % 3))
        ctx = StreamingContext(broker, "alarms", "g")
        seen = []
        stats = ctx.process_available(
            lambda batch: seen.extend(batch.dataset.collect())
        )
        assert sorted(d["i"] for d in seen) == list(range(40))
        assert sum(s.num_records for s in stats) == 40
        assert ctx.history == stats

    def test_offsets_commit_after_handler(self, broker):
        fill(broker, 10)
        ctx = StreamingContext(broker, "alarms", "g")
        ctx.process_available(lambda batch: None)
        # A second context in the same group sees nothing (exactly-once).
        ctx2 = StreamingContext(broker, "alarms", "g")
        assert ctx2.process_available(lambda batch: None) == []

    def test_handler_failure_leaves_offsets_uncommitted(self, broker):
        fill(broker, 10)
        ctx = StreamingContext(broker, "alarms", "g")
        with pytest.raises(RuntimeError):
            ctx.process_available(lambda batch: (_ for _ in ()).throw(RuntimeError("boom")))
        # Replacement consumer in the same group re-reads everything.
        ctx2 = StreamingContext(broker, "alarms", "g")
        replayed = []
        ctx2.process_available(lambda batch: replayed.extend(batch.dataset.collect()))
        assert len(replayed) == 10

    def test_stats_record_timings(self, broker):
        fill(broker, 10)
        ctx = StreamingContext(broker, "alarms", "g")
        stats = ctx.process_available(lambda batch: None)
        assert all(s.deserialize_seconds >= 0 for s in stats)
        assert all(s.total_seconds >= s.handler_seconds for s in stats)


class TestRunLoop:
    def test_run_picks_up_concurrent_production(self, broker):
        import threading

        ctx = StreamingContext(broker, "alarms", "g")
        total = []

        def produce_later():
            fill(broker, 25)

        thread = threading.Thread(target=produce_later)
        thread.start()
        ctx.run(lambda batch: total.extend(batch.dataset.collect()),
                duration_seconds=0.5, window_seconds=0.01)
        thread.join()
        assert len(total) == 25


class TestBlockingWaits:
    def test_next_batch_timeout_waits_for_producer(self, broker):
        import threading
        import time

        ctx = StreamingContext(broker, "alarms", "g")

        def produce_later():
            time.sleep(0.03)
            fill(broker, 5)

        thread = threading.Thread(target=produce_later)
        thread.start()
        batch = ctx.next_batch(timeout=2.0)
        thread.join()
        assert len(batch) == 5

    def test_next_batch_timeout_expires_empty(self, broker):
        ctx = StreamingContext(broker, "alarms", "g")
        batch = ctx.next_batch(timeout=0.05)
        assert batch.is_empty()

    def test_wait_for_records_signals_availability(self, broker):
        ctx = StreamingContext(broker, "alarms", "g")
        assert not ctx.wait_for_records(0.02)  # nothing yet
        fill(broker, 1)
        assert ctx.wait_for_records(0.02)
        ctx.process_available(lambda batch: None)
        assert not ctx.wait_for_records(0.02)  # drained again
