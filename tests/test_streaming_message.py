"""Tests for the record/addressing primitives."""

import pytest

from repro.streaming import Record, RecordBatch, TopicPartition
from repro.streaming.message import iter_values, monotonic_timestamp


def make_record(partition=0, offset=0, value=b"x", key=None, headers=None):
    return Record(
        topic="alarms", partition=partition, offset=offset, key=key,
        value=value, timestamp=1.0, headers=headers or {},
    )


class TestTopicPartition:
    def test_hashable_and_equal(self):
        assert TopicPartition("t", 0) == TopicPartition("t", 0)
        assert len({TopicPartition("t", 0), TopicPartition("t", 0)}) == 1

    def test_ordering(self):
        tps = [TopicPartition("b", 0), TopicPartition("a", 1), TopicPartition("a", 0)]
        assert sorted(tps) == [
            TopicPartition("a", 0), TopicPartition("a", 1), TopicPartition("b", 0)
        ]

    def test_negative_partition_rejected(self):
        with pytest.raises(ValueError):
            TopicPartition("t", -1)


class TestRecord:
    def test_topic_partition_property(self):
        record = make_record(partition=3)
        assert record.topic_partition == TopicPartition("alarms", 3)

    def test_size_bytes_counts_key_value_headers(self):
        record = make_record(value=b"12345", key=b"abc", headers={"h": "vv"})
        assert record.size_bytes() == 5 + 3 + 1 + 2

    def test_size_bytes_without_key(self):
        assert make_record(value=b"12345").size_bytes() == 5

    def test_records_are_immutable(self):
        record = make_record()
        with pytest.raises(AttributeError):
            record.offset = 5


class TestRecordBatch:
    def make_batch(self):
        tp0 = TopicPartition("alarms", 0)
        tp1 = TopicPartition("alarms", 1)
        return RecordBatch({
            tp1: [make_record(1, 0, b"c")],
            tp0: [make_record(0, 0, b"a"), make_record(0, 1, b"b")],
        })

    def test_len_and_bool(self):
        batch = self.make_batch()
        assert len(batch) == 3
        assert batch
        assert not RecordBatch.empty()
        assert len(RecordBatch.empty()) == 0

    def test_iteration_is_partition_then_offset_ordered(self):
        values = [r.value for r in self.make_batch()]
        assert values == [b"a", b"b", b"c"]

    def test_partitions_sorted(self):
        assert self.make_batch().partitions() == [
            TopicPartition("alarms", 0), TopicPartition("alarms", 1)
        ]

    def test_records_per_partition(self):
        batch = self.make_batch()
        assert len(batch.records(TopicPartition("alarms", 0))) == 2
        assert batch.records(TopicPartition("alarms", 9)) == []

    def test_max_offsets(self):
        offsets = self.make_batch().max_offsets()
        assert offsets[TopicPartition("alarms", 0)] == 1
        assert offsets[TopicPartition("alarms", 1)] == 0

    def test_empty_partition_lists_dropped(self):
        batch = RecordBatch({TopicPartition("alarms", 0): []})
        assert not batch
        assert batch.partitions() == []


class TestHelpers:
    def test_monotonic_timestamp_strictly_increases(self):
        stamps = [monotonic_timestamp() for _ in range(100)]
        assert all(b > a for a, b in zip(stamps, stamps[1:]))

    def test_iter_values(self):
        records = [make_record(value=b"a"), make_record(value=b"b")]
        assert list(iter_values(records)) == [b"a", b"b"]
