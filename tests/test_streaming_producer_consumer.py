"""Producer/consumer tests: partitioning, exactly-once offsets, groups,
batched sends, concurrent stats, idempotent close, and long-poll timeouts."""

import threading
import time

import pytest

from repro.errors import ConsumerClosedError, ProducerClosedError, RebalanceError
from repro.streaming import (
    Broker,
    Consumer,
    Producer,
    ReflectiveJsonSerializer,
    TopicPartition,
    assign_partitions,
    hash_partitioner,
    round_robin_partitioner,
)


@pytest.fixture
def broker():
    b = Broker()
    b.create_topic("alarms", num_partitions=4)
    return b


class TestPartitioners:
    def test_hash_partitioner_is_stable(self):
        assert hash_partitioner(b"dev-1", 4, 0) == hash_partitioner(b"dev-1", 4, 99)

    def test_hash_partitioner_within_range(self):
        for key in (b"a", b"bb", b"ccc", b"device:42"):
            assert 0 <= hash_partitioner(key, 7, 0) < 7

    def test_keyless_records_round_robin(self):
        got = [hash_partitioner(None, 4, i) for i in range(8)]
        assert got == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_round_robin_ignores_key(self):
        assert round_robin_partitioner(b"same", 4, 5) == 1


class TestProducer:
    def test_send_returns_partition_and_offset(self, broker):
        producer = Producer(broker)
        partition, offset = producer.send("alarms", {"id": 1}, key="dev")
        assert 0 <= partition < 4
        assert offset == 0

    def test_same_key_same_partition(self, broker):
        producer = Producer(broker)
        partitions = {producer.send("alarms", {"i": i}, key="dev-7")[0] for i in range(10)}
        assert len(partitions) == 1

    def test_explicit_partition_wins(self, broker):
        producer = Producer(broker)
        partition, _ = producer.send("alarms", {"x": 1}, key="k", partition=2)
        assert partition == 2

    def test_send_many_counts(self, broker):
        producer = Producer(broker)
        sent = producer.send_many("alarms", [{"i": i} for i in range(25)])
        assert sent == 25
        assert broker.total_records("alarms") == 25

    def test_stats_track_records_and_bytes(self, broker):
        producer = Producer(broker)
        producer.send_many("alarms", [{"i": i} for i in range(10)])
        assert producer.stats.records_sent == 10
        assert producer.stats.bytes_sent > 0
        assert producer.stats.throughput() > 0

    def test_stats_rate_properties(self, broker):
        from repro.streaming import ProducerStats
        # Fresh stats: no sends yet, rates must not divide by zero.
        empty = ProducerStats()
        assert empty.elapsed_seconds == 0.0
        assert empty.records_per_second == 0.0
        assert empty.bytes_per_second == 0.0
        producer = Producer(broker)
        producer.send_many("alarms", [{"i": i} for i in range(10)])
        stats = producer.stats
        assert stats.records_per_second > 0
        assert stats.bytes_per_second > 0
        # Consistency: bytes/records ratio equals mean payload size.
        assert stats.bytes_per_second / stats.records_per_second == (
            pytest.approx(stats.bytes_sent / stats.records_sent)
        )

    def test_producer_application_exposes_per_thread_stats(self, broker):
        from repro.core import ProducerApplication
        from repro.datasets import SitasysGenerator
        alarms = SitasysGenerator(num_devices=20, seed=1).generate(40)
        app = ProducerApplication(broker, "alarms", alarms, seed=1)
        app.run(60, num_threads=2)
        assert len(app.stats) == 2
        assert sum(s.records_sent for s in app.stats) == 60
        assert all(s.records_per_second >= 0 for s in app.stats)

    def test_closed_producer_raises(self, broker):
        producer = Producer(broker)
        producer.close()
        with pytest.raises(ProducerClosedError):
            producer.send("alarms", {"x": 1})

    def test_close_is_idempotent_and_send_many_raises(self, broker):
        producer = Producer(broker)
        producer.send("alarms", {"x": 1})
        producer.close()
        producer.close()  # second close is a no-op
        with pytest.raises(ProducerClosedError):
            producer.send("alarms", {"x": 2})
        with pytest.raises(ProducerClosedError):
            producer.send_many("alarms", [{"x": 3}])
        assert broker.total_records("alarms") == 1

    def test_context_manager_closes(self, broker):
        with Producer(broker) as producer:
            producer.send("alarms", {"x": 1})
        with pytest.raises(ProducerClosedError):
            producer.send("alarms", {"x": 2})

    def test_send_many_batches_preserve_per_key_order(self, broker):
        producer = Producer(broker)
        producer.send_many(
            "alarms",
            [{"i": i, "dev": f"dev-{i % 3}"} for i in range(60)],
            key_fn=lambda v: v["dev"],
            batch_size=7,  # force several partial chunks
        )
        consumer = Consumer(broker, "g")
        consumer.subscribe("alarms")
        per_device: dict[str, list[int]] = {}
        for value in consumer.stream_values(max_records=1000):
            per_device.setdefault(value["dev"], []).append(value["i"])
        assert sum(len(v) for v in per_device.values()) == 60
        for seen in per_device.values():
            assert seen == sorted(seen)  # arrival order preserved per device

    def test_send_many_rejects_bad_batch_size(self, broker):
        with pytest.raises(ValueError):
            Producer(broker).send_many("alarms", [{"x": 1}], batch_size=0)

    def test_stats_exact_under_concurrent_senders(self, broker):
        producer = Producer(broker)
        per_thread, threads = 200, 4

        def sender(index: int) -> None:
            producer.send_many(
                "alarms", [{"t": index, "i": i} for i in range(per_thread)],
                batch_size=16,
            )

        workers = [
            threading.Thread(target=sender, args=(t,)) for t in range(threads)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert producer.stats.records_sent == per_thread * threads
        assert broker.total_records("alarms") == per_thread * threads
        stored_payload_bytes = sum(
            len(r.value)
            for p in range(4)
            for r in broker.fetch(
                TopicPartition("alarms", p), 0, max_records=10_000
            )
        )
        assert producer.stats.bytes_sent == stored_payload_bytes

    def test_rate_limit_slows_production(self, broker):
        import time
        producer = Producer(broker, rate_limit=200.0)
        started = time.perf_counter()
        producer.send_many("alarms", [{"i": i} for i in range(30)])
        assert time.perf_counter() - started >= 30 / 200.0 * 0.8


class TestConsumer:
    def test_poll_values_round_trip(self, broker):
        Producer(broker).send_many("alarms", [{"i": i} for i in range(20)])
        consumer = Consumer(broker, "g")
        consumer.subscribe("alarms")
        values = consumer.poll_values(max_records=100)
        assert sorted(v["i"] for v in values) == list(range(20))

    def test_cross_serializer_consumption(self, broker):
        Producer(broker, serializer=ReflectiveJsonSerializer()).send_many(
            "alarms", [{"i": i} for i in range(5)]
        )
        consumer = Consumer(broker, "g")  # compact by default
        consumer.subscribe("alarms")
        assert len(consumer.poll_values(100)) == 5

    def test_poll_advances_position_without_commit(self, broker):
        Producer(broker).send_many("alarms", [{"i": i} for i in range(8)])
        consumer = Consumer(broker, "g")
        consumer.subscribe("alarms")
        consumer.poll(100)
        assert consumer.poll(100).partitions() == []  # drained in memory
        # but nothing was committed:
        for tp in consumer.assignment():
            assert consumer.committed(tp) is None

    def test_exactly_once_resume_from_commit(self, broker):
        """A replacement consumer resumes exactly after the committed batch."""
        Producer(broker).send_many("alarms", [{"i": i} for i in range(30)])
        first = Consumer(broker, "g")
        first.subscribe("alarms")
        first_batch = first.poll_values(max_records=12)
        first.commit()

        replacement = Consumer(broker, "g")
        replacement.subscribe("alarms")
        second_batch = list(replacement.stream_values(max_records=100))
        seen = [v["i"] for v in first_batch] + [v["i"] for v in second_batch]
        assert sorted(seen) == list(range(30))
        assert len(seen) == 30  # no duplicates, no loss

    def test_uncommitted_work_is_redelivered(self, broker):
        """Crash before commit -> a new consumer sees the records again."""
        Producer(broker).send_many("alarms", [{"i": i} for i in range(10)])
        crashed = Consumer(broker, "g")
        crashed.subscribe("alarms")
        crashed.poll_values(100)  # processed but never committed

        recovered = Consumer(broker, "g")
        recovered.subscribe("alarms")
        assert len(recovered.poll_values(100)) == 10

    def test_auto_offset_reset_latest_skips_history(self, broker):
        Producer(broker).send_many("alarms", [{"i": i} for i in range(10)])
        consumer = Consumer(broker, "g", auto_offset_reset="latest")
        consumer.subscribe("alarms")
        assert consumer.poll_values(100) == []

    def test_invalid_auto_offset_reset(self, broker):
        with pytest.raises(ValueError):
            Consumer(broker, "g", auto_offset_reset="middle")

    def test_seek_rewinds(self, broker):
        Producer(broker).send_many("alarms", [{"i": i} for i in range(4)], key_fn=lambda v: "k")
        consumer = Consumer(broker, "g")
        consumer.subscribe("alarms")
        first = consumer.poll_values(100)
        tp = [p for p in consumer.assignment() if consumer.lag()[p] == 0
              and broker.end_offset(p) > 0][0]
        consumer.seek(tp, 0)
        again = consumer.poll_values(100)
        assert again == first

    def test_seek_unassigned_partition_raises(self, broker):
        consumer = Consumer(broker, "g")
        with pytest.raises(RebalanceError):
            consumer.seek(TopicPartition("alarms", 0), 0)

    def test_lag_reflects_unconsumed_records(self, broker):
        Producer(broker).send_many("alarms", [{"i": i} for i in range(12)])
        consumer = Consumer(broker, "g")
        consumer.subscribe("alarms")
        assert sum(consumer.lag().values()) == 12
        consumer.poll(100)
        assert sum(consumer.lag().values()) == 0

    def test_closed_consumer_raises(self, broker):
        consumer = Consumer(broker, "g")
        consumer.subscribe("alarms")
        consumer.close()
        with pytest.raises(ConsumerClosedError):
            consumer.poll()

    def test_consumer_close_is_idempotent_and_operations_raise(self, broker):
        consumer = Consumer(broker, "g")
        consumer.subscribe("alarms")
        tp = consumer.assignment()[0]
        consumer.close()
        consumer.close()  # second close is a no-op
        for operation in (
            lambda: consumer.poll(),
            lambda: consumer.poll_values(),
            lambda: consumer.commit(),
            lambda: consumer.assign([tp]),
            lambda: consumer.seek(tp, 0),
            lambda: consumer.wait_for_records(0.01),
        ):
            with pytest.raises(ConsumerClosedError):
                operation()

    def test_closed_consumer_contract_is_uniform(self, broker):
        """Every operation on a closed consumer raises — including the
        read-only ones (``lag``, ``assignment``, ``position``,
        ``committed``) that used to silently answer from stale state."""
        consumer = Consumer(broker, "g")
        consumer.subscribe("alarms")
        tp = consumer.assignment()[0]
        consumer.close()
        for operation in (
            consumer.lag,
            consumer.assignment,
            lambda: consumer.position(tp),
            lambda: consumer.committed(tp),
        ):
            with pytest.raises(ConsumerClosedError):
                operation()

    def test_closed_consumer_poll_timeout_zero_raises_not_returns(self, broker):
        """``poll(timeout=0)`` documents an immediate return — but on a
        *closed* consumer the closed-consumer error wins, immediately."""
        consumer = Consumer(broker, "g")
        consumer.subscribe("alarms")
        consumer.close()
        started = time.perf_counter()
        with pytest.raises(ConsumerClosedError):
            consumer.poll(timeout=0)
        assert time.perf_counter() - started < 0.05

    def test_poll_max_records_is_a_hard_cap_across_partitions(self, broker):
        """Regression: with more assigned partitions than ``max_records``,
        the old per-partition quota floor of one returned up to one record
        *per partition*, overshooting the caller's cap."""
        broker.create_topic("wide", num_partitions=8)
        producer = Producer(broker, partitioner=round_robin_partitioner)
        producer.send_many("wide", [{"i": i} for i in range(40)])
        consumer = Consumer(broker, "g")
        consumer.subscribe("wide")
        seen = []
        while True:
            batch = consumer.poll(max_records=2)
            if not batch:
                break
            assert len(batch) <= 2, f"poll(max_records=2) returned {len(batch)}"
            seen.extend(record.offset for record in batch)
        assert len(seen) == 40  # everything still arrives, two at a time

    def test_poll_small_cap_rotates_across_partitions(self, broker):
        """A cap smaller than the assignment must not starve any partition:
        successive polls rotate their sweep start."""
        broker.create_topic("wide", num_partitions=8)
        producer = Producer(broker, partitioner=round_robin_partitioner)
        producer.send_many("wide", [{"i": i} for i in range(24)])
        consumer = Consumer(broker, "g")
        consumer.subscribe("wide")
        touched = set()
        for _ in range(8):
            batch = consumer.poll(max_records=2)
            touched.update(batch.partitions())
        assert len(touched) == 8  # every partition served within one cycle

    def test_poll_unused_quota_flows_to_partitions_with_data(self, broker):
        """Quota left by drained partitions is redistributed in the same
        sweep, so one busy partition fills the whole cap."""
        broker.create_topic("skewed", num_partitions=4)
        producer = Producer(broker)
        producer.send_many("skewed", [{"i": i} for i in range(20)],
                           key_fn=lambda value: "same-key")  # one partition
        consumer = Consumer(broker, "g")
        consumer.subscribe("skewed")
        batch = consumer.poll(max_records=12)
        assert len(batch) == 12  # not 12 // 4 == 3

    def test_poll_timeout_returns_empty_after_deadline(self, broker):
        consumer = Consumer(broker, "g")
        consumer.subscribe("alarms")
        started = time.perf_counter()
        batch = consumer.poll(timeout=0.05)
        elapsed = time.perf_counter() - started
        assert not batch
        assert 0.03 <= elapsed < 1.0

    def test_poll_timeout_zero_never_blocks(self, broker):
        consumer = Consumer(broker, "g")
        consumer.subscribe("alarms")
        started = time.perf_counter()
        assert not consumer.poll(timeout=0)
        assert time.perf_counter() - started < 0.05

    def test_poll_timeout_rides_long_poll_wakeup(self, broker):
        consumer = Consumer(broker, "g")
        consumer.subscribe("alarms")
        results = {}

        def blocked_poll():
            results["values"] = consumer.poll_values(timeout=5.0)
            results["at"] = time.perf_counter()

        waiter = threading.Thread(target=blocked_poll)
        waiter.start()
        time.sleep(0.05)
        appended_at = time.perf_counter()
        Producer(broker).send("alarms", {"wake": True})
        waiter.join(timeout=5.0)
        assert not waiter.is_alive()
        assert results["values"] == [{"wake": True}]
        assert results["at"] - appended_at < 0.05

    def test_stream_values_timeout_rides_live_producer(self, broker):
        consumer = Consumer(broker, "g")
        consumer.subscribe("alarms")
        producer = Producer(broker)

        def late_producer():
            time.sleep(0.03)
            producer.send_many("alarms", [{"i": i} for i in range(5)])

        thread = threading.Thread(target=late_producer)
        thread.start()
        values = []
        for value in consumer.stream_values(max_records=100, timeout=0.5):
            values.append(value)
            if len(values) == 5:
                break
        thread.join()
        assert sorted(v["i"] for v in values) == list(range(5))


class TestGroupAssignment:
    def test_assignment_partitions_are_disjoint_and_complete(self, broker):
        partitions = broker.partitions_for("alarms")
        members = [assign_partitions(partitions, 3, i) for i in range(3)]
        together = [tp for member in members for tp in member]
        assert sorted(together) == sorted(partitions)
        assert len(together) == len(set(together))

    def test_single_member_gets_everything(self, broker):
        partitions = broker.partitions_for("alarms")
        assert assign_partitions(partitions, 1, 0) == sorted(partitions)

    def test_two_consumers_split_the_stream(self, broker):
        Producer(broker).send_many("alarms", [{"i": i} for i in range(40)])
        consumers = []
        for member in range(2):
            c = Consumer(broker, "g")
            c.subscribe("alarms", num_members=2, member_index=member)
            consumers.append(c)
        seen = []
        for c in consumers:
            seen.extend(v["i"] for v in c.poll_values(100))
        assert sorted(seen) == list(range(40))

    def test_invalid_member_index_raises(self, broker):
        with pytest.raises(RebalanceError):
            assign_partitions(broker.partitions_for("alarms"), 2, 5)

    def test_invalid_member_count_raises(self, broker):
        with pytest.raises(RebalanceError):
            assign_partitions(broker.partitions_for("alarms"), 0, 0)

    @pytest.mark.parametrize("num_partitions", [1, 3, 4, 7])
    @pytest.mark.parametrize("num_members", [1, 2, 3, 5])
    def test_assignment_gap_free_and_overlap_free(self, num_partitions, num_members):
        """Pin the documented invariants for every shape: the union over all
        members is exactly the partition set and no partition is assigned
        twice — even with more members than partitions."""
        partitions = [TopicPartition("t", p) for p in range(num_partitions)]
        members = [
            assign_partitions(partitions, num_members, i)
            for i in range(num_members)
        ]
        together = [tp for member in members for tp in member]
        assert sorted(together) == sorted(partitions)  # gap-free
        assert len(together) == len(set(together))     # overlap-free

    def test_assignment_is_round_robin_not_range(self):
        """The assignor deals sorted partitions modulo the member count
        (documented as round-robin): member 0 of 2 takes the even sorted
        indexes, not the first contiguous half."""
        partitions = [TopicPartition("t", p) for p in range(6)]
        assert assign_partitions(partitions, 2, 0) == [
            TopicPartition("t", 0), TopicPartition("t", 2), TopicPartition("t", 4)
        ]
        assert assign_partitions(partitions, 2, 1) == [
            TopicPartition("t", 1), TopicPartition("t", 3), TopicPartition("t", 5)
        ]
