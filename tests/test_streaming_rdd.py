"""Tests for the lazy partitioned dataset, including the cache lesson."""

import pytest

from repro.streaming import PartitionedDataset


@pytest.fixture
def dataset():
    return PartitionedDataset.from_iterable(range(20), num_partitions=4)


class TestConstruction:
    def test_from_iterable_round_robins(self):
        ds = PartitionedDataset.from_iterable([0, 1, 2, 3, 4], num_partitions=2)
        assert ds.collect_partitions() == [[0, 2, 4], [1, 3]]

    def test_from_partitions_preserves_layout(self):
        ds = PartitionedDataset.from_partitions([[1, 2], [3]])
        assert ds.collect_partitions() == [[1, 2], [3]]
        assert ds.num_partitions() == 2

    def test_from_iterable_rejects_zero_partitions(self):
        with pytest.raises(ValueError):
            PartitionedDataset.from_iterable([1], num_partitions=0)

    def test_source_mutation_does_not_leak(self):
        source = [[1, 2], [3]]
        ds = PartitionedDataset.from_partitions(source)
        source[0].append(99)
        assert 99 not in ds.collect()


class TestTransformations:
    def test_map(self, dataset):
        assert sorted(dataset.map(lambda x: x * 2).collect()) == [i * 2 for i in range(20)]

    def test_filter(self, dataset):
        assert sorted(dataset.filter(lambda x: x % 2 == 0).collect()) == list(range(0, 20, 2))

    def test_flat_map(self):
        ds = PartitionedDataset.from_iterable([1, 2], num_partitions=1)
        assert ds.flat_map(lambda x: [x] * x).collect() == [1, 2, 2]

    def test_distinct_removes_duplicates_globally(self):
        ds = PartitionedDataset.from_partitions([[1, 2, 2], [2, 3, 1]])
        assert sorted(ds.distinct().collect()) == [1, 2, 3]

    def test_distinct_preserves_first_seen_order(self):
        ds = PartitionedDataset.from_partitions([[3, 1], [3, 2]])
        flat_order = [x for part in ds.distinct().collect_partitions() for x in part]
        assert set(flat_order) == {1, 2, 3}

    def test_repartition_changes_partition_count(self, dataset):
        assert dataset.repartition(7).num_partitions() == 7
        assert sorted(dataset.repartition(7).collect()) == list(range(20))

    def test_repartition_rejects_zero(self, dataset):
        with pytest.raises(ValueError):
            dataset.repartition(0)

    def test_union_concatenates(self):
        a = PartitionedDataset.from_iterable([1, 2], 1)
        b = PartitionedDataset.from_iterable([3], 1)
        assert sorted(a.union(b).collect()) == [1, 2, 3]

    def test_transformations_are_lazy(self):
        calls = []
        ds = PartitionedDataset.from_iterable([1, 2, 3], 1)
        mapped = ds.map(lambda x: calls.append(x) or x)
        assert calls == []  # nothing ran yet
        mapped.collect()
        assert calls == [1, 2, 3]


class TestActions:
    def test_count(self, dataset):
        assert dataset.count() == 20

    def test_reduce(self, dataset):
        assert dataset.reduce(lambda a, b: a + b) == sum(range(20))

    def test_reduce_empty_raises(self):
        with pytest.raises(ValueError):
            PartitionedDataset.from_iterable([], 1).reduce(lambda a, b: a + b)

    def test_iteration(self, dataset):
        assert sorted(dataset) == list(range(20))

    def test_map_partitions_parallel_returns_per_partition_results(self, dataset):
        sums = dataset.map_partitions_parallel(sum)
        assert len(sums) == 4
        assert sum(sums) == sum(range(20))

    def test_foreach_partition_side_effects(self, dataset):
        seen = []
        dataset.foreach_partition(seen.extend)
        assert sorted(seen) == list(range(20))


class TestCaching:
    """The paper's Section 6.2 lesson: uncached data is recomputed per action."""

    def test_uncached_dataset_recomputes_per_action(self):
        ds = PartitionedDataset.from_iterable(range(10), 2).map(lambda x: x + 1)
        ds.collect()
        ds.count()
        assert ds.num_computations == 2  # the deserialize-twice bug

    def test_cached_dataset_computes_once(self):
        ds = PartitionedDataset.from_iterable(range(10), 2).map(lambda x: x + 1).cache()
        ds.collect()
        ds.count()
        ds.collect()
        assert ds.num_computations == 1

    def test_unpersist_resumes_recomputation(self):
        ds = PartitionedDataset.from_iterable(range(10), 2).cache()
        ds.collect()
        ds.unpersist()
        ds.collect()
        ds.collect()
        assert ds.num_computations == 3

    def test_is_cached_flag(self):
        ds = PartitionedDataset.from_iterable([1], 1)
        assert not ds.is_cached
        assert ds.cache().is_cached
        assert not ds.unpersist().is_cached

    def test_cache_of_derived_does_not_cache_parent(self):
        parent = PartitionedDataset.from_iterable(range(5), 1).map(lambda x: x)
        child = parent.map(lambda x: x * 2).cache()
        child.collect()
        child.collect()
        assert child.num_computations == 1
        assert parent.num_computations == 1  # computed once via the child
        parent.collect()
        assert parent.num_computations == 2  # parent itself is not cached
