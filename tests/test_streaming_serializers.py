"""Serializer tests: round-trips, cross-compatibility, error handling."""

import pytest

from repro.errors import SerializationError
from repro.streaming import (
    CompactJsonSerializer,
    ReflectiveJsonSerializer,
    serializer_by_name,
)

SERIALIZERS = [CompactJsonSerializer(), ReflectiveJsonSerializer()]

SAMPLE_OBJECTS = [
    {"device": "00:1A:00:01", "zip": "8001", "duration": 42.5},
    {"nested": {"a": [1, 2, 3], "b": None}},
    [1, "two", 3.0, False, None],
    "plain string with ümlauts",
    12345,
    3.14159,
    True,
    None,
    {},
    [],
]


@pytest.mark.parametrize("serializer", SERIALIZERS, ids=lambda s: s.name)
@pytest.mark.parametrize("obj", SAMPLE_OBJECTS, ids=repr)
def test_round_trip(serializer, obj):
    assert serializer.deserialize(serializer.serialize(obj)) == obj


@pytest.mark.parametrize("obj", SAMPLE_OBJECTS, ids=repr)
def test_cross_serializer_compatibility(obj):
    """A consumer with either serializer reads the other's output."""
    compact, reflective = CompactJsonSerializer(), ReflectiveJsonSerializer()
    assert reflective.deserialize(compact.serialize(obj)) == obj
    assert compact.deserialize(reflective.serialize(obj)) == obj


@pytest.mark.parametrize("serializer", SERIALIZERS, ids=lambda s: s.name)
def test_unserializable_object_raises(serializer):
    with pytest.raises(SerializationError):
        serializer.serialize({"bad": object()})


@pytest.mark.parametrize("serializer", SERIALIZERS, ids=lambda s: s.name)
def test_invalid_bytes_raise(serializer):
    with pytest.raises(SerializationError):
        serializer.deserialize(b"{not json")


@pytest.mark.parametrize("serializer", SERIALIZERS, ids=lambda s: s.name)
def test_invalid_utf8_raises(serializer):
    with pytest.raises(SerializationError):
        serializer.deserialize(b"\xff\xfe")


def test_reflective_rejects_non_string_keys():
    with pytest.raises(SerializationError):
        ReflectiveJsonSerializer().serialize({1: "a"})


def test_reflective_rejects_excessive_nesting():
    deep = obj = {}
    for _ in range(70):
        obj["n"] = {}
        obj = obj["n"]
    with pytest.raises(SerializationError):
        ReflectiveJsonSerializer().serialize(deep)


def test_registry_names_and_aliases():
    assert isinstance(serializer_by_name("gson"), CompactJsonSerializer)
    assert isinstance(serializer_by_name("jackson"), ReflectiveJsonSerializer)
    assert isinstance(serializer_by_name("compact"), CompactJsonSerializer)
    assert isinstance(serializer_by_name("REFLECTIVE"), ReflectiveJsonSerializer)


def test_registry_unknown_name_raises():
    with pytest.raises(SerializationError):
        serializer_by_name("protobuf")


def test_compact_output_is_smaller_than_reflective():
    """The fast serializer should also produce tighter wire bytes."""
    obj = {"b": 1, "a": {"c": [1, 2, 3], "d": "text"}}
    compact = CompactJsonSerializer().serialize(obj)
    reflective = ReflectiveJsonSerializer().serialize(obj)
    assert len(compact) <= len(reflective)
