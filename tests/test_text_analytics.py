"""Text-analytics tests: tokenization, language ID, keywords, dates, locations."""

import datetime as dt

import pytest

from repro.errors import LanguageDetectionError
from repro.text import (
    KeywordFilter,
    LocationExtractor,
    detect_language,
    extract_date,
    is_relevant,
    language_scores,
    match_topics,
    ngrams,
    normalize,
    parse_textual_date,
    sentence_split,
    tokenize,
)


class TestTokenize:
    def test_basic_words(self):
        assert tokenize("The fire broke out") == ["the", "fire", "broke", "out"]

    def test_accents_are_stripped(self):
        assert tokenize("Incendie déclaré à Genève") == [
            "incendie", "declare", "a", "geneve"
        ]

    def test_umlauts(self):
        assert tokenize("Zürich") == ["zurich"]

    def test_sharp_s_expands(self):
        assert tokenize("Straße") == ["strasse"]

    def test_digits_dropped(self):
        assert tokenize("alarm 42 at 8001 Zurich") == ["alarm", "at", "zurich"]

    def test_apostrophes_split(self):
        assert "incendie" in tokenize("l'incendie")

    def test_empty_string(self):
        assert tokenize("") == []

    def test_normalize_idempotent(self):
        once = normalize("Über-Straße")
        assert normalize(once) == once

    def test_ngrams(self):
        assert list(ngrams(["a", "b", "c"], 2)) == [("a", "b"), ("b", "c")]

    def test_ngrams_bad_n(self):
        with pytest.raises(ValueError):
            list(ngrams(["a"], 0))

    def test_sentence_split(self):
        text = "Fire broke out. Nobody was hurt! Police investigate?"
        assert len(sentence_split(text)) == 3


class TestLanguageDetection:
    @pytest.mark.parametrize("text,expected", [
        ("Die Feuerwehr stand mit mehreren Fahrzeugen im Einsatz und die "
         "Polizei sperrte die Strasse.", "de"),
        ("Les pompiers sont intervenus rapidement et le feu est maîtrisé "
         "dans la nuit.", "fr"),
        ("The fire department responded to the blaze and no injuries were "
         "reported by the police.", "en"),
    ])
    def test_detects_corpus_languages(self, text, expected):
        assert detect_language(text) == expected

    def test_scores_are_fractions(self):
        scores = language_scores("der und die oder")
        assert all(0.0 <= v <= 1.0 for v in scores.values())
        assert scores["de"] > scores["en"]

    def test_empty_text_raises(self):
        with pytest.raises(LanguageDetectionError):
            detect_language("")

    def test_non_linguistic_text_raises(self):
        with pytest.raises(LanguageDetectionError):
            detect_language("xqzt gkrm wvlp")


class TestKeywords:
    def test_fire_topics_multilingual(self):
        for text in ("Ein Brand im Keller", "un incendie violent", "a big fire"):
            assert match_topics(text) == {"fire"}

    def test_intrusion_topics_multilingual(self):
        for text in ("Einbruch in Villa", "cambriolage nocturne", "burglary reported"):
            assert match_topics(text) == {"intrusion"}

    def test_both_topics(self):
        assert match_topics("Brand nach Einbruch") == {"fire", "intrusion"}

    def test_case_and_accents_ignored(self):
        assert match_topics("INCENDIE! FUMÉE!") == {"fire"}

    def test_irrelevant_text(self):
        assert match_topics("football match results") == set()
        assert not is_relevant("the weather is nice")

    def test_keyword_filter_extra_keywords(self):
        kf = KeywordFilter(extra_keywords={"flood": {"Überschwemmung", "inondation"}})
        assert "flood" in kf.topic_names
        assert kf.topics_of("Schwere Überschwemmung im Tal") == {"flood"}

    def test_filter_keeps_relevant_only(self):
        kf = KeywordFilter()
        kept = kf.filter(["ein Brand", "football", "a burglary"])
        assert [topics for _, topics in kept] == [{"fire"}, {"intrusion"}]


class TestDates:
    def test_swiss_numeric(self):
        assert parse_textual_date("Am 13.06.2026 brach ein Brand aus") == dt.date(2026, 6, 13)

    def test_french_numeric(self):
        assert parse_textual_date("le 05/11/2025 à Genève") == dt.date(2025, 11, 5)

    def test_iso(self):
        assert parse_textual_date("on 2024-02-29 exactly") == dt.date(2024, 2, 29)

    def test_german_month_name(self):
        assert parse_textual_date("am 3. März 2024") == dt.date(2024, 3, 3)

    def test_french_month_name(self):
        assert parse_textual_date("le 14 juillet 2023") == dt.date(2023, 7, 14)

    def test_english_month_name(self):
        assert parse_textual_date("on June 13, 2026") == dt.date(2026, 6, 13)

    def test_invalid_calendar_date_skipped(self):
        assert parse_textual_date("on 31.02.2024 nothing happened") is None

    def test_relative_words_need_reference(self):
        assert parse_textual_date("gestern brannte es") is None
        ref = dt.date(2026, 6, 13)
        assert parse_textual_date("gestern brannte es", reference=ref) == dt.date(2026, 6, 12)

    def test_metadata_wins(self):
        date = extract_date("am 01.01.2020", metadata_date="2023-05-05T12:00:00")
        assert date == dt.date(2023, 5, 5)

    def test_invalid_metadata_falls_back_to_text(self):
        date = extract_date("am 01.01.2020", metadata_date="not-a-date")
        assert date == dt.date(2020, 1, 1)

    def test_no_date_returns_none(self):
        assert extract_date("no date here") is None


class TestLocations:
    @pytest.fixture
    def extractor(self):
        return LocationExtractor(["Zürich", "Basel", "La Chaux-de-Fonds", "Chaux"])

    def test_simple_match(self, extractor):
        assert extractor.extract("Brand in Zürich gestern Abend") == "Zürich"

    def test_accent_insensitive(self, extractor):
        assert extractor.extract("fire in Zurich downtown") == "Zürich"

    def test_multiword_longest_match_wins(self, extractor):
        assert extractor.extract("cambriolage à La Chaux-de-Fonds hier") == "La Chaux-de-Fonds"

    def test_extract_all_in_order(self, extractor):
        places = extractor.extract_all("Von Basel nach Zürich verlegt")
        assert places == ["Basel", "Zürich"]

    def test_no_match(self, extractor):
        assert extractor.extract("Brand in Unbekanntdorf") is None

    def test_contains(self, extractor):
        assert extractor.contains("zurich")
        assert not extractor.contains("Geneva")

    def test_len(self, extractor):
        assert len(extractor) == 4
