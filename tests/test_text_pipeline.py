"""Incident-pipeline tests (the Figure 5 flow)."""

import datetime as dt

import pytest

from repro.storage import Collection
from repro.text import IncidentPipeline

GAZETTEER = ["Zürich", "Basel", "Bergdorf"]


@pytest.fixture
def pipeline():
    return IncidentPipeline(GAZETTEER, reference_date=dt.date(2026, 6, 13))


class TestAnnotate:
    def test_full_annotation(self, pipeline):
        annotated = pipeline.annotate({
            "text": "In Zürich brach am 12.06.2026 ein Brand aus. Die Feuerwehr "
                    "war mit mehreren Fahrzeugen im Einsatz.",
            "source": "twitter",
        })
        assert annotated.topics == ("fire",)
        assert annotated.language == "de"
        assert annotated.location == "Zürich"
        assert annotated.date == dt.date(2026, 6, 12)
        assert annotated.source == "twitter"

    def test_irrelevant_returns_none(self, pipeline):
        assert pipeline.annotate({"text": "Das Fussballspiel in Basel war gut "
                                          "und die Zuschauer waren zufrieden."}) is None

    def test_unlocatable_returns_none(self, pipeline):
        assert pipeline.annotate({
            "text": "Ein Brand ist in einem unbekannten Dorf ausgebrochen und "
                    "die Feuerwehr war im Einsatz."
        }) is None

    def test_metadata_location_trusted(self, pipeline):
        annotated = pipeline.annotate({
            "text": "Einbruch in der Nacht, die Polizei sucht nach den Tätern "
                    "und bittet um Hinweise.",
            "location": "Basel",
        })
        assert annotated.location == "Basel"

    def test_metadata_location_outside_gazetteer_falls_back(self, pipeline):
        annotated = pipeline.annotate({
            "text": "Einbruch in Bergdorf: die Polizei hat die Ermittlungen "
                    "aufgenommen und sucht Zeugen.",
            "location": "Atlantis",
        })
        assert annotated.location == "Bergdorf"

    def test_metadata_date_preferred(self, pipeline):
        annotated = pipeline.annotate({
            "text": "A fire broke out in Basel and the fire department "
                    "responded to the blaze quickly.",
            "metadata_date": "2026-01-05",
        })
        assert annotated.date == dt.date(2026, 1, 5)

    def test_document_round_trip(self, pipeline):
        annotated = pipeline.annotate({
            "text": "Burglary in Basel on June 1, 2026: police said the "
                    "intruder escaped with jewellery.",
        })
        doc = annotated.to_document()
        assert doc["location"] == "Basel"
        assert doc["topics"] == ["intrusion"]
        assert doc["date"] == "2026-06-01"


class TestRun:
    def test_counters_add_up(self, pipeline):
        reports = [
            {"text": "In Zürich brach ein Brand aus. Die Feuerwehr stand im "
                     "Einsatz und niemand wurde verletzt."},
            {"text": "Das Konzert in Basel war ausverkauft und die Stimmung "
                     "war hervorragend."},                      # irrelevant
            {"text": "Ein Brand wurde gemeldet aber der Ort ist unbekannt, "
                     "die Feuerwehr rückte trotzdem aus."},     # no location
            {"text": "Cambriolage à Basel: la police cantonale a ouvert une "
                     "enquête après l'effraction."},
        ]
        coll = Collection("incidents")
        stats = pipeline.run(reports, coll)
        assert stats.collected == 4
        assert stats.stored == 2
        assert stats.irrelevant == 1
        assert stats.no_location == 1
        assert stats.stored + stats.irrelevant + stats.no_location == 4
        assert len(coll) == 2

    def test_language_and_topic_counters(self, pipeline):
        reports = [
            {"text": "In Zürich brach ein Brand aus und die Feuerwehr war "
                     "schnell vor Ort im Einsatz."},
            {"text": "Un incendie s'est déclaré à Basel et les pompiers sont "
                     "intervenus pour le maîtriser."},
        ]
        coll = Collection("incidents")
        stats = pipeline.run(reports, coll)
        assert stats.by_language == {"de": 1, "fr": 1}
        assert stats.by_topic == {"fire": 2}

    def test_empty_input(self, pipeline):
        coll = Collection("incidents")
        stats = pipeline.run([], coll)
        assert stats.collected == 0 and stats.stored == 0
