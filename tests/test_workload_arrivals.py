"""Arrival-process tests: determinism, bounds, rates, dict round-trip."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workload import (
    Burst,
    BurstOverlay,
    ConstantRate,
    DiurnalArrivals,
    PoissonArrivals,
    arrival_from_dict,
)

PROCESSES = [
    ConstantRate(rate=0.5),
    PoissonArrivals(rate=0.5),
    DiurnalArrivals(base_rate=0.5, amplitude=0.7, period=3_600.0),
    BurstOverlay(
        base=ConstantRate(rate=0.2),
        bursts=(Burst(start=100.0, duration=50.0, rate=2.0),),
    ),
]


@pytest.mark.parametrize("process", PROCESSES, ids=lambda p: p.kind)
class TestAllProcesses:
    def test_deterministic_under_seed(self, process):
        a = process.times(1_000.0, seed=7)
        b = process.times(1_000.0, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self, process):
        if process.kind == "constant":
            pytest.skip("constant rate ignores the seed by design")
        a = process.times(1_000.0, seed=7)
        b = process.times(1_000.0, seed=8)
        assert a.size != b.size or not np.array_equal(a, b)

    def test_times_sorted_and_in_range(self, process):
        times = process.times(1_000.0, seed=3)
        assert np.all(np.diff(times) >= 0)
        assert times.size == 0 or (times[0] >= 0 and times[-1] < 1_000.0)

    def test_dict_round_trip(self, process):
        rebuilt = arrival_from_dict(process.to_dict())
        np.testing.assert_array_equal(
            rebuilt.times(500.0, seed=5), process.times(500.0, seed=5)
        )


class TestRates:
    def test_constant_count_is_exact(self):
        assert ConstantRate(rate=2.0).times(100.0, seed=0).size == 200

    def test_poisson_count_near_expectation(self):
        times = PoissonArrivals(rate=1.0).times(20_000.0, seed=1)
        assert times.size == pytest.approx(20_000, rel=0.05)

    def test_diurnal_peak_beats_trough(self):
        # Peak of sin at t = period/4; trough at 3*period/4.
        process = DiurnalArrivals(base_rate=0.5, amplitude=0.9, period=4_000.0)
        times = process.times(40_000.0, seed=2)
        phase = np.mod(times, 4_000.0)
        peak = np.sum((phase >= 500) & (phase < 1_500))
        trough = np.sum((phase >= 2_500) & (phase < 3_500))
        assert peak > 3 * trough

    def test_burst_overlay_adds_events_inside_window(self):
        base = ConstantRate(rate=0.1)
        overlay = BurstOverlay(
            base=base, bursts=(Burst(start=200.0, duration=100.0, rate=5.0),)
        )
        base_times = base.times(1_000.0, seed=4)
        overlay_times = overlay.times(1_000.0, seed=4)
        added = overlay_times.size - base_times.size
        assert added == pytest.approx(500, rel=0.25)
        extra = overlay_times[
            (overlay_times >= 200.0) & (overlay_times < 300.0)
        ]
        assert extra.size >= added

    def test_expected_events_includes_clipped_bursts(self):
        overlay = BurstOverlay(
            base=ConstantRate(rate=0.1),
            bursts=(
                Burst(start=200.0, duration=100.0, rate=5.0),
                Burst(start=950.0, duration=100.0, rate=2.0),  # half clipped
            ),
        )
        # base 100 + burst 500 + clipped burst 2.0 * 50 = 700
        assert overlay.expected_events(1_000.0) == pytest.approx(700.0)
        assert ConstantRate(rate=0.5).expected_events(100.0) == pytest.approx(50.0)

    def test_burst_beyond_duration_is_clipped(self):
        overlay = BurstOverlay(
            base=ConstantRate(rate=0.1),
            bursts=(Burst(start=2_000.0, duration=100.0, rate=5.0),),
        )
        times = overlay.times(1_000.0, seed=4)
        assert times.size == 100  # base only


class TestValidation:
    def test_nonpositive_rate_rejected(self):
        for bad in (0.0, -1.0):
            with pytest.raises(ConfigurationError):
                ConstantRate(rate=bad)
            with pytest.raises(ConfigurationError):
                PoissonArrivals(rate=bad)

    def test_diurnal_amplitude_bounds(self):
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(base_rate=1.0, amplitude=1.5)

    def test_empty_burst_overlay_rejected(self):
        with pytest.raises(ConfigurationError):
            BurstOverlay(base=ConstantRate(rate=1.0), bursts=())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            arrival_from_dict({"kind": "fractal"})
        with pytest.raises(ConfigurationError):
            arrival_from_dict("not-a-mapping")
