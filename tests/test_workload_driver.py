"""LoadDriver tests: timeline determinism, fault injection, end-to-end runs."""

import pytest

from repro.workload import (
    ConstantRate,
    DatasetSpec,
    FaultInjection,
    LoadDriver,
    PoissonArrivals,
    Scenario,
)


def small_scenario(**overrides) -> Scenario:
    base = dict(
        name="unit",
        arrivals=ConstantRate(rate=2.0),
        duration=60.0,
        dataset=DatasetSpec(
            num_devices=50, train_alarms=200, preload_history=50
        ),
        producers=2,
        partitions=2,
    )
    base.update(overrides)
    return Scenario(**base)


class TestTimeline:
    def test_deterministic_for_fixed_seed(self):
        a = LoadDriver(small_scenario(), seed=5).build_timeline()
        b = LoadDriver(small_scenario(), seed=5).build_timeline()
        assert len(a) == len(b)
        assert [e.time for e in a] == [e.time for e in b]
        assert [e.document for e in a] == [e.document for e in b]

    def test_seed_changes_timeline(self):
        a = LoadDriver(small_scenario(), seed=5).build_timeline()
        b = LoadDriver(small_scenario(), seed=6).build_timeline()
        assert [e.document["device_address"] for e in a] != \
               [e.document["device_address"] for e in b]

    def test_events_sorted_and_spread_over_producers(self):
        timeline = LoadDriver(small_scenario(producers=3), seed=1).build_timeline()
        times = [e.time for e in timeline]
        assert times == sorted(times)
        assert {e.producer for e in timeline} == {0, 1, 2}

    def test_alarm_type_bias_shifts_mix(self):
        plain = LoadDriver(small_scenario(), seed=2).build_timeline()
        biased = LoadDriver(
            small_scenario(dataset=DatasetSpec(
                num_devices=50, train_alarms=200,
                alarm_type_bias={"technical": 25.0},
            )),
            seed=2,
        ).build_timeline()
        share = lambda tl: sum(
            1 for e in tl if e.document["alarm_type"] == "technical"
        ) / len(tl)
        assert share(biased) > share(plain) + 0.2

    def test_incident_text_attached(self):
        timeline = LoadDriver(
            small_scenario(dataset=DatasetSpec(
                num_devices=50, train_alarms=200, attach_incident_text=True,
            )),
            seed=3,
        ).build_timeline()
        assert all("incident_text" in e.document for e in timeline)
        assert any(len(e.document["incident_text"]) > 20 for e in timeline)


class TestFaults:
    def test_region_outage_drops_events_only_in_window(self):
        fault = FaultInjection(kind="region_outage", start=10.0, end=30.0,
                               params={"fraction": 0.5})
        base = LoadDriver(small_scenario(), seed=4).build_timeline()
        faulted = LoadDriver(small_scenario(faults=(fault,)), seed=4).build_timeline()
        assert len(faulted) < len(base)
        outside = lambda tl: [e for e in tl if not 10.0 <= e.time < 30.0]
        assert len(outside(faulted)) == len(outside(base))

    def test_duplicate_delivery_adds_marked_redeliveries(self):
        fault = FaultInjection(kind="duplicate_delivery", start=0.0, end=60.0,
                               params={"probability": 1.0})
        base = LoadDriver(small_scenario(), seed=4).build_timeline()
        faulted = LoadDriver(small_scenario(faults=(fault,)), seed=4).build_timeline()
        assert len(faulted) == 2 * len(base)
        redelivered = [e for e in faulted if e.document.get("_redelivery")]
        assert len(redelivered) == len(base)

    def test_producer_stall_delays_but_keeps_events(self):
        fault = FaultInjection(kind="producer_stall", start=10.0, end=30.0)
        base = LoadDriver(small_scenario(), seed=4).build_timeline()
        faulted = LoadDriver(small_scenario(faults=(fault,)), seed=4).build_timeline()
        assert len(faulted) == len(base)
        assert not any(10.0 <= e.time < 30.0 for e in faulted)
        backlog = [e for e in faulted if 30.0 <= e.time < 30.1]
        assert len(backlog) >= 40  # ~20s * 2/s flushed at the window end


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def report(self):
        driver = LoadDriver(small_scenario(), seed=7, speedup=6_000.0)
        return driver.run(max_batch_records=50)

    def test_every_scheduled_event_is_verified(self, report):
        assert report.events_scheduled == 120
        assert report.records_sent == 120
        assert report.consumer.alarms_processed == 120
        assert report.ops.alarms == 120

    def test_ops_summary_populated(self, report):
        assert report.ops.windows >= 1
        assert report.ops.throughput > 0
        assert 0.0 <= report.ops.latency_p50 <= report.ops.latency_p99
        assert 0.0 <= report.ops.verification_rate <= 1.0
        assert "throughput" in report.ops_report

    def test_producer_rates_exposed(self, report):
        assert report.produce_records_per_second > 0
        assert report.produce_bytes_per_second > 0
        for stats in report.producer_stats:
            assert stats.records_per_second >= 0

    def test_rerun_sends_identical_counts(self, report):
        again = LoadDriver(small_scenario(), seed=7, speedup=6_000.0).run(
            max_batch_records=50
        )
        assert again.records_sent == report.records_sent
        assert again.events_scheduled == report.events_scheduled

    def test_same_driver_runs_twice_with_clean_metrics(self):
        driver = LoadDriver(small_scenario(), seed=9, speedup=6_000.0)
        first = driver.run(max_batch_records=50)
        second = driver.run(max_batch_records=50)
        # Each run gets fresh ops metrics: no cross-run accumulation.
        assert first.ops.alarms == first.records_sent == 120
        assert second.ops.alarms == second.records_sent == 120
        assert 0.0 <= second.ops.sla_compliance <= 1.0

    def test_backpressure_caps_inflight_records(self):
        scenario = small_scenario(
            arrivals=PoissonArrivals(rate=20.0), max_inflight=10, producers=1,
        )
        driver = LoadDriver(scenario, seed=8, speedup=60_000.0)
        report = driver.run(max_batch_records=5)
        assert report.backpressure_waits > 0
        assert report.consumer.alarms_processed == report.records_sent

    def test_invalid_speedup_rejected(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            LoadDriver(small_scenario(), speedup=0.0)


class TestClusterRuns:
    def test_sharded_run_is_exactly_once(self):
        driver = LoadDriver(small_scenario(), seed=5, speedup=6_000.0, shards=3)
        expected = {e.document["_event_seq"] for e in driver.build_timeline()}
        report = driver.run(max_batch_records=50)
        assert report.shards == 3
        assert report.verified_unique == len(expected)
        assert driver.verification_log.duplicate_uids() == []
        # the verification documents really are spread over the shards
        spread = [
            len(s.collection("verifications")) for s in driver.store.shards
        ]
        assert sum(spread) == len(expected)
        assert sum(1 for n in spread if n) >= 2

    def test_multi_consumer_run_is_exactly_once(self):
        driver = LoadDriver(small_scenario(), seed=6, speedup=6_000.0, consumers=2)
        expected = {e.document["_event_seq"] for e in driver.build_timeline()}
        report = driver.run(max_batch_records=50)
        assert report.consumers == 2
        assert report.rebalances >= 2  # both members joined
        assert report.verified_unique == len(expected)
        assert driver.verification_log.duplicate_uids() == []

    def test_consumer_churn_fault_rebalances_without_loss(self):
        scenario = small_scenario(faults=(
            FaultInjection(kind="consumer_churn", start=15.0, end=45.0,
                           params={"consumers": 2}),
        ))
        driver = LoadDriver(scenario, seed=7, speedup=2_000.0)
        expected = {e.document["_event_seq"] for e in driver.build_timeline()}
        report = driver.run(max_batch_records=50)
        # base join + 2 churn joins + 2 churn leaves
        assert report.rebalances == 5
        assert report.verified_unique == len(expected)
        assert driver.verification_log.duplicate_uids() == []
        assert report.consumer.alarms_processed >= len(expected)

    def test_shard_outage_requires_sharded_durable_pipeline(self):
        from repro.errors import ConfigurationError
        outage = FaultInjection(kind="shard_outage", start=10.0, end=11.0)
        scenario = small_scenario(faults=(outage,))
        with pytest.raises(ConfigurationError, match="shard_outage"):
            LoadDriver(scenario)  # no durable_dir, no shards
        with pytest.raises(ConfigurationError, match="shard_outage"):
            LoadDriver(scenario, shards=4)  # still not durable

    def test_shard_outage_must_name_an_existing_shard(self, tmp_path):
        from repro.errors import ConfigurationError
        outage = FaultInjection(kind="shard_outage", start=10.0, end=11.0,
                                params={"shard": 7})
        with pytest.raises(ConfigurationError, match="only"):
            LoadDriver(small_scenario(faults=(outage,)), shards=2,
                       durable_dir=tmp_path)

    def test_shard_outage_recovers_one_shard_mid_run(self, tmp_path):
        scenario = small_scenario(faults=(
            FaultInjection(kind="shard_outage", start=30.0, end=31.0,
                           params={"shard": 1}),
        ))
        driver = LoadDriver(scenario, seed=8, speedup=2_000.0, shards=2,
                            durable_dir=tmp_path / "pipeline")
        expected = {e.document["_event_seq"] for e in driver.build_timeline()}
        report = driver.run(max_batch_records=50)
        assert len(report.shard_recoveries) == 1
        assert report.shard_recoveries[0]["shard"] == 1
        assert report.verified_unique == len(expected)
        assert driver.verification_log.duplicate_uids() == []

    def test_leader_failover_requires_replicated_durable_pipeline(self):
        from repro.errors import ConfigurationError
        failover = FaultInjection(kind="leader_failover", start=10.0, end=11.0)
        scenario = small_scenario(faults=(failover,))
        with pytest.raises(ConfigurationError, match="leader_failover"):
            LoadDriver(scenario)  # neither replicas nor durable_dir

    def test_leader_failover_requires_at_least_two_replicas(self, tmp_path):
        from repro.errors import ConfigurationError
        failover = FaultInjection(kind="leader_failover", start=10.0, end=11.0)
        scenario = small_scenario(faults=(failover,))
        with pytest.raises(ConfigurationError, match="leader_failover"):
            LoadDriver(scenario, durable_dir=tmp_path)  # replicas=1

    def test_leader_failover_must_name_an_existing_shard(self, tmp_path):
        from repro.errors import ConfigurationError
        failover = FaultInjection(kind="leader_failover", start=10.0, end=11.0,
                                  params={"shard": 7})
        with pytest.raises(ConfigurationError, match="only"):
            LoadDriver(small_scenario(faults=(failover,)), shards=2,
                       replicas=2, durable_dir=tmp_path)

    def test_shard_outage_rejected_on_replicated_runs(self, tmp_path):
        from repro.errors import ConfigurationError
        outage = FaultInjection(kind="shard_outage", start=10.0, end=11.0)
        with pytest.raises(ConfigurationError, match="leader_failover"):
            LoadDriver(small_scenario(faults=(outage,)), shards=2,
                       replicas=2, durable_dir=tmp_path)

    def test_replicated_run_requires_durable_dir(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError, match="durable_dir"):
            LoadDriver(small_scenario(), replicas=2)

    def test_leader_failover_promotes_without_loss_mid_run(self, tmp_path):
        scenario = small_scenario(faults=(
            FaultInjection(kind="leader_failover", start=30.0, end=31.0,
                           params={"shard": 1}),
        ))
        driver = LoadDriver(scenario, seed=9, speedup=2_000.0, shards=2,
                            replicas=2, durable_dir=tmp_path / "pipeline")
        expected = {e.document["_event_seq"] for e in driver.build_timeline()}
        report = driver.run(max_batch_records=50)
        assert report.replicas == 2
        assert len(report.failovers) == 1
        record = report.failovers[0]
        assert record["shard"] == 1
        assert record["epoch"] == record["old_epoch"] + 1
        assert record["new_leader"] != record["old_leader"]
        assert report.verified_unique == len(expected)
        assert driver.verification_log.duplicate_uids() == []

    def test_cluster_configuration_validated(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            LoadDriver(small_scenario(), shards=0)
        with pytest.raises(ConfigurationError):
            LoadDriver(small_scenario(), consumers=0)
        from repro.core.history import AlarmHistory
        with pytest.raises(ConfigurationError):
            LoadDriver(small_scenario(), shards=2, history=AlarmHistory())
