"""OpsMetrics tests: latency percentiles, SLA/MTTR, trend reports."""

import time

import pytest

from repro.core import Alarm, Verification
from repro.storage import DocumentStore
from repro.workload import OpsMetrics, PRODUCED_AT_KEY


def make_verification(age_seconds: float, is_false: bool = True) -> Verification:
    """A verification whose alarm was 'produced' ``age_seconds`` ago."""
    alarm = Alarm(
        device_address="00:1A:00:01",
        zip_code="8001",
        timestamp=1_450_000_000.0,
        alarm_type="intrusion",
        property_type="residential",
        duration_seconds=10.0,
        extras={PRODUCED_AT_KEY: time.perf_counter() - age_seconds},
    )
    return Verification(
        alarm=alarm, is_false=is_false,
        probability_false=0.9 if is_false else 0.1,
    )


class TestObservation:
    def test_counts_latencies_and_rates(self):
        ops = OpsMetrics()
        doc = ops.observe_window([
            make_verification(0.100, is_false=True),
            make_verification(0.200, is_false=True),
            make_verification(0.300, is_false=False),
        ])
        assert ops.alarms == 3 and ops.windows == 1
        assert doc["count"] == 3
        assert doc["false_rate"] == pytest.approx(2 / 3)
        assert 0.09 < doc["latency_p50"] < 0.31
        percentiles = ops.latency_percentiles()
        assert percentiles["p50"] <= percentiles["p95"] <= percentiles["p99"]
        assert ops.verification_rate() == pytest.approx(2 / 3)

    def test_windows_persist_to_store(self):
        store = DocumentStore()
        ops = OpsMetrics(store, collection_name="ops")
        ops.observe_window([make_verification(0.01)])
        ops.observe_window([make_verification(0.01)])
        docs = store.collection("ops").find(sort="window")
        assert [d["window"] for d in docs] == [0, 1]
        assert all(d["count"] == 1 for d in docs)

    def test_shared_store_keeps_runs_separate(self):
        store = DocumentStore()
        first = OpsMetrics(store, sla_p95_seconds=0.05)
        first.observe_window([make_verification(0.5)])     # breach in run 0
        second = OpsMetrics(store, sla_p95_seconds=0.05)
        second.observe_window([make_verification(0.001)])  # healthy run 1
        assert second.run == first.run + 1
        assert second.sla_compliance() == 1.0
        assert second.mttr_seconds() is None
        assert first.sla_compliance() == 0.0
        assert sum(r["alarms"] for r in second.verification_rate_trend()) == 1

    def test_alarms_without_stamp_count_but_skip_latency(self):
        ops = OpsMetrics()
        alarm = Alarm("a", "8000", 0.0, "fire", "public", 5.0)
        ops.observe_window([Verification(alarm, False, 0.2)])
        assert ops.alarms == 1
        assert ops.latency_percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_empty_run_summary_is_sane(self):
        summary = OpsMetrics().summary()
        assert summary.alarms == 0
        assert summary.sla_compliance == 1.0
        assert summary.mttr_seconds is None
        assert summary.trend == "stable"


class TestSlaAndMttr:
    def test_sla_compliance_fraction(self):
        ops = OpsMetrics(sla_p95_seconds=0.15)
        ops.observe_window([make_verification(0.05)])   # healthy
        ops.observe_window([make_verification(0.40)])   # breach
        ops.observe_window([make_verification(0.05)])   # recovered
        assert ops.sla_compliance() == pytest.approx(2 / 3)
        assert ops.mttr_seconds() is not None
        assert ops.mttr_seconds() >= 0.0

    def test_no_breach_means_no_mttr(self):
        ops = OpsMetrics(sla_p95_seconds=10.0)
        ops.observe_window([make_verification(0.01)])
        assert ops.mttr_seconds() is None

    def test_breach_in_final_window_is_not_a_zero_recovery(self):
        # An unrecovered breach that starts in the last window must not
        # average the MTTR toward zero (the best number for the worst case).
        ops = OpsMetrics(sla_p95_seconds=0.05)
        ops.observe_window([make_verification(0.001)])  # healthy
        ops.observe_window([make_verification(0.5)])    # breach, run ends
        assert ops.mttr_seconds() is None


class TestThroughput:
    def test_single_window_reports_zero_not_raw_count(self):
        """Regression: one observed window has no elapsed interval, and the
        old behaviour returned the raw alarm count — a 1000-alarm window
        read as 1000 alarms/s no matter how long it actually took."""
        ops = OpsMetrics()
        ops.observe_window([make_verification(0.01) for _ in range(1000)])
        assert ops.windows == 1
        assert ops.throughput() == 0.0
        assert ops.summary().throughput == 0.0

    def test_multi_window_throughput_uses_elapsed_time(self):
        ops = OpsMetrics()
        ops.observe_window([make_verification(0.01)])
        time.sleep(0.02)
        ops.observe_window([make_verification(0.01)])
        assert 0.0 < ops.throughput() <= 2 / 0.02


class TestTrend:
    def test_rising_false_rate_detected(self):
        ops = OpsMetrics()
        for _ in range(4):
            ops.observe_window([make_verification(0.01, is_false=False)])
        for _ in range(4):
            ops.observe_window([make_verification(0.01, is_false=True)])
        assert ops.trend_direction() == "rising"

    def test_falling_false_rate_detected(self):
        ops = OpsMetrics()
        for _ in range(4):
            ops.observe_window([make_verification(0.01, is_false=True)])
        for _ in range(4):
            ops.observe_window([make_verification(0.01, is_false=False)])
        assert ops.trend_direction() == "falling"

    def test_trend_weighs_windows_by_alarm_count(self):
        """Regression: the trend must weight each half by alarms, not
        average per-window rates — a 1-alarm window used to outvote a
        1000-alarm window and flip the reported direction."""
        ops = OpsMetrics()
        # First half: one huge all-false window, one tiny all-true window.
        ops.observe_window(
            [make_verification(0.01, is_false=True) for _ in range(1000)]
        )
        ops.observe_window([make_verification(0.01, is_false=False)])
        # Second half: one huge all-true window, one tiny all-false window.
        ops.observe_window(
            [make_verification(0.01, is_false=False) for _ in range(1000)]
        )
        ops.observe_window([make_verification(0.01, is_false=True)])
        # Alarm-weighted: ~100% false -> ~0% false = falling.  The
        # unweighted mean saw 50% -> 50% = "stable" in both halves.
        assert ops.trend_direction() == "falling"

    def test_trend_ignores_empty_windows(self):
        ops = OpsMetrics()
        ops.observe_window([make_verification(0.01, is_false=False)])
        ops.observe_window([])  # no alarms: carries no rate information
        ops.observe_window([make_verification(0.01, is_false=True)])
        assert ops.trend_direction() == "rising"

    def test_trend_buckets_cover_all_windows(self):
        ops = OpsMetrics()
        for _ in range(13):
            ops.observe_window([make_verification(0.01)])
        trend = ops.verification_rate_trend(buckets=6)
        assert 1 <= len(trend) <= 6
        assert sum(row["alarms"] for row in trend) == 13

    def test_render_report_mentions_key_metrics(self):
        ops = OpsMetrics()
        ops.observe_window([make_verification(0.02)])
        report = ops.render_report()
        assert "throughput" in report
        assert "p50/p95/p99" in report
        assert "verification rate" in report
        assert "SLA" in report
