"""Scenario spec tests: validation, round-trips, library resolution."""

import pytest

from repro.errors import ConfigurationError
from repro.workload import (
    ConstantRate,
    DatasetSpec,
    FaultInjection,
    Scenario,
    load_scenario,
    scenario,
    scenario_names,
)


def make_scenario(**overrides) -> Scenario:
    base = dict(
        name="test",
        arrivals=ConstantRate(rate=1.0),
        duration=600.0,
        faults=(
            FaultInjection(kind="region_outage", start=10.0, end=60.0,
                           params={"fraction": 0.3}),
        ),
        dataset=DatasetSpec(alarm_type_bias={"fire": 2.0}),
    )
    base.update(overrides)
    return Scenario(**base)


class TestRoundTrip:
    def test_dict_round_trip_is_identity(self):
        original = make_scenario()
        assert Scenario.from_dict(original.to_dict()).to_dict() == original.to_dict()

    def test_json_round_trip_is_identity(self):
        original = make_scenario(serializer="reflective", producers=3)
        rebuilt = Scenario.from_json(original.to_json())
        assert rebuilt == original

    def test_file_round_trip(self, tmp_path):
        original = make_scenario()
        path = tmp_path / "scenario.json"
        path.write_text(original.to_json(), encoding="utf-8")
        assert Scenario.from_file(path) == original

    def test_with_seed_changes_only_seed(self):
        original = make_scenario(seed=1)
        reseeded = original.with_seed(99)
        assert reseeded.seed == 99
        assert reseeded.to_dict() | {"seed": 1} == original.to_dict()


class TestValidation:
    def test_required_keys_enforced(self):
        with pytest.raises(ConfigurationError, match="missing required"):
            Scenario.from_dict({"name": "x"})

    def test_invalid_json_raises(self):
        with pytest.raises(ConfigurationError, match="invalid scenario JSON"):
            Scenario.from_json("{nope")

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            Scenario.from_file(tmp_path / "nope.json")

    @pytest.mark.parametrize("overrides", [
        {"name": ""},
        {"duration": 0.0},
        {"producers": 0},
        {"partitions": 0},
        {"serializer": "protobuf"},
        {"max_inflight": 0},
    ])
    def test_bad_scalar_fields_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            make_scenario(**overrides)

    def test_alarm_type_bias_strings_coerced(self):
        # Scenario JSON may carry numbers as strings; coerce like the
        # other numeric fields instead of failing later with a TypeError.
        spec = DatasetSpec(alarm_type_bias={"fire": "2.5"})
        assert spec.alarm_type_bias == {"fire": 2.5}
        with pytest.raises(ConfigurationError, match="must be a number"):
            DatasetSpec(alarm_type_bias={"fire": "hot"})

    def test_bad_dataset_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            DatasetSpec(num_devices=5)
        with pytest.raises(ConfigurationError):
            DatasetSpec(train_alarms=10)
        with pytest.raises(ConfigurationError):
            DatasetSpec(preload_history=-1)
        with pytest.raises(ConfigurationError):
            DatasetSpec(alarm_type_bias={"fire": 0.0})

    def test_bad_faults_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultInjection(kind="meteor", start=0.0, end=1.0)
        with pytest.raises(ConfigurationError):
            FaultInjection(kind="region_outage", start=5.0, end=5.0)
        with pytest.raises(ConfigurationError):
            FaultInjection(kind="region_outage", start=0.0, end=1.0,
                           params={"fraction": 2.0})
        with pytest.raises(ConfigurationError):
            FaultInjection(kind="duplicate_delivery", start=0.0, end=1.0,
                           params={"probability": 0.0})

    def test_process_crash_fault_round_trips(self):
        crash = FaultInjection(kind="process_crash", start=120.0, end=130.0)
        assert FaultInjection.from_dict(crash.to_dict()) == crash
        scenario = make_scenario(faults=(crash,))
        rebuilt = Scenario.from_dict(scenario.to_dict())
        assert rebuilt.faults == (crash,)
        assert Scenario.from_json(scenario.to_json()).to_dict() == scenario.to_dict()

    def test_process_crash_window_must_be_well_formed(self):
        with pytest.raises(ConfigurationError):
            FaultInjection(kind="process_crash", start=-1.0, end=5.0)
        with pytest.raises(ConfigurationError):
            FaultInjection(kind="process_crash", start=5.0, end=5.0)

    def test_cluster_fault_kinds_round_trip(self):
        churn = FaultInjection(kind="consumer_churn", start=10.0, end=40.0,
                               params={"consumers": 3})
        outage = FaultInjection(kind="shard_outage", start=20.0, end=21.0,
                                params={"shard": 1})
        scenario = make_scenario(faults=(churn, outage))
        rebuilt = Scenario.from_dict(scenario.to_dict())
        assert rebuilt.faults == (churn, outage)
        assert Scenario.from_json(scenario.to_json()).to_dict() == scenario.to_dict()

    def test_cluster_fault_params_validated(self):
        with pytest.raises(ConfigurationError):
            FaultInjection(kind="consumer_churn", start=0.0, end=1.0,
                           params={"consumers": 0})
        with pytest.raises(ConfigurationError):
            FaultInjection(kind="shard_outage", start=0.0, end=1.0,
                           params={"shard": -1})

    def test_leader_failover_fault_round_trips(self):
        failover = FaultInjection(kind="leader_failover", start=25.0, end=26.0,
                                  params={"shard": 1})
        assert FaultInjection.from_dict(failover.to_dict()) == failover
        scenario = make_scenario(faults=(failover,))
        rebuilt = Scenario.from_dict(scenario.to_dict())
        assert rebuilt.faults == (failover,)
        assert Scenario.from_json(scenario.to_json()).to_dict() == \
            scenario.to_dict()

    def test_leader_failover_params_validated(self):
        with pytest.raises(ConfigurationError):
            FaultInjection(kind="leader_failover", start=0.0, end=1.0,
                           params={"shard": -1})

    def test_from_dict_rejects_unknown_fault_kinds(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultInjection.from_dict(
                {"kind": "power_surge", "start": 0.0, "end": 1.0}
            )
        spec = make_scenario().to_dict()
        spec["faults"] = [{"kind": "process_crash_v2", "start": 0.0, "end": 1.0}]
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            Scenario.from_dict(spec)


class TestLibrary:
    def test_library_has_at_least_six_presets(self):
        assert len(scenario_names()) >= 6

    def test_every_preset_builds_and_round_trips(self):
        for name in scenario_names():
            preset = scenario(name)
            assert preset.name == name
            assert Scenario.from_json(preset.to_json()) == preset

    def test_unknown_preset_raises(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            scenario("quiet-sunday")

    def test_load_scenario_resolves_name_and_file(self, tmp_path):
        assert load_scenario("storm").name == "storm"
        path = tmp_path / "custom.json"
        path.write_text(make_scenario(name="custom").to_json(), encoding="utf-8")
        assert load_scenario(str(path)).name == "custom"
        with pytest.raises(ConfigurationError, match="neither"):
            load_scenario("no-such-thing")
